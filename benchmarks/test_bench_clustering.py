"""Clustering algorithm comparison (paper Appendix / Section 5.2).

Times the preprocessing stage per algorithm and group budget, and
prints the quality table (expected waste, coverage, and the realized
improvement at the static and recommended thresholds).

Paper claims checked as shape assertions:

- pairwise grouping achieves expected waste at least as low as the
  minimum-spanning-tree simplification (it refreshes distances after
  every merge; MST never does);
- Forgy k-means has the shortest running time of the three on a fixed
  input (it makes a constant number of passes over the T cells, while
  the agglomerative algorithms are quadratic in T);
- every algorithm produces a partition with positive static
  improvement at paper scale.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.clustering import (
    EventGrid,
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    PairwiseGroupingClustering,
)
from repro.experiments import run_clustering_comparison

ALGORITHMS = {
    "forgy": ForgyKMeansClustering(),
    "pairwise": PairwiseGroupingClustering(),
    "mst": MinimumSpanningTreeClustering(),
}


@pytest.fixture(scope="module")
def stock_grid(testbed, config):
    return EventGrid(
        testbed.table.rectangles(),
        [s.subscriber for s in testbed.table],
        density=testbed.density(9),
        cells_per_dim=config.cells_per_dim,
    )


def test_bench_grid_construction(benchmark, testbed, config):
    grid = benchmark.pedantic(
        lambda: EventGrid(
            testbed.table.rectangles(),
            [s.subscriber for s in testbed.table],
            density=testbed.density(9),
            cells_per_dim=config.cells_per_dim,
        ),
        rounds=2,
        iterations=1,
    )
    assert grid.num_occupied_cells > config.max_cells


@pytest.mark.parametrize("name", ["forgy", "pairwise", "mst"])
def test_bench_clustering_algorithm(benchmark, stock_grid, config, name):
    algorithm = ALGORITHMS[name]
    result = benchmark.pedantic(
        lambda: algorithm.cluster(
            stock_grid, 11, max_cells=config.max_cells
        ),
        rounds=3,
        iterations=1,
    )
    assert result.num_clusters == 11
    result.validate_disjoint()


def test_bench_clustering_comparison_table(benchmark, config, testbed):
    rows = benchmark.pedantic(
        lambda: run_clustering_comparison(config, testbed, modes=9),
        rounds=1,
        iterations=1,
    )

    print("\nClustering comparison — 9-mode scenario")
    print(
        format_table(
            (
                "algorithm",
                "groups",
                "time ms",
                "EW",
                "coverage",
                "t=0",
                "t=0.15",
            ),
            [
                (
                    r.algorithm,
                    r.num_groups,
                    f"{r.cluster_seconds * 1000:.0f}",
                    f"{r.expected_waste:.1f}",
                    f"{r.covered_probability:.3f}",
                    f"{r.improvement_static:.1f}%",
                    f"{r.improvement_at_15:.1f}%",
                )
                for r in rows
            ],
        )
    )

    by_key = {(r.algorithm, r.num_groups): r for r in rows}
    for groups in config.group_counts:
        forgy = by_key[("forgy", groups)]
        pairwise = by_key[("pairwise", groups)]
        mst = by_key[("mst", groups)]
        # Pairwise quality >= MST quality (EW objective, lower better).
        assert pairwise.expected_waste <= mst.expected_waste + 1e-6
        # Everyone produces a usefully positive static improvement.
        for row in (forgy, pairwise, mst):
            assert row.improvement_static > 10.0, row
            assert 0.0 < row.covered_probability <= 1.0

    # Forgy's runtime advantage (the paper's claim) shows at the
    # 11-group budget; at 61 groups its O(n*T) closest-cluster scans
    # erode it.  Single-shot millisecond timings are noisy (warmup,
    # scheduler), so compare minimum-of-repeats measurements.
    import time as _time

    grid = EventGrid(
        testbed.table.rectangles(),
        [s.subscriber for s in testbed.table],
        density=testbed.density(9),
        cells_per_dim=config.cells_per_dim,
    )

    def best_time(algorithm) -> float:
        samples = []
        for _ in range(5):
            start = _time.perf_counter()
            algorithm.cluster(grid, 11, max_cells=config.max_cells)
            samples.append(_time.perf_counter() - start)
        return min(samples)

    forgy_time = best_time(ForgyKMeansClustering())
    pairwise_time = best_time(PairwiseGroupingClustering())
    mst_time = best_time(MinimumSpanningTreeClustering())
    assert forgy_time <= pairwise_time
    assert forgy_time <= mst_time
