"""Extension experiments beyond the paper's evaluation.

Three studies the paper motivates but does not run:

1. **Dense vs sparse multicast** — Section 5.2 describes both router
   modes and assumes dense mode; this benchmark quantifies what the
   choice costs on the same testbed (the shared tree pays a
   publisher->rendezvous detour, but keeps per-group state only).
2. **Per-group thresholds and the oracle** — Section 6's future work:
   tune one threshold per group on a training workload, evaluate on a
   held-out workload, and compare global-t / per-group-t / per-event
   oracle.  The oracle is the tightest bound any rule restricted to
   the precomputed groups can reach.
3. **Subscription churn** — sustained subscribe/publish/unsubscribe
   interleaving over the dynamic broker, with exact-matching checks.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.clustering import ForgyKMeansClustering
from repro.core import (
    DynamicPubSubBroker,
    PubSubBroker,
    SubscriptionTable,
    ThresholdPolicy,
    ThresholdTuner,
    oracle_tally,
)
from repro.geometry import Rectangle
from repro.network import DeliveryCostModel


def test_bench_extension_dense_vs_sparse(benchmark, config, testbed):
    density = testbed.density(9)
    points, publishers = testbed.publications(9)
    rows = []

    def run():
        rows.clear()
        for mode in ("dense", "sparse"):
            cost_model = DeliveryCostModel(
                testbed.topology, multicast_mode=mode
            )
            broker = PubSubBroker.preprocess(
                testbed.topology,
                testbed.table,
                ForgyKMeansClustering(),
                num_groups=11,
                density=density,
                cells_per_dim=config.cells_per_dim,
                max_cells=config.max_cells,
                policy=ThresholdPolicy(0.10),
                cost_model=cost_model,
            )
            tally, _ = broker.run(points, publishers)
            rows.append(
                (
                    mode,
                    f"{tally.improvement_percent:.1f}%",
                    tally.multicasts_sent,
                    f"{tally.average_message_cost:.1f}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension — dense vs sparse multicast (t=0.10, 11 groups)")
    print(
        format_table(
            ("mode", "improvement", "multicasts", "avg msg cost"), rows
        )
    )
    dense_improvement = float(rows[0][1].rstrip("%"))
    sparse_improvement = float(rows[1][1].rstrip("%"))
    # The same decisions are made (sizes/ratios are mode-independent)…
    assert rows[0][2] == rows[1][2]
    # …but the shared tree's detour costs improvement points.
    assert dense_improvement >= sparse_improvement
    assert sparse_improvement > 0.0  # still beats unicast


def test_bench_extension_pergroup_thresholds(benchmark, config, testbed):
    density = testbed.density(9)
    broker = testbed.make_broker(
        ForgyKMeansClustering(), num_groups=11, modes=9
    )
    train_points, train_publishers = testbed.publications(9)
    # Fresh events from the same distribution: the generalization test.
    from repro.workload import PublicationGenerator

    test_points, test_publishers = PublicationGenerator(
        density, testbed.topology.all_stub_nodes(), seed=config.seed + 777
    ).generate(config.num_events)

    results = {}

    def run():
        report = ThresholdTuner(broker).tune(
            train_points, train_publishers
        )
        global_best = max(
            (
                broker.with_policy(ThresholdPolicy(t))
                .run(test_points, test_publishers)[0]
                .improvement_percent,
                t,
            )
            for t in config.thresholds
        )
        tuned, _ = broker.with_policy(report.policy).run(
            test_points, test_publishers
        )
        oracle = oracle_tally(broker, test_points, test_publishers)
        results["report"] = report
        results["global"] = global_best
        results["tuned"] = tuned.improvement_percent
        results["oracle"] = oracle.improvement_percent
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = results["report"]
    global_improvement, global_t = results["global"]

    print("\nExtension — per-group thresholds (train on one workload,")
    print("evaluate on a held-out one) vs the per-event oracle")
    print(
        format_table(
            ("policy", "improvement on held-out events"),
            [
                (f"best global t={global_t:.2f}", f"{global_improvement:.2f}%"),
                ("tuned per-group t", f"{results['tuned']:.2f}%"),
                ("per-event oracle", f"{results['oracle']:.2f}%"),
            ],
        )
    )
    print(
        format_table(
            ("group", "size", "events", "mc win rate", "best t"),
            [
                (
                    row.group,
                    row.group_size,
                    row.events,
                    f"{row.multicast_win_rate:.2f}",
                    f"{row.best_threshold:.2f}",
                )
                for row in report.per_group
            ],
        )
    )

    # The oracle dominates every rule; the tuned policy must at least
    # stay competitive with the best global threshold out of sample.
    assert results["oracle"] >= results["tuned"] - 1e-9
    assert results["oracle"] >= global_improvement - 1e-9
    assert results["tuned"] >= global_improvement - 3.0
    # Groups genuinely differ — tuning found non-uniform thresholds.
    tuned_values = set(report.policy.per_group.values())
    assert len(tuned_values) >= 2


def test_bench_extension_adaptive_thresholds(benchmark, config, testbed):
    """Online threshold learning vs fixed and offline-tuned policies.

    The adaptive controller pays exploration on its first pass over
    the workload; once warm it should land between the paper's fixed
    default and the offline per-group tuner.
    """
    from repro.core import run_adaptive

    broker = testbed.make_broker(
        ForgyKMeansClustering(), num_groups=11, modes=9
    )
    points, publishers = testbed.publications(9)
    results = {}

    def run():
        first, policy = run_adaptive(broker, points, publishers)
        second, _ = run_adaptive(broker, points, publishers, policy)
        fixed, _ = broker.with_policy(ThresholdPolicy(0.15)).run(
            points, publishers
        )
        report = ThresholdTuner(broker).tune(points, publishers)
        tuned, _ = broker.with_policy(report.policy).run(
            points, publishers
        )
        results.update(
            first=first.improvement_percent,
            second=second.improvement_percent,
            fixed=fixed.improvement_percent,
            tuned=tuned.improvement_percent,
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension — adaptive threshold control (9 modes, 11 groups)")
    print(
        format_table(
            ("policy", "improvement"),
            [
                ("adaptive, first pass (exploring)",
                 f"{results['first']:.1f}%"),
                ("adaptive, second pass (warm)",
                 f"{results['second']:.1f}%"),
                ("fixed t=0.15 (paper default)",
                 f"{results['fixed']:.1f}%"),
                ("offline per-group tuner (upper ref)",
                 f"{results['tuned']:.1f}%"),
            ],
        )
    )
    # Warm adaptive control competes with (here: beats) the fixed
    # default, and cannot beat the exact offline tuner on its own
    # training workload.
    assert results["second"] >= results["fixed"] - 2.0
    assert results["second"] <= results["tuned"] + 2.0


def test_bench_extension_incremental_clustering(benchmark, config, testbed):
    """Quality/cost of incremental maintenance vs full re-clustering
    after subscription churn ([16]'s initial + incremental pairing)."""
    import time

    from repro.clustering import (
        EventGrid,
        IncrementalClusterMaintainer,
    )
    from repro.workload import StockSubscriptionGenerator

    density = testbed.density(9)
    results = {}

    def run():
        grid = EventGrid(
            testbed.table.rectangles(),
            [s.subscriber for s in testbed.table],
            density=density,
            cells_per_dim=config.cells_per_dim,
        )
        initial = ForgyKMeansClustering().cluster(
            grid, 11, max_cells=config.max_cells
        )
        maintainer = IncrementalClusterMaintainer(grid, initial)

        # Churn: 200 fresh subscriptions arrive.
        fresh = StockSubscriptionGenerator(
            testbed.topology, seed=config.seed + 321
        ).generate(200)
        for placed in fresh:
            grid.add_subscription(placed.rectangle, placed.node)

        start = time.perf_counter()
        maintainer.refresh()
        new_cells = [
            cell
            for cell in grid.top_cells(config.max_cells)
            if not maintainer.contains(cell.index)
        ]
        maintainer.admit(new_cells)
        moves = maintainer.rebalance(max_moves=30)
        incremental_seconds = time.perf_counter() - start
        incremental = maintainer.to_result()

        start = time.perf_counter()
        recluster = ForgyKMeansClustering().cluster(
            grid, 11, max_cells=config.max_cells
        )
        recluster_seconds = time.perf_counter() - start

        results.update(
            incremental_ew=incremental.total_expected_waste(),
            recluster_ew=recluster.total_expected_waste(),
            incremental_seconds=incremental_seconds,
            recluster_seconds=recluster_seconds,
            moves=moves,
            admitted=len(new_cells),
        )
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        "\nExtension — churn maintenance: incremental vs re-cluster"
    )
    print(
        format_table(
            ("strategy", "EW after churn", "time ms"),
            [
                (
                    f"incremental (admit {results['admitted']}, "
                    f"{results['moves']} moves)",
                    f"{results['incremental_ew']:.1f}",
                    f"{results['incremental_seconds'] * 1000:.0f}",
                ),
                (
                    "full Forgy re-cluster",
                    f"{results['recluster_ew']:.1f}",
                    f"{results['recluster_seconds'] * 1000:.0f}",
                ),
            ],
        )
    )
    # The incremental path must stay within shouting distance of the
    # from-scratch quality (and may beat it — Forgy's top-weight
    # seeding is a weak local optimum).
    assert results["incremental_ew"] <= 2.5 * results["recluster_ew"]


def test_bench_extension_subscription_churn(benchmark, config, testbed):
    density = testbed.density(9)
    points, publishers = testbed.publications(9)
    nodes = testbed.topology.all_stub_nodes()
    rng = np.random.default_rng(config.seed + 555)

    def run():
        table = SubscriptionTable(4)
        for s in testbed.table:
            table.add(s.subscriber, s.rectangle)
        broker = DynamicPubSubBroker.preprocess_dynamic(
            testbed.topology,
            table,
            ForgyKMeansClustering(),
            11,
            density=density,
            cells_per_dim=config.cells_per_dim,
            max_cells=config.max_cells,
            cost_model=testbed.cost_model,
        )
        active = []
        operations = 0
        for i in range(300):
            roll = rng.random()
            if roll < 0.25:
                lo = rng.uniform(-5, 15, size=4)
                sub = broker.subscribe(
                    int(rng.choice(nodes)),
                    Rectangle.from_bounds(
                        lo, lo + rng.uniform(0.5, 10, 4)
                    ),
                )
                active.append(sub.subscription_id)
            elif roll < 0.4 and active:
                broker.unsubscribe(
                    active.pop(int(rng.integers(len(active))))
                )
            else:
                from repro.core import Event

                j = int(rng.integers(len(points)))
                broker.publish(
                    Event.create(i, int(publishers[j]), points[j])
                )
            operations += 1
        return broker, operations

    broker, operations = benchmark.pedantic(run, rounds=1, iterations=1)
    print(
        f"\nExtension — churn: {operations} mixed operations, "
        f"{broker.live_subscriptions} live subscriptions, "
        f"{broker.engine.rebuilds} index rebuilds"
    )
    assert broker.live_subscriptions > len(testbed.table) - 300
