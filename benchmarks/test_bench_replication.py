"""Robustness — the headline shape across independent seeds.

Regenerates the whole testbed (topology, subscriptions, events) under
five independent seeds and re-runs the Figure 6 scenario on each; the
qualitative claims must hold on *every* replicate, not just the
default seed.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.experiments.replication import run_replication


def test_bench_replication_across_seeds(benchmark, config):
    summary = benchmark.pedantic(
        lambda: run_replication(config),
        rounds=1,
        iterations=1,
    )

    print("\nRobustness — Forgy / 11 groups / 9 modes across seeds")
    print(
        format_table(
            ("seed", "static", "best", "best t", "dynamic gain"),
            [
                (
                    r.seed,
                    f"{r.static_improvement:.1f}%",
                    f"{r.best_improvement:.1f}%",
                    f"{r.best_threshold:.2f}",
                    f"+{r.dynamic_gain:.1f}",
                )
                for r in summary.replicates
            ],
        )
    )
    print(
        f"mean best improvement {summary.mean_best():.1f}% "
        f"(std {summary.std_best():.1f}, min {summary.min_best():.1f})"
    )

    assert len(summary.replicates) == 5
    assert summary.all_shapes_hold(), summary.replicates
    # The effect is substantial on every testbed, not marginal.
    assert summary.min_best() > 15.0
    # And the optimum is consistently a *small* threshold.
    assert summary.max_threshold() <= 0.30
