"""Matching problem — S-tree vs baseline indexes (paper Section 3).

Times index construction and point-query matching for every backend at
several subscription scales, and prints the node-access table (the
spatial-index figure of merit).  The S-tree is the paper's structure;
the Hilbert-packed R-tree is the classic packed baseline it is
contrasted with in Section 3.1, and the linear scan anchors the "no
index" cost.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.core import MATCHER_BACKENDS, SubscriptionTable
from repro.experiments import run_matching_comparison
from repro.workload import StockSubscriptionGenerator


@pytest.fixture(scope="module")
def matching_workload(testbed, config):
    placed = StockSubscriptionGenerator(
        testbed.topology, seed=config.seed + 99
    ).generate(4000)
    table = SubscriptionTable.from_placed(placed)
    lows, highs = table.to_arrays()
    points, _ = testbed.publications(9, count=300)
    return lows, highs, points


@pytest.mark.parametrize("backend", ["stree", "rtree", "grid", "counting", "linear"])
def test_bench_matching_build(benchmark, matching_workload, backend):
    lows, highs, _ = matching_workload
    matcher = benchmark.pedantic(
        lambda: MATCHER_BACKENDS[backend].build(lows, highs),
        rounds=2,
        iterations=1,
    )
    assert len(matcher) == len(lows)


@pytest.mark.parametrize("backend", ["stree", "rtree", "grid", "counting", "linear"])
def test_bench_matching_query(benchmark, matching_workload, backend):
    lows, highs, points = matching_workload
    matcher = MATCHER_BACKENDS[backend].build(lows, highs)

    def run_queries():
        total = 0
        for point in points:
            total += len(matcher.match(point))
        return total

    total = benchmark.pedantic(run_queries, rounds=2, iterations=1)
    assert total > 0


def test_bench_matching_comparison_table(benchmark, config, testbed):
    rows = benchmark.pedantic(
        lambda: run_matching_comparison(
            config,
            testbed,
            subscription_counts=(250, 1000, 4000),
            num_queries=200,
        ),
        rounds=1,
        iterations=1,
    )

    print("\nMatching comparison — build/query cost per backend")
    print(
        format_table(
            (
                "backend",
                "k",
                "build ms",
                "query us",
                "nodes/q",
                "entries/q",
                "matches",
            ),
            [
                (
                    r.backend,
                    r.num_subscriptions,
                    f"{r.build_seconds * 1000:.1f}",
                    f"{r.query_microseconds:.0f}",
                    f"{r.nodes_per_query:.1f}",
                    f"{r.entries_per_query:.0f}",
                    f"{r.mean_matches:.1f}",
                )
                for r in rows
            ],
        )
    )

    by_backend = {}
    for row in rows:
        by_backend.setdefault(row.backend, {})[row.num_subscriptions] = row

    for k in (250, 1000, 4000):
        stree = by_backend["stree"][k]
        rtree = by_backend["rtree"][k]
        linear = by_backend["linear"][k]
        # All backends found the same matches.
        assert stree.mean_matches == pytest.approx(linear.mean_matches)
        assert rtree.mean_matches == pytest.approx(linear.mean_matches)
        # The trees prune: far fewer containment tests than brute force.
        assert stree.entries_per_query < 0.5 * linear.entries_per_query
        # The paper's packed S-tree examines no more entries than the
        # Hilbert R-tree baseline on this workload.
        assert stree.entries_per_query <= rtree.entries_per_query * 1.1

    # Pruning improves relatively as k grows (the scalability claim).
    stree_fraction = {
        k: by_backend["stree"][k].entries_per_query / k
        for k in (250, 1000, 4000)
    }
    assert stree_fraction[4000] <= stree_fraction[250]
