"""Extension — packet-level latency and congestion.

Replays the Figure 6 scenario (9 modes, 11 groups) through the
store-and-forward simulator under three thresholds and two arrival
patterns.  Complements the cost-unit tables with the time dimension:
latency percentiles, transmissions per delivery, and queueing delay.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.experiments.latency_experiment import run_latency_experiment


def test_bench_latency_thresholds(benchmark, config, testbed):
    rows = benchmark.pedantic(
        lambda: run_latency_experiment(
            config, testbed, thresholds=(0.0, 0.10, 1.0), num_events=150
        ),
        rounds=1,
        iterations=1,
    )

    print("\nExtension — packet-level transport (9 modes, 11 groups)")
    print(
        format_table(
            (
                "policy",
                "deliveries",
                "tx",
                "tx/delivery",
                "p50",
                "p95",
                "queueing",
            ),
            [
                (
                    row.label,
                    row.report.deliveries,
                    row.report.transmissions,
                    f"{row.report.transmissions_per_delivery:.2f}",
                    f"{row.report.latency.p50:.1f}",
                    f"{row.report.latency.p95:.1f}",
                    f"{row.report.queueing_delay:.0f}",
                )
                for row in rows
            ],
        )
    )

    by_label = {row.label: row.report for row in rows}
    # Same interested sets regardless of policy or pacing.
    deliveries = {report.deliveries for report in by_label.values()}
    assert len(deliveries) == 1

    for threshold in (0.0, 0.10, 1.0):
        burst = by_label[f"t={threshold:.2f}/burst"]
        paced = by_label[f"t={threshold:.2f}/paced"]
        # Pacing the workload can only reduce queueing and tails.
        assert paced.queueing_delay <= burst.queueing_delay
        assert paced.latency.p95 <= burst.latency.p95 + 1e-9
        # The decision mix is timing-independent.
        assert burst.multicasts == paced.multicasts

    # Multicasting to groups with waste spends more copies per useful
    # delivery than pure unicast on this workload (interested sets are
    # small slices of each group) — the transmission side of the
    # trade-off the threshold rule navigates.
    assert (
        by_label["t=0.00/burst"].transmissions
        >= by_label["t=1.00/burst"].transmissions
    )