"""Figure 4 — stock-trade distribution panels.

The paper analyzed one NYSE trading day (1999-09-24) and found:
(a) normalized prices ≈ normal, (b) stock popularity ≈ Zipf,
(c) trade amounts ≈ heavy-tailed (Zipf/Pareto).  We regenerate the
panels over the synthetic day (the documented substitution for the
proprietary tape) and assert the analysis pipeline recovers all three
laws.
"""

from __future__ import annotations

from repro.analysis import format_table, sparkline
from repro.experiments import run_figure4
from repro.workload import StockMarketModel


def test_bench_figure4_day_generation(benchmark, config):
    day = benchmark.pedantic(
        lambda: StockMarketModel(seed=config.seed + 4).generate_day(),
        rounds=3,
        iterations=1,
    )
    assert day.num_trades == 200_000


def test_bench_figure4_distribution_panels(benchmark, config):
    result = benchmark.pedantic(
        lambda: run_figure4(config), rounds=1, iterations=1
    )

    print("\nFigure 4 — one day of trades, three panels")
    print(
        format_table(
            ("panel", "fit", "goodness"),
            [
                (
                    "(a) normalized price",
                    f"N({result.price_fit.mean:.4f}, "
                    f"{result.price_fit.std:.4f})",
                    f"KS stat {result.price_fit.ks_statistic:.4f}",
                ),
                (
                    "(b) popularity rank",
                    f"count ~ rank^{result.popularity_fit.slope:.2f}",
                    f"R^2 {result.popularity_fit.r_squared:.3f}",
                ),
                (
                    "(c) trade amounts",
                    f"P(X>x) ~ x^{result.amount_fit.slope:.2f}",
                    f"R^2 {result.amount_fit.r_squared:.3f}",
                ),
            ],
        )
    )
    print(
        "price histogram: "
        f"[{sparkline(result.price_histogram.density.tolist())}]"
    )

    # (a) bell shape centred on 1 (prices normalized by opening price).
    assert result.price_fit.looks_normal
    assert abs(result.price_fit.mean - 1.0) < 0.01
    assert abs(result.price_histogram.mode_center - 1.0) < 0.02
    # (b) Zipf-like: straight in log-log with slope ≈ -1.
    assert result.popularity_fit.looks_power_law
    assert -1.3 < result.popularity_fit.slope < -0.7
    # (c) heavy tail with the configured alpha ≈ 1.2.
    assert result.amount_fit.looks_power_law
    assert -1.5 < result.amount_fit.slope < -0.9
