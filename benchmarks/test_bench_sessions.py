"""Sessions — catch-up replay must not tax the live path.

Two runs over the identical testbed, workload, seed and fault plan:

* **baseline** — every session stays attached; no abuse, no replay;
* **replay** — the victim detaches mid-run and resumes with a backlog,
  so catch-up replay streams the gap (token-bucket budgeted) while the
  control sessions keep receiving live traffic.

The claim under test: replay's extra traffic is paced tightly enough
that the *control* sessions' live-path p95 latency does not degrade
beyond the no-replay baseline (small scheduling epsilon allowed).
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.faults.plan import FaultPlan
from repro.faults.sessions import (
    SessionChaosSimulation,
    select_session_nodes,
)
from repro.faults.verifier import build_chaos_testbed
from repro.workload import PublicationGenerator

SEED = 2003
EVENTS = 200
#: Headroom for discrete-event scheduling noise: replay packets can
#: legally queue ahead of a live packet on a shared link, so "no
#: degradation" means p95 within this factor, not bit-equality.
EPSILON = 1.10


class _NoAbuseSimulation(SessionChaosSimulation):
    """The control arm: same stack, same sessions, nothing detaches."""

    def _scenario_schedule(self, horizon):
        return []


def _build(seed, abuse):
    broker, density = build_chaos_testbed(seed=seed, subscriptions=300)
    nodes = select_session_nodes(broker, 6)
    plan = FaultPlan(seed=seed, default_loss=0.0)
    cls = SessionChaosSimulation if abuse else _NoAbuseSimulation
    simulation = cls(
        broker,
        plan,
        scenario="crash",  # pure detach/resume; the plan has no faults
        session_nodes=nodes,
        lease=0.5 * EVENTS,
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 7
    ).generate(EVENTS)
    times = [float(i) for i in range(EVENTS)]
    return simulation, points, publishers, times


def _control_p95(simulation):
    """p95 latency over the untouched (non-victim, non-ghost) sessions."""
    skip = {
        simulation.victim.session_id,
        simulation.ghost.session_id,
    }
    samples = [
        latency
        for session_id, latencies in simulation.session_latencies.items()
        if session_id not in skip
        for latency in latencies
    ]
    return float(np.percentile(samples, 95)), len(samples)


def test_bench_replay_does_not_delay_the_live_path(benchmark):
    def run_both():
        base_sim, *base_work = _build(SEED, abuse=False)
        base_report = base_sim.run(*base_work)
        replay_sim, *replay_work = _build(SEED, abuse=True)
        replay_report = replay_sim.run(*replay_work)
        return base_sim, base_report, replay_sim, replay_report

    base_sim, base_report, replay_sim, replay_report = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    base_p95, base_n = _control_p95(base_sim)
    replay_p95, replay_n = _control_p95(replay_sim)
    print("\nSessions — live-path p95 with and without catch-up replay")
    print(
        format_table(
            ("arm", "control p95", "samples", "replay sends", "throttled"),
            [
                ("baseline", f"{base_p95:.2f}", base_n, 0, 0),
                (
                    "replay",
                    f"{replay_p95:.2f}",
                    replay_n,
                    replay_report.replay_sends,
                    replay_report.replay_throttled,
                ),
            ],
        )
    )

    # Both arms keep the guarantee.
    assert base_report.at_least_once
    assert replay_report.at_least_once
    # The replay arm actually replayed a backlog.
    assert replay_report.replay_sends >= 1
    assert replay_report.convergences >= 1
    # The control sessions saw identical live traffic in both arms.
    assert base_n == replay_n
    # The headline claim: budgeted replay leaves the live path's tail
    # latency where the no-replay baseline put it.
    assert replay_p95 <= base_p95 * EPSILON, (
        f"replay degraded live p95: {replay_p95:.3f} vs "
        f"baseline {base_p95:.3f}"
    )
