"""Extension — architectures: precomputed groups vs content routing.

Puts the paper's approach (clustered multicast groups + the threshold
rule) side by side with the Siena/Gryphon-style filtering-tree
architecture its introduction builds on, on the same testbed and
workload:

- **groups + threshold** — one central match per event, constant-size
  group state (n groups), delivery over precomputed trees; improvement
  limited by group waste.
- **relay (exact summaries)** — per-event filtering at every broker on
  the path, per-link state proportional to the subscription set;
  delivers along near-shortest trees, so its cost-unit improvement
  approaches the ideal bound.
- **relay (MBR summaries)** — the classic state/traffic trade: per-link
  state collapses to one rectangle, false-positive forwarding pays for
  it.

The cost-unit column alone would make relays look strictly better;
the state and matching-work columns are the other side of the ledger
(and are exactly why Gryphon-era systems cared about flooding vs
precomputed groups).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import format_table
from repro.clustering import ForgyKMeansClustering
from repro.core import ThresholdPolicy
from repro.relay import RelayDeliveryService


def test_bench_architecture_comparison(benchmark, config, testbed):
    points, publishers = testbed.publications(9)
    rows = []
    measured = {}

    def run():
        rows.clear()
        broker = testbed.make_broker(
            ForgyKMeansClustering(), num_groups=11, modes=9
        )
        tally, _ = broker.with_policy(ThresholdPolicy(0.10)).run(
            points, publishers
        )
        rows.append(
            (
                "groups+threshold (11 groups, t=0.10)",
                f"{tally.improvement_percent:.1f}%",
                11,  # group-membership state
                1.0,  # matches per event (central)
            )
        )
        measured["groups"] = tally.improvement_percent
        for aggregation in ("exact", "covering", "mbr"):
            service = RelayDeliveryService(
                testbed.topology,
                testbed.table,
                aggregation=aggregation,
                cost_model=testbed.cost_model,
            )
            tally, outcomes = service.run(points, publishers)
            rows.append(
                (
                    f"relay ({aggregation} summaries)",
                    f"{tally.improvement_percent:.1f}%",
                    service.router.state_entries(),
                    float(
                        np.mean([o.brokers_visited for o in outcomes])
                    ),
                )
            )
            measured[aggregation] = tally.improvement_percent
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nExtension — architecture comparison (9 modes)")
    print(
        format_table(
            (
                "architecture",
                "improvement",
                "state entries",
                "matches/event",
            ),
            [
                (name, imp, state, f"{work:.1f}")
                for name, imp, state, work in rows
            ],
        )
    )

    # Orderings that define the trade-off:
    # exact relay ~ ideal delivery, beats the group scheme on cost...
    assert measured["exact"] > measured["groups"]
    # ...MBR aggregation gives some of that back...
    assert measured["mbr"] <= measured["exact"] + 1e-9
    # ...and the group scheme still clearly beats plain unicast.
    assert measured["groups"] > 20.0
    # Covering aggregation is lossless: same improvement, less state.
    assert measured["covering"] == pytest.approx(
        measured["exact"], abs=0.1
    )
    assert rows[2][2] < rows[1][2]
    # State: exact relay carries orders of magnitude more entries.
    exact_state = rows[1][2]
    group_state = rows[0][2]
    assert exact_state > 100 * group_state
    # Work: relays match at several brokers per event.
    assert rows[1][3] != rows[0][3]
