"""Ablations over the design choices DESIGN.md calls out.

Each ablation varies one knob of the system and reports its effect:

- S-tree skew factor ``p`` (paper: "typically chosen to be about 0.3");
- S-tree branch factor ``M`` (paper: "typically chosen to be about 40");
- binarization sweep increment (paper sweeps "in increments of M");
- split-dimension rule (the ICDCS text's longest-dimension heuristic
  vs the best-dimension sweep this library defaults to);
- grid resolution ``C`` and working-cell budget ``T`` for clustering.
"""

from __future__ import annotations

import time

import pytest

from repro.analysis import format_table
from repro.clustering import EventGrid, ForgyKMeansClustering, SpacePartition
from repro.core import SubscriptionTable
from repro.spatial import STree, STreeParams
from repro.workload import StockSubscriptionGenerator


@pytest.fixture(scope="module")
def index_workload(testbed, config):
    placed = StockSubscriptionGenerator(
        testbed.topology, seed=config.seed + 99
    ).generate(4000)
    table = SubscriptionTable.from_placed(placed)
    lows, highs = table.to_arrays()
    points, _ = testbed.publications(9, count=200)
    return lows, highs, points


def _entries_per_query(tree, points):
    tree.stats.reset()
    for point in points:
        tree.match(point)
    return tree.stats.entries_per_query


def test_bench_ablation_stree_skew_factor(benchmark, index_workload):
    lows, highs, points = index_workload
    rows = []

    def sweep():
        rows.clear()
        for p in (0.1, 0.2, 0.3, 0.4, 0.5):
            tree = STree.build(
                lows, highs, params=STreeParams(skew_factor=p)
            )
            shape = tree.shape()
            rows.append(
                (
                    p,
                    shape.height,
                    shape.skewness,
                    f"{_entries_per_query(tree, points):.0f}",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — S-tree skew factor p")
    print(
        format_table(("p", "height", "skew", "entries/q"), rows)
    )
    # Every setting must stay a correct, reasonably-pruning index.
    for _, _, _, entries in rows:
        assert float(entries) < len(lows) * 0.5


def test_bench_ablation_stree_branch_factor(benchmark, index_workload):
    lows, highs, points = index_workload
    rows = []

    def sweep():
        rows.clear()
        for m in (8, 20, 40, 80):
            start = time.perf_counter()
            tree = STree.build(
                lows, highs, params=STreeParams(branch_factor=m)
            )
            build = time.perf_counter() - start
            rows.append(
                (
                    m,
                    tree.shape().height,
                    f"{build * 1000:.0f}",
                    f"{_entries_per_query(tree, points):.0f}",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — S-tree branch factor M")
    print(format_table(("M", "height", "build ms", "entries/q"), rows))
    # Larger M gives shorter trees.
    heights = [row[1] for row in rows]
    assert heights == sorted(heights, reverse=True)


def test_bench_ablation_stree_sweep_increment(benchmark, index_workload):
    """Paper sweeps splits in strides of M; stride 1 is the exhaustive
    variant.  The payoff of the stride is build speed at nearly equal
    query quality."""
    lows, highs, points = index_workload
    results = {}

    def run():
        for label, increment in (("stride M", None), ("stride 1", 1)):
            start = time.perf_counter()
            tree = STree.build(
                lows,
                highs,
                params=STreeParams(sweep_increment=increment),
            )
            build = time.perf_counter() - start
            results[label] = (build, _entries_per_query(tree, points))
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — binarization sweep increment")
    print(
        format_table(
            ("variant", "build s", "entries/q"),
            [
                (label, f"{build:.2f}", f"{entries:.0f}")
                for label, (build, entries) in results.items()
            ],
        )
    )
    coarse_build, coarse_quality = results["stride M"]
    fine_build, fine_quality = results["stride 1"]
    assert coarse_build < fine_build  # the stride is the speedup
    # ...at comparable pruning quality.
    assert coarse_quality < fine_quality * 2.0


def test_bench_ablation_stree_split_dimension(benchmark, index_workload):
    lows, highs, points = index_workload
    results = {}

    def run():
        for rule in ("best", "longest"):
            tree = STree.build(
                lows, highs, params=STreeParams(split_dimension=rule)
            )
            results[rule] = _entries_per_query(tree, points)
        return results

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — split dimension rule")
    print(
        format_table(
            ("rule", "entries/q"),
            [(rule, f"{v:.0f}") for rule, v in results.items()],
        )
    )
    # On ray/wildcard-heavy stock workloads the longest-dimension
    # heuristic wastes every level on the widest dimensions; the
    # best-dimension sweep must prune strictly better.
    assert results["best"] < results["longest"]


def test_bench_ablation_grid_resolution(benchmark, testbed, config):
    """Clustering quality and cost as the grid resolution C varies."""
    density = testbed.density(9)
    rows = []

    def sweep():
        rows.clear()
        for c in (4, 8, 10, 14):
            start = time.perf_counter()
            grid = EventGrid(
                testbed.table.rectangles(),
                [s.subscriber for s in testbed.table],
                density=density,
                cells_per_dim=c,
            )
            result = ForgyKMeansClustering().cluster(
                grid, 11, max_cells=config.max_cells
            )
            elapsed = time.perf_counter() - start
            partition = SpacePartition(grid, result)
            rows.append(
                (
                    c,
                    grid.num_occupied_cells,
                    f"{elapsed:.2f}",
                    f"{result.total_expected_waste():.1f}",
                    f"{partition.covered_probability():.3f}",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — grid resolution C (Forgy, 11 groups, T=200)")
    print(
        format_table(
            ("C", "cells", "time s", "EW", "coverage"), rows
        )
    )
    assert len(rows) == 4


def test_bench_ablation_forgy_seeding(benchmark, testbed, config):
    """Paper-faithful top-weight seeding vs the spread (k-means++-
    style) extension, under the EW objective and realized improvement."""
    density = testbed.density(9)
    grid = EventGrid(
        testbed.table.rectangles(),
        [s.subscriber for s in testbed.table],
        density=density,
        cells_per_dim=config.cells_per_dim,
    )
    points, publishers = testbed.publications(9)
    rows = []

    def run():
        rows.clear()
        for seeding in ("topweight", "spread"):
            algorithm = ForgyKMeansClustering(seeding=seeding)
            result = algorithm.cluster(
                grid, 11, max_cells=config.max_cells
            )
            partition = SpacePartition(grid, result)
            from repro.core import PubSubBroker, ThresholdPolicy

            broker = PubSubBroker(
                testbed.topology,
                testbed.table,
                partition,
                policy=ThresholdPolicy(0.10),
                cost_model=testbed.cost_model,
            )
            tally, _ = broker.run(points, publishers)
            rows.append(
                (
                    seeding,
                    f"{result.total_expected_waste():.1f}",
                    f"{tally.improvement_percent:.1f}%",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nAblation — Forgy seeding (11 groups, 9 modes, t=0.10)")
    print(format_table(("seeding", "EW", "improvement"), rows))
    # The spread extension must not lose on the EW objective.
    assert float(rows[1][1]) <= float(rows[0][1]) + 1e-6


def test_bench_ablation_working_cells(benchmark, testbed, config):
    """The paper's constant T (=200): more working cells buy coverage."""
    density = testbed.density(9)
    grid = EventGrid(
        testbed.table.rectangles(),
        [s.subscriber for s in testbed.table],
        density=density,
        cells_per_dim=config.cells_per_dim,
    )
    rows = []

    def sweep():
        rows.clear()
        for t_cells in (50, 100, 200, 400):
            result = ForgyKMeansClustering().cluster(
                grid, 11, max_cells=t_cells
            )
            partition = SpacePartition(grid, result)
            rows.append(
                (
                    t_cells,
                    f"{result.total_expected_waste():.1f}",
                    f"{partition.covered_probability():.3f}",
                )
            )
        return rows

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    print("\nAblation — working-cell budget T (Forgy, 11 groups)")
    print(format_table(("T", "EW", "coverage"), rows))
    # Coverage grows monotonically with T.
    coverages = [float(row[2]) for row in rows]
    assert coverages == sorted(coverages)
