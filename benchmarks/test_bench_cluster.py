"""Cluster failover — takeover latency and throughput under a kill.

Runs the full-stack chaos harness (replicated shards + membership)
through the kill and double-kill scenarios and reports (a) the p95
silence-to-takeover latency across every shard failover, and (b) the
routed-publish delivery throughput in the phases before, during, and
after the failover window.  The robustness claim: the cluster keeps
delivering *during* the takeover (no cascade stranding), and the
post-failover delivered fraction stays close to the pre-kill one.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis import format_table
from repro.cluster import MembershipConfig
from repro.faults import FullStackChaosSimulation, build_cluster_plan
from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ShardMap
from repro.workload import PublicationGenerator

SUBSCRIPTIONS = 300


def _p95(samples):
    ordered = sorted(samples)
    index = max(math.ceil(0.95 * len(ordered)) - 1, 0)
    return ordered[index]


@pytest.fixture(scope="module")
def cluster_workload(config):
    broker, density = build_chaos_testbed(
        seed=config.seed, subscriptions=SUBSCRIPTIONS, num_groups=9
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=config.seed + 9
    ).generate(config.num_events)
    return broker, points, publishers


def _run_scenario(broker, points, publishers, scenario, seed):
    horizon = float(len(points))
    shard_map = ShardMap.plan(broker.partition, 4)
    plan, homes, standby_map, planned, corruptions = build_cluster_plan(
        broker.topology,
        shard_map,
        seed=seed,
        scenario=scenario,
        horizon=horizon,
    )
    simulation = FullStackChaosSimulation(
        broker,
        plan,
        standby_map,
        num_shards=4,
        shard_homes=homes,
        migrations=planned,
        corruptions=corruptions,
    )
    report = simulation.run(points, publishers)
    return plan, simulation, report


def _phase_rows(simulation, plan, report, horizon):
    """Delivered throughput before/during/after the first failover.

    Events arrive one per simulated time unit, so the publish
    timestamps bucket each event into a phase; the failover window
    opens at the kill and closes when the takeover lands
    (kill instant + measured silence-to-takeover latency).
    """
    ledger = simulation.ledger
    kill_at = min(k.at for k in plan.broker_kills)
    takeover_at = kill_at + max(report.cluster.takeover_durations)
    phases = (
        ("before", 0.0, kill_at),
        ("during", kill_at, takeover_at),
        ("after", takeover_at, horizon),
    )
    rows = []
    for name, lo, hi in phases:
        sequences = {
            s for s, t in ledger._published_at.items() if lo <= t < hi
        }
        expected = sum(
            len(ledger._expected.get(s, ())) for s in sequences
        )
        delivered = sum(
            1
            for (s, subscriber), count in ledger._counts.items()
            if s in sequences
            and count >= 1
            and subscriber in ledger._expected.get(s, ())
        )
        span = max(hi - lo, 1e-9)
        fraction = delivered / expected if expected else 1.0
        rows.append((name, len(sequences), delivered, span, fraction))
    return rows


def test_bench_cluster_failover(benchmark, cluster_workload, config):
    broker, points, publishers = cluster_workload
    horizon = float(len(points))

    def sweep():
        durations = []
        plan, simulation, report = _run_scenario(
            broker, points, publishers, "kill", config.seed
        )
        durations.extend(report.cluster.takeover_durations)
        phases = _phase_rows(simulation, plan, report, horizon)
        _, _, double_report = _run_scenario(
            broker, points, publishers, "double-kill", config.seed
        )
        durations.extend(double_report.cluster.takeover_durations)
        return durations, phases, report, double_report

    durations, phases, report, double_report = benchmark.pedantic(
        sweep, rounds=1, iterations=1
    )

    print("\nCluster failover — routed-publish throughput by phase (kill)")
    print(
        format_table(
            ("phase", "events", "delivered", "span", "rate/s", "fraction"),
            [
                (
                    name,
                    events,
                    delivered,
                    f"{span:.0f}",
                    f"{delivered / span:.2f}",
                    f"{fraction:.3f}",
                )
                for name, events, delivered, span, fraction in phases
            ],
        )
    )
    print(
        f"takeovers: {len(durations)}, "
        f"p95 silence-to-takeover latency: {_p95(durations):.1f}"
    )

    # Every scenario's failovers actually happened.
    assert report.cluster.takeovers == 1
    assert double_report.cluster.takeovers == 2
    assert len(durations) == 3
    # The takeover waits out the hysteresis but lands within two
    # heartbeats of the confirmation deadline.
    config_defaults = MembershipConfig()
    confirm = config_defaults.confirm_after
    slack = 2 * config_defaults.heartbeat_interval
    assert all(confirm < d <= confirm + slack for d in durations), durations
    assert confirm < _p95(durations) <= confirm + slack
    # The cluster kept delivering during the failover window, and the
    # post-failover delivered fraction stayed close to the pre-kill one
    # (residual misses are subscribers on the killed node itself).
    by_phase = {name: row for name, *row in phases}
    assert by_phase["during"][1] > 0
    assert by_phase["after"][3] >= 0.80
    assert by_phase["before"][3] >= 0.95
