"""Section 5's parameter table — subscription workload verification.

Regenerates the 1000-subscription workload and checks that the
realized interval-branch frequencies match the paper's table:

          q0    q1   q2   (bounded)
  price   0.15  0.1  0.1  0.65
  volume  0.35  0.1  0.1  0.45

plus the 40/30/30 transit-block split and the per-block name anchors.
"""

from __future__ import annotations

import numpy as np

from repro.analysis import format_table
from repro.experiments import measure_field, run_table1
from repro.workload import (
    DIM_NAME,
    StockSubscriptionGenerator,
)


def test_bench_table1_subscription_generation(benchmark, testbed, config):
    placed = benchmark.pedantic(
        lambda: StockSubscriptionGenerator(
            testbed.topology, seed=config.seed + 1
        ).generate(config.num_subscriptions),
        rounds=3,
        iterations=1,
    )
    assert len(placed) == config.num_subscriptions


def test_bench_table1_parameter_verification(benchmark, testbed, config):
    rows = benchmark.pedantic(
        lambda: run_table1(config, testbed), rounds=1, iterations=1
    )

    print("\nSection 5 parameter table — expected vs measured")
    table_rows = []
    for row in rows:
        table_rows.append(
            (
                row.field,
                f"{row.measured.wildcard:.3f} / {row.expected.q0:.2f}",
                f"{row.measured.lower_ray:.3f} / {row.expected.q1:.2f}",
                f"{row.measured.upper_ray:.3f} / {row.expected.q2:.2f}",
                f"{row.measured.bounded:.3f} / "
                f"{row.expected.bounded_probability:.2f}",
            )
        )
    print(
        format_table(
            ("field", "q0 (meas/spec)", "q1", "q2", "bounded"), table_rows
        )
    )

    for row in rows:
        assert row.within_tolerance(0.05), row
        # Bounded intervals obey the Pareto minimum length c = 4.
        assert row.measured.bounded_min_length >= 4.0 - 1e-9
        # Bounded centers sit near mu3 = 9.
        assert abs(row.measured.bounded_center_mean - 9.0) < 0.5

    # 40/30/30 block split and per-block name anchors (3, 10, 17).
    placed = testbed.placed
    blocks = np.bincount([s.block for s in placed], minlength=3)
    shares = blocks / len(placed)
    assert abs(shares[0] - 0.4) < 0.05
    assert abs(shares[1] - 0.3) < 0.05
    assert abs(shares[2] - 0.3) < 0.05
    for block, anchor in enumerate((3.0, 10.0, 17.0)):
        centers = [
            (s.rectangle.lows[DIM_NAME] + s.rectangle.highs[DIM_NAME]) / 2
            for s in placed
            if s.block == block
        ]
        assert abs(np.mean(centers) - anchor) < 1.0
