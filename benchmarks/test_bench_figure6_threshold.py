"""Figure 6 — the headline experiment: dynamic distribution thresholds.

For every clustering algorithm (Forgy k-means / pairwise grouping /
minimum spanning tree), group budget (11 and 61) and publication
scenario (1, 4 and 9 modes), sweep the unicast threshold ``t`` over
[0, 1] and report the improvement percentage over pure unicast.

Shape expectations asserted here (matching the paper's Figure 6):

- every curve rises from its static (t = 0) value to an interior
  optimum and decays to ~0% as t -> 1 (everything unicast);
- the dynamic scheme never loses to the static one, and produces a
  strictly positive gain for the hard 11-group multi-mode scenarios
  the paper highlights;
- the interior optimum lies at a small threshold (the paper reports
  t ≈ 0.15; our testbed peaks between 0.02 and 0.30);
- more groups (61) beat fewer groups (11) for every algorithm/scenario.

Absolute percentages differ from the paper's (different random
topology, costs, and clustering seeds); the orderings and curve shapes
are the reproduction target.
"""

from __future__ import annotations

import pytest

from repro.analysis import sparkline
from repro.experiments import run_figure6

_RESULTS_CACHE = {}


def _campaign(config, testbed):
    key = id(testbed)
    if key not in _RESULTS_CACHE:
        _RESULTS_CACHE[key] = run_figure6(config, testbed)
    return _RESULTS_CACHE[key]


def test_bench_figure6_full_campaign(benchmark, config, testbed):
    results = benchmark.pedantic(
        lambda: _campaign(config, testbed), rounds=1, iterations=1
    )

    print("\nFigure 6 — improvement % over unicast vs threshold")
    header = "  ".join(f"t={t:.2f}" for t in config.thresholds)
    print(f"{'algorithm':>9} {'modes':>5} {'groups':>6}  {header}")
    for sweep in results:
        values = "  ".join(
            f"{p.improvement_percent:6.2f}" for p in sweep.points
        )
        curve = sparkline([p.improvement_percent for p in sweep.points])
        print(
            f"{sweep.algorithm:>9} {sweep.modes:>5} "
            f"{sweep.num_groups:>6}  {values}  [{curve}]"
        )

    expected_count = (
        len(config.mode_counts) * len(config.group_counts) * 3
    )
    assert len(results) == expected_count

    for sweep in results:
        best = sweep.best()
        # Rises to an interior (or static) optimum, decays to ~0 at 1.
        assert best.improvement_percent >= sweep.static_improvement
        assert best.improvement_percent > 20.0, sweep
        assert sweep.at(1.0).improvement_percent == pytest.approx(
            0.0, abs=1.0
        )
        # The optimum threshold is small, as the paper reports.
        assert best.threshold <= 0.30, sweep
        # Dynamic decisions never hurt.
        assert sweep.dynamic_gain >= -1e-9

    # More groups help, scenario by scenario, algorithm by algorithm.
    by_key = {
        (s.algorithm, s.modes, s.num_groups): s.best().improvement_percent
        for s in results
    }
    for algorithm in ("forgy", "pairwise", "mst"):
        for modes in config.mode_counts:
            assert (
                by_key[(algorithm, modes, 61)]
                >= by_key[(algorithm, modes, 11)] - 1e-9
            ), (algorithm, modes)

    # The paper's highlighted case: a real dynamic gain for 11 groups
    # in the multi-mode scenarios.
    multi_mode_11 = [
        s
        for s in results
        if s.num_groups == 11 and s.modes in (4, 9)
    ]
    assert any(s.dynamic_gain > 1.0 for s in multi_mode_11)


def test_bench_figure6_single_sweep(benchmark, config, testbed):
    """Per-sweep cost: one preprocessed broker over all thresholds
    (what a deployment would re-run when tuning t)."""
    from repro.clustering import ForgyKMeansClustering
    from repro.experiments import sweep_thresholds

    broker = testbed.make_broker(
        ForgyKMeansClustering(), num_groups=11, modes=9
    )
    points, publishers = testbed.publications(9)

    curve = benchmark.pedantic(
        lambda: sweep_thresholds(
            broker, points, publishers, config.thresholds
        ),
        rounds=1,
        iterations=1,
    )
    assert len(curve) == len(config.thresholds)
