"""Session fixtures for the benchmark harness.

The benchmarks regenerate every table and figure of the paper at full
scale (600-node topology, 1000 subscriptions); the expensive shared
state is built once per session here.
"""

from __future__ import annotations

import pytest

from repro.experiments import ExperimentConfig, build_testbed

#: Full-scale configuration; events trimmed to keep the whole bench
#: run in minutes while leaving every curve statistically stable.
BENCH_CONFIG = ExperimentConfig(num_events=600)


@pytest.fixture(scope="session")
def config():
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def testbed(config):
    return build_testbed(config)
