"""Scale-out — per-shard matching work vs shard count.

Plans the subset→shard assignment at K = 1, 2, 4, 8 over the full
testbed and routes the event stream through the scattered shards.  The
scaling claim: the *maximum* per-shard subscription table (the matching
work a single shard performs) shrinks as shards are added, while
routing stays O(N) per event and the per-event MatchResults stay
identical to the unsharded broker's.
"""

from __future__ import annotations

import pytest

from repro.analysis import format_table
from repro.core import Event
from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ShardMap, ShardRouter
from repro.workload import PublicationGenerator

SHARD_COUNTS = (1, 2, 4, 8)


@pytest.fixture(scope="module")
def sharding_workload(config):
    broker, density = build_chaos_testbed(
        seed=config.seed, subscriptions=1000, num_groups=11
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=config.seed + 5
    ).generate(config.num_events)
    return broker, points, publishers


def test_bench_sharding_scaling(benchmark, sharding_workload):
    broker, points, publishers = sharding_workload

    def sweep():
        rows = []
        for num_shards in SHARD_COUNTS:
            shard_map = ShardMap.plan(broker.partition, num_shards)
            router = ShardRouter(broker, shard_map)
            routed = 0
            for sequence in range(len(points)):
                event = Event.create(
                    sequence, int(publishers[sequence]), points[sequence]
                )
                router.route(event)
                routed += 1
            sizes = [len(router.shards[k]) for k in range(num_shards)]
            rows.append(
                (
                    num_shards,
                    max(sizes),
                    sum(sizes) / len(sizes),
                    router.scattered / len(broker.table),
                    shard_map.imbalance(),
                    routed,
                )
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)

    print("\nScale-out — per-shard matching work vs shard count")
    print(
        format_table(
            (
                "shards",
                "max table",
                "mean table",
                "scatter x",
                "imbalance",
                "events",
            ),
            [
                (
                    k,
                    largest,
                    f"{mean:.0f}",
                    f"{scatter:.2f}",
                    f"{imbalance:.3f}",
                    routed,
                )
                for k, largest, mean, scatter, imbalance, routed in rows
            ],
        )
    )

    by_shards = {row[0]: row for row in rows}
    # One shard holds everything; the scaling claim is that the
    # heaviest shard's table shrinks monotonically as K grows.
    assert by_shards[1][1] == len(broker.table)
    largest = [by_shards[k][1] for k in SHARD_COUNTS]
    assert all(a >= b for a, b in zip(largest, largest[1:]))
    assert by_shards[8][1] < len(broker.table)
