"""Figure 3 — regenerate the transit-stub testbed topology.

The paper's Figure 3 shows the 600-node network GT-ITM produced from
"three transit blocks ... an average of five transit nodes in each
block.  Each transit node was connected to two stubs on average, each
stub having an average of twenty nodes."  This benchmark times the
generation and prints/validates the structural summary.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import summarize_topology
from repro.network import TransitStubGenerator


def test_bench_figure3_topology_generation(benchmark, config):
    topology = benchmark.pedantic(
        lambda: TransitStubGenerator(seed=config.seed).generate(),
        rounds=3,
        iterations=1,
    )
    summary = summarize_topology(topology)

    print("\nFigure 3 — generated network topology")
    print(format_table(("property", "value"), summary.rows()))

    # Shape assertions: the paper's hierarchical scheme.
    assert summary.is_connected
    assert summary.num_transit_blocks == 3
    assert 400 <= summary.num_nodes <= 800  # "six hundred nodes"-ish
    assert summary.num_stubs == 2 * summary.num_transit_nodes
    assert 15 <= summary.mean_stub_size <= 25  # "twenty nodes" average
    assert summary.num_stub_nodes > 10 * summary.num_transit_nodes


def test_bench_figure3_routing_preprocess(benchmark, testbed):
    """All-pairs shortest paths over the testbed (the simulation's
    static routing cost)."""
    from repro.network import RoutingTable

    table = benchmark.pedantic(
        lambda: RoutingTable.from_topology(testbed.topology),
        rounds=3,
        iterations=1,
    )
    nodes = testbed.topology.all_stub_nodes()
    assert table.distance(nodes[0], nodes[-1]) > 0
