"""Scalability — the paper's Section 2 claim.

"The sizes of the problems is defined by values of k and N, and we are
interested in algorithms that scale well with respect to these
values."  This benchmark measures exactly that:

- matching cost vs the number of subscriptions ``k`` (the S-tree's
  scanned *fraction* must fall as k grows);
- matching cost vs the dimensionality ``N`` (trees famously degrade
  with dimension; the bench records where);
- preprocessing (grid + clustering) cost vs ``k``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import format_table
from repro.clustering import EventGrid, ForgyKMeansClustering
from repro.core import SubscriptionTable
from repro.spatial import LinearScanMatcher, STree
from repro.workload import StockSubscriptionGenerator


def synthetic_rectangles(rng, k, ndim):
    """Stock-like mixtures generalized to N dimensions."""
    centers = rng.normal(9.0, 2.0, size=(k, ndim))
    lengths = rng.pareto(1.0, size=(k, ndim)).clip(0.2, 40.0)
    lows = centers - lengths / 2
    highs = centers + lengths / 2
    # Sprinkle rays/wildcards like the paper's parametric distribution.
    for dim in range(ndim):
        rays = rng.random(k)
        lows[rays < 0.10, dim] = -np.inf
        highs[(rays >= 0.10) & (rays < 0.20), dim] = np.inf
    return lows, highs


def test_bench_scaling_with_subscriptions(benchmark, config, testbed):
    rows = []

    def run():
        rows.clear()
        generator = StockSubscriptionGenerator(
            testbed.topology, seed=config.seed + 99
        )
        placed = generator.generate(8000)
        points, _ = testbed.publications(9, count=150)
        for k in (500, 1000, 2000, 4000, 8000):
            table = SubscriptionTable.from_placed(placed[:k])
            lows, highs = table.to_arrays()
            tree = STree.build(lows, highs)
            for point in points:
                tree.match(point)
            rows.append(
                (
                    k,
                    f"{tree.stats.entries_per_query:.0f}",
                    f"{tree.stats.entries_per_query / k:.3f}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nScaling — S-tree matching vs k (stock workload)")
    print(format_table(("k", "entries/query", "scanned fraction"), rows))
    fractions = [float(r[2]) for r in rows]
    # The scalability claim: the scanned fraction falls monotonically
    # (allowing a small tolerance for noise between adjacent sizes).
    assert fractions[-1] < fractions[0] * 0.8
    for earlier, later in zip(fractions, fractions[1:]):
        assert later <= earlier * 1.15


def test_bench_scaling_with_dimensions(benchmark, config):
    rows = []

    def run():
        rows.clear()
        rng = np.random.default_rng(config.seed)
        for ndim in (2, 4, 6, 8):
            lows, highs = synthetic_rectangles(rng, 2000, ndim)
            points = rng.normal(9.0, 3.0, size=(150, ndim))
            tree = STree.build(lows, highs)
            linear = LinearScanMatcher.build(lows, highs)
            start = time.perf_counter()
            tree_results = [tree.match(p) for p in points]
            tree_seconds = time.perf_counter() - start
            linear_results = [linear.match(p) for p in points]
            assert tree_results == linear_results
            rows.append(
                (
                    ndim,
                    f"{tree.stats.entries_per_query:.0f}",
                    f"{tree_seconds / len(points) * 1e6:.0f}",
                    f"{np.mean([len(r) for r in tree_results]):.1f}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nScaling — S-tree matching vs dimensionality N (k=2000)")
    print(
        format_table(
            ("N", "entries/query", "query us", "matches"), rows
        )
    )
    # Correctness held at every dimensionality (asserted inline); the
    # index keeps pruning even at N=8.
    assert float(rows[-1][1]) < 2000


def test_bench_scaling_preprocessing(benchmark, config, testbed):
    rows = []

    def run():
        rows.clear()
        generator = StockSubscriptionGenerator(
            testbed.topology, seed=config.seed + 99
        )
        placed = generator.generate(4000)
        density = testbed.density(9)
        for k in (1000, 2000, 4000):
            subset = placed[:k]
            start = time.perf_counter()
            grid = EventGrid(
                [s.rectangle for s in subset],
                [s.node for s in subset],
                density=density,
                cells_per_dim=config.cells_per_dim,
            )
            grid_seconds = time.perf_counter() - start
            start = time.perf_counter()
            ForgyKMeansClustering().cluster(
                grid, 11, max_cells=config.max_cells
            )
            cluster_seconds = time.perf_counter() - start
            rows.append(
                (
                    k,
                    grid.num_occupied_cells,
                    f"{grid_seconds:.2f}",
                    f"{cluster_seconds * 1000:.0f}",
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nScaling — preprocessing vs k")
    print(
        format_table(
            ("k", "occupied cells", "grid s", "cluster ms"), rows
        )
    )
    # Clustering cost is governed by T (=200 cells), not k: it must
    # not blow up as subscriptions quadruple.
    cluster_times = [float(r[3]) for r in rows]
    assert cluster_times[-1] < 20 * max(cluster_times[0], 1.0)
