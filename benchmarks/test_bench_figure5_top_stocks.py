"""Figure 5 — the three most frequently traded stocks.

Per-stock panels: the paper observes "the price distributions do
exhibit bell shapes centering around the averages" and "the amount of
money for each trade appears to follow a Pareto distribution".
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.experiments import run_figure5


def test_bench_figure5_top_stock_panels(benchmark, config):
    panels = benchmark.pedantic(
        lambda: run_figure5(config), rounds=1, iterations=1
    )

    print("\nFigure 5 — top-3 most traded stocks")
    print(
        format_table(
            ("stock", "trades", "price fit", "KS", "amount tail"),
            [
                (
                    panel.stock,
                    panel.num_trades,
                    f"N({panel.price_fit.mean:.4f}, "
                    f"{panel.price_fit.std:.4f})",
                    f"{panel.price_fit.ks_statistic:.4f}",
                    f"x^{panel.amount_fit.slope:.2f}",
                )
                for panel in panels
            ],
        )
    )

    assert len(panels) == 3
    # Popularity ordering: strictly more trades at better ranks (Zipf).
    assert (
        panels[0].num_trades > panels[1].num_trades > panels[2].num_trades
    )
    for panel in panels:
        # Bell-shaped normalized prices centred on the average.
        assert panel.price_fit.looks_normal
        assert abs(panel.price_fit.mean - 1.0) < 0.01
        # Pareto-ish amounts.
        assert panel.amount_fit.looks_power_law
        assert panel.amount_fit.slope < -0.9
