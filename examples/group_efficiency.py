#!/usr/bin/env python3
"""How efficient must a multicast group be to employ it?

The paper leaves this as future work (Section 6): a single global
threshold treats all groups alike, but groups differ in size, spread
and tree cost.  This example:

1. builds the standard testbed and trains a
   :class:`~repro.core.tuning.ThresholdTuner` on one event workload,
2. prints each group's empirical efficiency profile (how often
   multicast actually wins, and the break-even threshold),
3. evaluates global-t vs per-group-t vs the per-event oracle on a
   *held-out* workload.

Run:  python examples/group_efficiency.py
"""

from repro import (
    ForgyKMeansClustering,
    PublicationGenerator,
    PubSubBroker,
    StockSubscriptionGenerator,
    SubscriptionTable,
    ThresholdPolicy,
    ThresholdTuner,
    TransitStubGenerator,
    oracle_tally,
    publication_distribution,
)
from repro.analysis import format_table


def main() -> None:
    topology = TransitStubGenerator(seed=41).generate()
    placed = StockSubscriptionGenerator(topology, seed=42).generate(1000)
    table = SubscriptionTable.from_placed(placed)
    density = publication_distribution(9)

    broker = PubSubBroker.preprocess(
        topology,
        table,
        ForgyKMeansClustering(),
        num_groups=11,
        density=density,
    )

    generator = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=43
    )
    train = generator.generate(800)
    test = generator.generate(800)

    report = ThresholdTuner(broker).tune(*train)
    print("per-group efficiency (trained on 800 events):\n")
    print(
        format_table(
            (
                "group",
                "members",
                "events",
                "multicast win rate",
                "mean |s|/|M_q|",
                "tuned t",
            ),
            [
                (
                    row.group,
                    row.group_size,
                    row.events,
                    f"{row.multicast_win_rate:.2f}",
                    f"{row.mean_ratio:.3f}",
                    f"{row.best_threshold:.2f}",
                )
                for row in report.per_group
            ],
        )
    )

    print("\nheld-out evaluation (800 fresh events):\n")
    rows = []
    for label, policy in [
        ("static multicast (t=0)", ThresholdPolicy(0.0)),
        ("paper's global t=0.15", ThresholdPolicy(0.15)),
        ("tuned per-group t", report.policy),
    ]:
        tally, _ = broker.with_policy(policy).run(*test)
        rows.append((label, f"{tally.improvement_percent:.2f}%"))
    oracle = oracle_tally(broker, *test)
    rows.append(("per-event oracle (bound)", f"{oracle.improvement_percent:.2f}%"))
    print(format_table(("policy", "improvement over unicast"), rows))
    print(
        "\nThe oracle line is the best any rule restricted to these 11 "
        "groups can do; the remaining gap to 100% is the price of "
        "precomputing groups instead of per-event trees."
    )


if __name__ == "__main__":
    main()
