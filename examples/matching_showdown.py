#!/usr/bin/env python3
"""Matching-index showdown: S-tree vs the baselines.

Builds every index backend over the same subscription sets at growing
scale and reports build time, query latency, and pruning power
(entries tested per query).  Shows the crossover the paper's matching
section is about: the brute-force scan wins tiny workloads, the packed
trees win as ``k`` grows.

Run:  python examples/matching_showdown.py
"""

import time

import numpy as np

from repro import (
    StockSubscriptionGenerator,
    SubscriptionTable,
    TransitStubGenerator,
    publication_distribution,
)
from repro.analysis import format_table
from repro.core import MATCHER_BACKENDS
from repro.workload import PublicationGenerator


def main() -> None:
    topology = TransitStubGenerator(seed=31).generate()
    placed = StockSubscriptionGenerator(topology, seed=32).generate(8000)
    density = publication_distribution(9)
    points, _ = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=33
    ).generate(300)

    rows = []
    for k in (100, 1000, 8000):
        table = SubscriptionTable.from_placed(placed[:k])
        lows, highs = table.to_arrays()
        reference = None
        for backend, matcher_cls in MATCHER_BACKENDS.items():
            start = time.perf_counter()
            matcher = matcher_cls.build(lows, highs)
            build_ms = (time.perf_counter() - start) * 1000

            matcher.stats.reset()
            start = time.perf_counter()
            matches = [tuple(matcher.match(p)) for p in points]
            query_us = (time.perf_counter() - start) / len(points) * 1e6

            if reference is None:
                reference = matches
            assert matches == reference, f"{backend} disagrees!"

            rows.append(
                (
                    k,
                    backend,
                    f"{build_ms:.1f}",
                    f"{query_us:.0f}",
                    f"{matcher.stats.entries_per_query:.0f}",
                    f"{matcher.stats.entries_per_query / k * 100:.0f}%",
                )
            )

    print("all backends agree on every query — now the costs:\n")
    print(
        format_table(
            ("k", "backend", "build ms", "query us", "entries/q", "scanned"),
            rows,
        )
    )
    print(
        "\nreading guide: 'scanned' is the fraction of all subscriptions "
        "containment-tested per event.  The S-tree's packing keeps it "
        "low and falling with scale; the linear scan is always 100%."
    )


if __name__ == "__main__":
    main()
