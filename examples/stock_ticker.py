#!/usr/bin/env python3
"""The Gryphon stock-ticker scenario, subscription by subscription.

Recreates the paper's motivating example (Section 1): subscribers
express conjunctions of range predicates over {bst, name, quote,
volume} — e.g. "all IBM trades with 75 < price <= 80 and volume >=
1000" — and the system matches each published trade to exactly the
interested parties, deciding per event between unicast and multicast.

This example builds the predicates by hand (including a multi-range
predicate that gets decomposed into several rectangles), publishes a
small trade tape, and prints a human-readable delivery log.

Run:  python examples/stock_ticker.py
"""

import numpy as np

from repro import (
    ForgyKMeansClustering,
    PubSubBroker,
    SubscriptionTable,
    ThresholdPolicy,
    TransitStubGenerator,
    TransitStubParams,
)
from repro.core import DeliveryMethod, Event
from repro.geometry import FULL_LINE, Interval, parse_predicate
from repro.workload import BST_CODES, bst_interval

# Stock names are linearized to integer codes (paper Section 1: "even
# attributes such as name ... can be indexed").
STOCKS = {"IBM": 1, "MSFT": 2, "ORCL": 3, "SUNW": 4}


def name_equals(stock: str) -> Interval:
    """Equality predicate on the linearized name axis."""
    code = STOCKS[stock]
    return Interval(code - 1.0, float(code))


def main() -> None:
    topology = TransitStubGenerator(
        TransitStubParams(
            transit_blocks=3,
            transit_nodes_per_block=2,
            stubs_per_transit_node=1,
            nodes_per_stub=10,
        ),
        seed=3,
    ).generate()
    stub_nodes = topology.all_stub_nodes()

    table = SubscriptionTable(ndim=4)

    # The paper's flagship subscription: IBM, 75 < price <= 80,
    # volume >= 1000, any transaction type.
    alice = stub_nodes[0]
    table.add_predicates(
        alice,
        [
            [FULL_LINE],
            [name_equals("IBM")],
            [parse_predicate("between", 75.0, 80.0)],
            [parse_predicate(">=", 1000.0)],
        ],
    )

    # A multi-range predicate: MSFT buys at (20,25] OR (30,35] — this
    # decomposes into two rectangles automatically.
    bob = stub_nodes[5]
    table.add_predicates(
        bob,
        [
            [bst_interval("B")],
            [name_equals("MSFT")],
            [Interval(20.0, 25.0), Interval(30.0, 35.0)],
            [FULL_LINE],
        ],
    )

    # A broad market-watcher: every large trade, any stock — written in
    # the predicate language instead of interval objects.
    from repro.core import parse_subscription

    carol = stub_nodes[12]
    table.add_predicates(
        carol,
        parse_subscription(
            "bst == 3 and volume >= 50000",
            ("bst", "name", "quote", "volume"),
        ),
    )

    # Plus a crowd of IBM price-band watchers to make multicast useful.
    rng = np.random.default_rng(1)
    for node in stub_nodes[15:45]:
        lo = float(rng.uniform(70, 78))
        table.add_predicates(
            node,
            [
                [FULL_LINE],
                [name_equals("IBM")],
                [Interval(lo, lo + rng.uniform(2, 6))],
                [FULL_LINE],
            ],
        )

    print(f"{len(table)} subscription rectangles from "
          f"{len(table.subscribers)} subscribers")

    broker = PubSubBroker.preprocess(
        topology,
        table,
        ForgyKMeansClustering(),
        num_groups=4,
        cells_per_dim=8,
        policy=ThresholdPolicy(threshold=0.15),
        # Pin the grid to the trading domain so every publishable trade
        # falls into a real cell instead of the catchall.
        grid_frame=((0.0, 0.0, 0.0, 0.0), (3.0, 4.0, 120.0, 100_000.0)),
    )

    # A small tape of trades: (bst, name, price, volume).
    tape = [
        ("T", "IBM", 78.5, 2_000),
        ("T", "IBM", 82.0, 5_000),   # above every price band
        ("B", "MSFT", 22.0, 800),
        ("B", "MSFT", 27.0, 800),    # in the gap of Bob's ranges
        ("T", "ORCL", 14.0, 90_000), # only Carol's large-trade filter
        ("T", "IBM", 74.5, 1_500),
        ("S", "SUNW", 5.0, 100),     # nobody cares
    ]

    print("\n#  trade                               matched  decision")
    for i, (bst, stock, price, volume) in enumerate(tape):
        point = (
            float(BST_CODES[bst]),
            float(STOCKS[stock]),
            price,
            float(volume),
        )
        event = Event.create(i, stub_nodes[-1], point)
        record = broker.publish(event)
        method = record.method
        label = {
            DeliveryMethod.NOT_SENT: "not sent",
            DeliveryMethod.UNICAST: "unicast",
            DeliveryMethod.MULTICAST: (
                f"multicast to group {record.decision.group} "
                f"({record.decision.group_size} members)"
            ),
        }[method]
        trade = f"{bst} {stock:<5} ${price:<7.2f} x{volume:<7}"
        print(
            f"{i}  {trade:<36} {record.match.num_subscribers:>7}  {label}"
        )

    print("\n(matched = distinct interested subscriber nodes; the "
          "threshold rule unicasts when too few of a group care)")


if __name__ == "__main__":
    main()
