#!/usr/bin/env python3
"""Tuning the distribution-method threshold for a deployment.

Sweeps the unicast threshold ``t`` over [0, 1] for every clustering
algorithm (the paper's Figure 6 methodology) and prints the resulting
improvement curves, then recommends a threshold.  Useful as a template
for tuning the scheme on your own topology and workload.

Run:  python examples/threshold_tuning.py [--modes 9] [--groups 11]
"""

import argparse

from repro import (
    PublicationGenerator,
    PubSubBroker,
    StockSubscriptionGenerator,
    SubscriptionTable,
    TransitStubGenerator,
    publication_distribution,
)
from repro.analysis import sparkline
from repro.experiments import default_algorithms, sweep_thresholds

THRESHOLDS = (0.0, 0.02, 0.05, 0.10, 0.15, 0.20, 0.30, 0.50, 0.75, 1.0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--modes", type=int, default=9, choices=(1, 4, 9))
    parser.add_argument("--groups", type=int, default=11)
    parser.add_argument("--events", type=int, default=800)
    args = parser.parse_args()

    topology = TransitStubGenerator(seed=21).generate()
    placed = StockSubscriptionGenerator(topology, seed=22).generate(1000)
    table = SubscriptionTable.from_placed(placed)
    density = publication_distribution(args.modes)
    points, publishers = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=23
    ).generate(args.events)

    print(
        f"workload: {args.events} events, {args.modes} hot spots, "
        f"{args.groups} multicast groups\n"
    )
    header = "  ".join(f"{t:5.2f}" for t in THRESHOLDS)
    print(f"{'algorithm':>9}  t->  {header}")

    best_overall = None
    for algorithm in default_algorithms():
        broker = PubSubBroker.preprocess(
            topology,
            table,
            algorithm,
            num_groups=args.groups,
            density=density,
        )
        curve = sweep_thresholds(broker, points, publishers, THRESHOLDS)
        improvements = [p.improvement_percent for p in curve]
        values = "  ".join(f"{v:5.1f}" for v in improvements)
        print(
            f"{algorithm.name:>9}       {values}  "
            f"[{sparkline(improvements)}]"
        )
        top = max(curve, key=lambda p: p.improvement_percent)
        if best_overall is None or (
            top.improvement_percent > best_overall[2]
        ):
            best_overall = (
                algorithm.name,
                top.threshold,
                top.improvement_percent,
            )

    name, threshold, improvement = best_overall
    print(
        f"\nrecommendation: {name} clustering with t = {threshold:.2f} "
        f"({improvement:.1f}% improvement over unicast)"
    )
    print(
        "note: t = 0.00 is the static scheme (always multicast); the "
        "gap between it and the best t is the value of deciding "
        "dynamically."
    )


if __name__ == "__main__":
    main()
