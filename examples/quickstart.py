#!/usr/bin/env python3
"""Quickstart: a complete content-based pub-sub simulation in ~40 lines.

Builds the paper's testbed end to end — network, subscriptions,
clustering-based multicast groups, S-tree matching, and the dynamic
distribution-method decision — then publishes a thousand events and
reports the delivery-cost improvement over naive unicast.

Run:  python examples/quickstart.py
"""

from repro import (
    ForgyKMeansClustering,
    PublicationGenerator,
    PubSubBroker,
    StockSubscriptionGenerator,
    SubscriptionTable,
    ThresholdPolicy,
    TransitStubGenerator,
    publication_distribution,
)


def main() -> None:
    # 1. A ~600-node transit-stub network (the paper's Figure 3 testbed).
    topology = TransitStubGenerator(seed=7).generate()
    print(f"network: {topology.num_nodes} nodes, {topology.num_edges} edges")

    # 2. 1000 stock subscriptions placed on stub nodes (Section 5 recipe).
    placed = StockSubscriptionGenerator(topology, seed=7).generate(1000)
    table = SubscriptionTable.from_placed(placed)
    print(f"subscriptions: {len(table)} from {len(table.subscribers)} nodes")

    # 3. Preprocess: grid + Forgy k-means clustering -> 11 multicast
    #    groups, S-tree matching index, 15% unicast threshold.
    density = publication_distribution(modes=9)
    broker = PubSubBroker.preprocess(
        topology,
        table,
        ForgyKMeansClustering(),
        num_groups=11,
        density=density,
        policy=ThresholdPolicy(threshold=0.15),
    )
    print(f"multicast groups: sizes {broker.partition.group_sizes()}")

    # 4. Publish 1000 events drawn from the 9-mode hot-spot mixture.
    points, publishers = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=7
    ).generate(1000)
    tally, _ = broker.run(points, publishers)

    # 5. The paper's headline metric.
    print(
        f"\ndelivered {tally.messages} events: "
        f"{tally.multicasts_sent} multicast, "
        f"{tally.unicasts_sent} unicast, "
        f"{tally.messages - tally.multicasts_sent - tally.unicasts_sent} "
        "unmatched"
    )
    print(
        f"cost improvement over all-unicast: "
        f"{tally.improvement_percent:.1f}% "
        f"(100% = per-event ideal multicast)"
    )


if __name__ == "__main__":
    main()
