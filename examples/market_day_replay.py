#!/usr/bin/env python3
"""Replay a synthetic trading day through the pub-sub system.

Bridges the data study (Section 5.1) and the delivery experiments: the
synthetic NYSE-like day from :mod:`repro.workload.stock` is converted
trade-by-trade into publication events ``(bst, name, quote, volume)``,
streamed through a preprocessed broker, and also replayed at packet
level to measure delivery latency during the simulated session.

Run:  python examples/market_day_replay.py
"""

import numpy as np

from repro import (
    ForgyKMeansClustering,
    PubSubBroker,
    StockSubscriptionGenerator,
    SubscriptionTable,
    ThresholdPolicy,
    TransitStubGenerator,
    publication_distribution,
)
from repro.analysis import format_table
from repro.simulation import DeliverySimulation
from repro.workload import StockMarketModel, StockMarketParams


def trades_to_events(day, num_events, rng):
    """Map trades onto the 4-d event space used by the subscriptions.

    - bst: B/S/T codes 1..3 drawn with the paper's 0.4/0.4/0.2;
    - name: the stock's *popularity rank* scaled into the name axis
      (subscribers' name intervals live around anchors 3/10/17);
    - quote: normalized price scaled to the price axis (mean 9);
    - volume: trade amount mapped through a log scale to the volume
      axis (mean 9) so the Pareto tail lands inside subscriber ranges.
    """
    take = slice(0, num_events)
    counts = day.trades_per_stock()
    # rank 0 = most traded; scale ranks into (0, 20].
    order = np.argsort(counts)[::-1]
    rank_of = np.empty_like(order)
    rank_of[order] = np.arange(len(order))
    name = rank_of[day.stock[take]] / max(len(counts) - 1, 1) * 20.0
    bst = rng.choice([1.0, 2.0, 3.0], p=[0.4, 0.4, 0.2],
                     size=name.shape[0])
    quote = day.normalized_prices()[take] * 9.0
    amount = day.amount[take]
    volume = np.log10(amount) / np.log10(amount).max() * 18.0
    return np.column_stack([bst, name, quote, volume])


def main() -> None:
    rng = np.random.default_rng(99)
    topology = TransitStubGenerator(seed=51).generate()
    placed = StockSubscriptionGenerator(topology, seed=52).generate(1000)
    table = SubscriptionTable.from_placed(placed)
    density = publication_distribution(9)

    broker = PubSubBroker.preprocess(
        topology,
        table,
        ForgyKMeansClustering(),
        num_groups=11,
        density=density,
        policy=ThresholdPolicy(0.10),
    )

    day = StockMarketModel(
        StockMarketParams(num_stocks=500, num_trades=5000), seed=53
    ).generate_day()
    events = trades_to_events(day, 1200, rng)
    publishers = rng.choice(topology.all_stub_nodes(), size=len(events))

    tally, _ = broker.run(events, publishers)
    print("cost accounting over the replayed session:\n")
    print(
        format_table(
            ("metric", "value"),
            [
                ("trades replayed", tally.messages),
                ("matched deliveries", tally.deliveries),
                ("multicasts", tally.multicasts_sent),
                ("unicasts", tally.unicasts_sent),
                ("improvement over unicast",
                 f"{tally.improvement_percent:.1f}%"),
            ],
        )
    )

    # Packet-level: trades arrive in a steady stream.
    report = DeliverySimulation(broker).run(
        events, publishers, inter_arrival=2.0
    )
    print("\npacket-level transport during the session:\n")
    print(
        format_table(
            ("metric", "value"),
            [
                ("deliveries", report.deliveries),
                ("link transmissions", report.transmissions),
                ("tx per delivery",
                 f"{report.transmissions_per_delivery:.2f}"),
                ("latency p50", f"{report.latency.p50:.1f}"),
                ("latency p95", f"{report.latency.p95:.1f}"),
                ("total queueing delay",
                 f"{report.queueing_delay:.0f}"),
            ],
        )
    )


if __name__ == "__main__":
    main()
