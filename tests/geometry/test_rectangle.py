"""Unit tests for axis-aligned rectangles."""

import math

import pytest

from repro.geometry import Interval, Rectangle, bounding_rectangle


def rect(*sides):
    """Shorthand: rect((0,1), (2,3)) builds a 2-D rectangle."""
    return Rectangle(
        tuple(s[0] for s in sides), tuple(s[1] for s in sides)
    )


class TestConstruction:
    def test_from_intervals(self):
        r = Rectangle.from_intervals([Interval(0, 1), Interval(2, 3)])
        assert r.lows == (0, 2)
        assert r.highs == (1, 3)

    def test_from_bounds(self):
        r = Rectangle.from_bounds([0, 2], [1, 3])
        assert r == rect((0, 1), (2, 3))

    def test_cube(self):
        r = Rectangle.cube(0.0, 1.0, 3)
        assert r.ndim == 3
        assert r.volume == 1.0

    def test_full_space(self):
        r = Rectangle.full(2)
        assert r.contains_point((1e300, -1e300))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Rectangle((0.0,), (1.0, 2.0))

    def test_zero_dimensions_rejected(self):
        with pytest.raises(ValueError):
            Rectangle((), ())

    def test_sides_roundtrip(self):
        r = rect((0, 1), (2, 3))
        assert r.sides == (Interval(0, 1), Interval(2, 3))
        assert list(r) == [Interval(0, 1), Interval(2, 3)]

    def test_side_accessor(self):
        assert rect((0, 1), (2, 3)).side(1) == Interval(2, 3)


class TestContainment:
    def test_interior_point(self):
        assert rect((0, 2), (0, 2)).contains_point((1.0, 1.0))

    def test_half_open_boundaries(self):
        r = rect((0, 2), (0, 2))
        assert not r.contains_point((0.0, 1.0))  # low edge excluded
        assert r.contains_point((2.0, 1.0))  # high edge included
        assert r.contains_point((2.0, 2.0))  # corner on high edges

    def test_gryphon_example(self):
        # name=IBM (code 5), 75 < price <= 80, volume >= 1000
        subscription = Rectangle.from_intervals(
            [
                Interval(4.0, 5.0),
                Interval(75.0, 80.0),
                Interval(999.0, math.inf),
            ]
        )
        assert subscription.contains_point((5.0, 78.5, 1000.0))
        assert not subscription.contains_point((5.0, 78.5, 999.0))
        assert not subscription.contains_point((5.0, 80.5, 5000.0))
        assert not subscription.contains_point((4.0, 78.5, 5000.0))

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValueError):
            rect((0, 1), (0, 1)).contains_point((0.5,))

    def test_dunder_contains(self):
        assert (1.0, 1.0) in rect((0, 2), (0, 2))

    def test_contains_rectangle(self):
        outer = rect((0, 10), (0, 10))
        inner = rect((2, 3), (4, 5))
        assert outer.contains_rectangle(inner)
        assert not inner.contains_rectangle(outer)

    def test_contains_empty_rectangle(self):
        assert rect((0, 1), (0, 1)).contains_rectangle(
            rect((5, 4), (0, 1))
        )


class TestIntersection:
    def test_overlapping(self):
        a = rect((0, 2), (0, 2))
        b = rect((1, 3), (1, 3))
        assert a.intersects(b)
        assert a.intersection(b) == rect((1, 2), (1, 2))

    def test_touching_faces_do_not_intersect(self):
        # Half-open: (0,1] x ... and (1,2] x ... share only the closed
        # face x=1 of the first, which the second excludes.
        a = rect((0, 1), (0, 1))
        b = rect((1, 2), (0, 1))
        assert not a.intersects(b)
        assert a.intersection(b).is_empty

    def test_disjoint_in_one_dimension_suffices(self):
        a = rect((0, 1), (0, 100))
        b = rect((5, 6), (0, 100))
        assert not a.intersects(b)

    def test_empty_never_intersects(self):
        empty = rect((1, 0), (0, 1))
        assert not empty.intersects(rect((0, 1), (0, 1)))

    def test_dimension_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rect((0, 1), (0, 1)).intersects(Rectangle((0.0,), (1.0,)))


class TestHull:
    def test_hull_covers_both(self):
        a = rect((0, 1), (0, 1))
        b = rect((5, 6), (2, 3))
        h = a.hull(b)
        assert h == rect((0, 6), (0, 3))
        assert h.contains_rectangle(a)
        assert h.contains_rectangle(b)

    def test_hull_with_empty(self):
        a = rect((0, 1), (0, 1))
        empty = rect((1, 0), (0, 1))
        assert a.hull(empty) == a
        assert empty.hull(a) == a

    def test_bounding_rectangle(self):
        rects = [rect((i, i + 1), (0, 1)) for i in range(5)]
        assert bounding_rectangle(rects) == rect((0, 5), (0, 1))

    def test_bounding_rectangle_empty_input(self):
        with pytest.raises(ValueError):
            bounding_rectangle([])


class TestMeasures:
    def test_volume(self):
        assert rect((0, 2), (0, 3)).volume == 6.0

    def test_volume_empty_is_zero(self):
        assert rect((2, 0), (0, 3)).volume == 0.0

    def test_volume_unbounded_is_inf(self):
        assert rect((0, math.inf), (0, 1)).volume == math.inf

    def test_clipped_volume(self):
        unbounded = rect((0, math.inf), (0, 1))
        frame = rect((0, 10), (0, 10))
        assert unbounded.clipped_volume(frame) == 10.0

    def test_semi_perimeter(self):
        assert rect((0, 2), (0, 3)).semi_perimeter == 5.0

    def test_center(self):
        assert rect((0, 2), (0, 4)).center == (1.0, 2.0)

    def test_longest_dimension(self):
        assert rect((0, 1), (0, 10)).longest_dimension() == 1

    def test_longest_dimension_tie_prefers_lowest(self):
        assert rect((0, 5), (0, 5)).longest_dimension() == 0

    def test_longest_dimension_unbounded_wins(self):
        assert rect((0, 100), (0, math.inf)).longest_dimension() == 1

    def test_is_bounded(self):
        assert rect((0, 1), (0, 1)).is_bounded
        assert not rect((0, math.inf), (0, 1)).is_bounded


class TestConversions:
    def test_to_arrays(self):
        lows, highs = rect((0, 1), (2, 3)).to_arrays()
        assert lows.tolist() == [0.0, 2.0]
        assert highs.tolist() == [1.0, 3.0]

    def test_hashable(self):
        assert len({rect((0, 1), (0, 1)), rect((0, 1), (0, 1))}) == 1
