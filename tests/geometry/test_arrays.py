"""Unit tests for the vectorized geometry kernels."""

import math

import numpy as np
import pytest

from repro.geometry import Rectangle
from repro.geometry.arrays import (
    arrays_to_rectangles,
    bulk_centers,
    bulk_volume,
    contains_points_mask,
    mbr_of,
    point_membership_mask,
    rectangles_to_arrays,
    running_mbr_backward,
    running_mbr_forward,
)


@pytest.fixture()
def sample_arrays():
    lows = np.array([[0.0, 0.0], [1.0, 1.0], [-1.0, 2.0]])
    highs = np.array([[2.0, 2.0], [3.0, 3.0], [0.5, 5.0]])
    return lows, highs


class TestConversions:
    def test_roundtrip(self, sample_arrays):
        lows, highs = sample_arrays
        rects = arrays_to_rectangles(lows, highs)
        back_lo, back_hi = rectangles_to_arrays(rects)
        assert np.array_equal(back_lo, lows)
        assert np.array_equal(back_hi, highs)

    def test_empty_list_rejected(self):
        with pytest.raises(ValueError):
            rectangles_to_arrays([])

    def test_mixed_ndim_rejected(self):
        with pytest.raises(ValueError):
            rectangles_to_arrays(
                [Rectangle((0.0,), (1.0,)), Rectangle((0.0, 0.0), (1.0, 1.0))]
            )


class TestMembership:
    def test_matches_scalar_containment(self, sample_arrays, rng):
        lows, highs = sample_arrays
        rects = arrays_to_rectangles(lows, highs)
        for _ in range(50):
            point = rng.uniform(-2, 6, size=2)
            mask = point_membership_mask(lows, highs, point)
            expected = [r.contains_point(point) for r in rects]
            assert mask.tolist() == expected

    def test_half_open_edges(self):
        lows = np.array([[0.0]])
        highs = np.array([[1.0]])
        assert not point_membership_mask(lows, highs, [0.0])[0]
        assert point_membership_mask(lows, highs, [1.0])[0]

    def test_contains_points_mask_shape(self, sample_arrays):
        lows, highs = sample_arrays
        points = np.array([[1.0, 1.0], [10.0, 10.0]])
        mask = contains_points_mask(lows, highs, points)
        assert mask.shape == (3, 2)
        assert mask[0, 0]  # rect 0 contains (1,1)
        assert not mask[:, 1].any()  # nothing contains (10,10)


class TestMeasures:
    def test_bulk_volume(self, sample_arrays):
        lows, highs = sample_arrays
        volumes = bulk_volume(lows, highs)
        assert volumes[0] == pytest.approx(4.0)
        assert volumes[1] == pytest.approx(4.0)
        assert volumes[2] == pytest.approx(1.5 * 3.0)

    def test_bulk_volume_empty_clamped_to_zero(self):
        volumes = bulk_volume(np.array([[1.0, 0.0]]), np.array([[0.0, 1.0]]))
        assert volumes[0] == 0.0

    def test_bulk_centers_bounded(self, sample_arrays):
        lows, highs = sample_arrays
        centers = bulk_centers(lows, highs)
        assert centers[0].tolist() == [1.0, 1.0]

    def test_bulk_centers_rays(self):
        lows = np.array([[5.0, -np.inf, -np.inf]])
        highs = np.array([[np.inf, 7.0, np.inf]])
        centers = bulk_centers(lows, highs)
        assert centers[0].tolist() == [5.0, 7.0, 0.0]


class TestRunningMBRs:
    def test_forward_matches_bruteforce(self, sample_arrays):
        lows, highs = sample_arrays
        fwd_lo, fwd_hi = running_mbr_forward(lows, highs)
        for i in range(len(lows)):
            assert np.array_equal(fwd_lo[i], lows[: i + 1].min(axis=0))
            assert np.array_equal(fwd_hi[i], highs[: i + 1].max(axis=0))

    def test_backward_matches_bruteforce(self, sample_arrays):
        lows, highs = sample_arrays
        bwd_lo, bwd_hi = running_mbr_backward(lows, highs)
        for i in range(len(lows)):
            assert np.array_equal(bwd_lo[i], lows[i:].min(axis=0))
            assert np.array_equal(bwd_hi[i], highs[i:].max(axis=0))

    def test_mbr_of(self, sample_arrays):
        lows, highs = sample_arrays
        lo, hi = mbr_of(lows, highs)
        assert lo.tolist() == [-1.0, 0.0]
        assert hi.tolist() == [3.0, 5.0]

    def test_split_consistency(self, sample_arrays):
        # forward[q-1] + backward[q] together cover the whole set:
        # their hull equals the global MBR for every split q.
        lows, highs = sample_arrays
        fwd_lo, fwd_hi = running_mbr_forward(lows, highs)
        bwd_lo, bwd_hi = running_mbr_backward(lows, highs)
        glo, ghi = mbr_of(lows, highs)
        for q in range(1, len(lows)):
            hull_lo = np.minimum(fwd_lo[q - 1], bwd_lo[q])
            hull_hi = np.maximum(fwd_hi[q - 1], bwd_hi[q])
            assert np.array_equal(hull_lo, glo)
            assert np.array_equal(hull_hi, ghi)
