"""Unit tests for half-open intervals."""

import math

import pytest

from repro.geometry import FULL_LINE, Interval, parse_predicate


class TestContainment:
    def test_interior_point_contained(self):
        assert Interval(0.0, 2.0).contains(1.0)

    def test_left_endpoint_excluded(self):
        assert not Interval(0.0, 2.0).contains(0.0)

    def test_right_endpoint_included(self):
        assert Interval(0.0, 2.0).contains(2.0)

    def test_outside_points(self):
        interval = Interval(0.0, 2.0)
        assert not interval.contains(-1.0)
        assert not interval.contains(3.0)

    def test_dunder_contains(self):
        assert 1.5 in Interval(1.0, 2.0)
        assert 0.5 not in Interval(1.0, 2.0)

    def test_adjacent_intervals_tile_without_overlap(self):
        # The half-open convention exists for exactly this property.
        left = Interval(0.0, 1.0)
        right = Interval(1.0, 2.0)
        assert left.contains(1.0)
        assert not right.contains(1.0)
        assert right.contains(1.5)
        assert not left.intersects(right)

    def test_full_line_contains_everything(self):
        assert FULL_LINE.contains(0.0)
        assert FULL_LINE.contains(-1e300)
        assert FULL_LINE.contains(1e300)

    def test_ray_contains(self):
        ray = Interval(5.0, math.inf)
        assert ray.contains(6.0)
        assert not ray.contains(5.0)
        assert ray.contains(1e308)


class TestEmptiness:
    def test_reversed_is_empty(self):
        assert Interval(2.0, 1.0).is_empty

    def test_degenerate_is_empty(self):
        # (a, a] contains nothing under the half-open convention.
        assert Interval(1.0, 1.0).is_empty

    def test_proper_is_not_empty(self):
        assert not Interval(1.0, 1.0001).is_empty

    def test_empty_contains_nothing(self):
        empty = Interval(3.0, 1.0)
        assert not empty.contains(2.0)

    def test_empty_length_zero(self):
        assert Interval(3.0, 1.0).length == 0.0


class TestMeasures:
    def test_length(self):
        assert Interval(1.0, 4.0).length == 3.0

    def test_unbounded_length(self):
        assert Interval(0.0, math.inf).length == math.inf

    def test_center_bounded(self):
        assert Interval(2.0, 6.0).center == 4.0

    def test_center_lower_ray_is_finite_endpoint(self):
        assert Interval(5.0, math.inf).center == 5.0

    def test_center_upper_ray_is_finite_endpoint(self):
        assert Interval(-math.inf, 7.0).center == 7.0

    def test_center_full_line_is_zero(self):
        assert FULL_LINE.center == 0.0

    def test_is_bounded(self):
        assert Interval(0.0, 1.0).is_bounded
        assert not Interval(0.0, math.inf).is_bounded
        assert not FULL_LINE.is_bounded


class TestSetOperations:
    def test_intersects_overlapping(self):
        assert Interval(0.0, 2.0).intersects(Interval(1.0, 3.0))

    def test_intersects_is_symmetric(self):
        a, b = Interval(0.0, 2.0), Interval(1.0, 3.0)
        assert a.intersects(b) == b.intersects(a)

    def test_touching_half_open_do_not_intersect(self):
        assert not Interval(0.0, 1.0).intersects(Interval(1.0, 2.0))

    def test_disjoint_do_not_intersect(self):
        assert not Interval(0.0, 1.0).intersects(Interval(5.0, 6.0))

    def test_empty_never_intersects(self):
        empty = Interval(1.0, 0.0)
        assert not empty.intersects(FULL_LINE)
        assert not FULL_LINE.intersects(empty)

    def test_intersection_overlap(self):
        result = Interval(0.0, 2.0).intersection(Interval(1.0, 3.0))
        assert result == Interval(1.0, 2.0)

    def test_intersection_disjoint_is_empty(self):
        result = Interval(0.0, 1.0).intersection(Interval(2.0, 3.0))
        assert result.is_empty

    def test_intersection_with_full_line_is_identity(self):
        interval = Interval(2.0, 5.0)
        assert interval.intersection(FULL_LINE) == interval

    def test_hull(self):
        assert Interval(0.0, 1.0).hull(Interval(3.0, 4.0)) == Interval(
            0.0, 4.0
        )

    def test_hull_with_empty_returns_other(self):
        interval = Interval(1.0, 2.0)
        empty = Interval(5.0, 4.0)
        assert interval.hull(empty) == interval
        assert empty.hull(interval) == interval

    def test_contains_interval(self):
        assert Interval(0.0, 10.0).contains_interval(Interval(2.0, 3.0))
        assert not Interval(0.0, 10.0).contains_interval(Interval(2.0, 11.0))

    def test_contains_empty_interval_always(self):
        assert Interval(0.0, 1.0).contains_interval(Interval(9.0, 8.0))

    def test_empty_contains_nothing_nonempty(self):
        assert not Interval(1.0, 0.0).contains_interval(Interval(0.0, 1.0))

    def test_hull_of_many(self):
        result = Interval.hull_of(
            [Interval(3.0, 4.0), Interval(0.0, 1.0), Interval(2.0, 6.0)]
        )
        assert result == Interval(0.0, 6.0)

    def test_hull_of_empty_iterable_is_empty(self):
        assert Interval.hull_of([]).is_empty


class TestHelpers:
    def test_clamp(self):
        assert Interval(0.0, 10.0).clamp(2.0, 5.0) == Interval(2.0, 5.0)

    def test_split(self):
        left, right = Interval(0.0, 10.0).split(4.0)
        assert left == Interval(0.0, 4.0)
        assert right == Interval(4.0, 10.0)
        # The split point belongs to the left half only.
        assert left.contains(4.0)
        assert not right.contains(4.0)

    def test_split_outside_range(self):
        left, right = Interval(0.0, 10.0).split(20.0)
        assert left == Interval(0.0, 10.0)
        assert right.is_empty

    def test_iteration_unpacks_endpoints(self):
        lo, hi = Interval(1.0, 2.0)
        assert (lo, hi) == (1.0, 2.0)


class TestParsePredicate:
    def test_wildcard(self):
        assert parse_predicate("*", 0.0) == FULL_LINE

    def test_greater_than(self):
        interval = parse_predicate(">", 999.0)
        assert not interval.contains(999.0)
        assert interval.contains(1000.0)

    def test_greater_equal(self):
        interval = parse_predicate(">=", 1000.0)
        assert interval.contains(1000.0)
        assert not interval.contains(999.9999)

    def test_less_than(self):
        interval = parse_predicate("<", 75.0)
        assert interval.contains(74.0)
        assert not interval.contains(75.0)

    def test_less_equal(self):
        interval = parse_predicate("<=", 80.0)
        assert interval.contains(80.0)
        assert not interval.contains(80.0001)

    def test_equality(self):
        interval = parse_predicate("==", 42.0)
        assert interval.contains(42.0)
        assert not interval.contains(41.9999)
        assert not interval.contains(42.0001)

    def test_between_matches_paper_example(self):
        # 75.00 < price <= 80.00
        interval = parse_predicate("between", 75.0, 80.0)
        assert not interval.contains(75.0)
        assert interval.contains(75.01)
        assert interval.contains(80.0)
        assert not interval.contains(80.01)

    def test_between_requires_second(self):
        with pytest.raises(ValueError):
            parse_predicate("between", 1.0)

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            parse_predicate("!=", 1.0)
