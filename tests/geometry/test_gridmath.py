"""Unit tests for the rounding-safe grid-cell arithmetic."""

import numpy as np
import pytest

from repro.geometry.gridmath import covered_cell_range, locate_cell


def unit_frame(c=16):
    """Frame (0, c] with unit cells."""
    return (
        np.array([0.0]),
        np.array([float(c)]),
        np.array([1.0]),
        c,
    )


class TestCoveredCellRange:
    def test_interior_rectangle(self):
        frame_lo, _, width, c = unit_frame()
        first, last = covered_cell_range(
            np.array([2.5]), np.array([5.5]), frame_lo, width, c
        )
        assert first[0] == 2
        assert last[0] == 5

    def test_exact_boundaries_include_adjacent_candidate(self):
        # (2, 5]: true cells are 2..4; the low-side candidate widens to
        # cell 1 by design (filtered by exact tests downstream).
        frame_lo, _, width, c = unit_frame()
        first, last = covered_cell_range(
            np.array([2.0]), np.array([5.0]), frame_lo, width, c
        )
        assert first[0] == 1
        assert last[0] == 4

    def test_clipping(self):
        frame_lo, _, width, c = unit_frame(4)
        first, last = covered_cell_range(
            np.array([-10.0]), np.array([10.0]), frame_lo, width, c
        )
        assert first[0] == 0
        assert last[0] == 3

    def test_registration_consistent_with_locate(self, rng):
        """The load-bearing property: any point inside a rectangle
        locates into the rectangle's registered cell range — including
        endpoints within an ulp of cell boundaries."""
        frame_lo = np.array([0.0, -50.0])
        frame_hi = np.array([16.0, 50.0])
        width = (frame_hi - frame_lo) / 16
        for _ in range(300):
            lo = rng.uniform(frame_lo, frame_hi)
            hi = lo + rng.uniform(0.0, 5.0, size=2)
            # Perturb endpoints onto/near boundaries half the time.
            if rng.random() < 0.5:
                lo = np.floor(lo)
            if rng.random() < 0.5:
                hi = np.ceil(hi)
            first, last = covered_cell_range(lo, hi, frame_lo, width, 16)
            for _ in range(5):
                p = rng.uniform(
                    np.maximum(lo, frame_lo),
                    np.minimum(hi, frame_hi),
                )
                if np.any(p <= lo) or np.any(p > hi):
                    continue
                cell = locate_cell(p, frame_lo, frame_hi, width, 16)
                if cell is None:
                    continue
                assert np.all(first <= cell) and np.all(cell <= last)

    def test_hypothesis_counterexample_regression(self):
        """The exact failing case the property tests found: a low edge
        one ulp below a cell boundary quantizing onto it."""
        frame_lo = np.array([-50.0])
        frame_hi = np.array([50.0])
        width = (frame_hi - frame_lo) / 16
        lo = np.array([-2.52997437e-50])  # a hair below 0.0
        hi = np.array([50.0])
        first, last = covered_cell_range(lo, hi, frame_lo, width, 16)
        point = np.array([0.0])  # inside (lo, hi]
        cell = locate_cell(point, frame_lo, frame_hi, width, 16)
        assert first[0] <= cell[0] <= last[0]


class TestLocateCell:
    def test_half_open_boundaries(self):
        frame_lo, frame_hi, width, c = unit_frame(4)
        frame_hi = np.array([4.0])
        # Low frame edge is outside.
        assert locate_cell(
            np.array([0.0]), frame_lo, frame_hi, width, 4
        ) is None
        # Cell high boundary belongs to the cell.
        assert locate_cell(
            np.array([1.0]), frame_lo, frame_hi, width, 4
        )[0] == 0
        assert locate_cell(
            np.array([1.0000001]), frame_lo, frame_hi, width, 4
        )[0] == 1
        # The frame's high edge is in the last cell.
        assert locate_cell(
            np.array([4.0]), frame_lo, frame_hi, width, 4
        )[0] == 3

    def test_outside_frame(self):
        frame_lo, frame_hi, width, c = unit_frame(4)
        frame_hi = np.array([4.0])
        assert locate_cell(
            np.array([4.5]), frame_lo, frame_hi, width, 4
        ) is None
        assert locate_cell(
            np.array([-0.5]), frame_lo, frame_hi, width, 4
        ) is None
