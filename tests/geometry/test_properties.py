"""Property-based tests for the geometric primitives."""

import math

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Interval, Rectangle
from repro.geometry.arrays import point_membership_mask

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)
endpoints = st.one_of(
    finite_floats, st.just(math.inf), st.just(-math.inf)
)


@st.composite
def intervals(draw):
    lo = draw(endpoints)
    hi = draw(endpoints)
    return Interval(lo, hi)


@st.composite
def rectangles(draw, ndim=3):
    sides = [draw(intervals()) for _ in range(ndim)]
    return Rectangle.from_intervals(sides)


class TestIntervalProperties:
    @given(intervals(), intervals())
    def test_intersection_commutes(self, a, b):
        ab = a.intersection(b)
        ba = b.intersection(a)
        assert ab == ba or (ab.is_empty and ba.is_empty)

    @given(intervals(), intervals(), finite_floats)
    def test_intersection_semantics(self, a, b, x):
        # x is in a∩b exactly when it is in both.
        assert a.intersection(b).contains(x) == (
            a.contains(x) and b.contains(x)
        )

    @given(intervals(), intervals(), finite_floats)
    def test_hull_contains_members(self, a, b, x):
        if a.contains(x) or b.contains(x):
            assert a.hull(b).contains(x)

    @given(intervals(), intervals())
    def test_intersects_iff_nonempty_intersection(self, a, b):
        assert a.intersects(b) == (not a.intersection(b).is_empty)

    @given(intervals())
    def test_self_hull_is_identity_when_nonempty(self, a):
        if not a.is_empty:
            assert a.hull(a) == a

    @given(intervals(), intervals())
    def test_contains_interval_transitive_with_intersection(self, a, b):
        # a ⊇ (a∩b) always.
        assert a.contains_interval(a.intersection(b))


class TestRectangleProperties:
    @given(rectangles(), rectangles())
    def test_intersects_symmetric(self, a, b):
        assert a.intersects(b) == b.intersects(a)

    @given(
        rectangles(),
        rectangles(),
        st.lists(finite_floats, min_size=3, max_size=3),
    )
    def test_intersection_semantics(self, a, b, coords):
        point = tuple(coords)
        assert a.intersection(b).contains_point(point) == (
            a.contains_point(point) and b.contains_point(point)
        )

    @given(
        rectangles(),
        rectangles(),
        st.lists(finite_floats, min_size=3, max_size=3),
    )
    def test_hull_contains_members(self, a, b, coords):
        point = tuple(coords)
        if a.contains_point(point) or b.contains_point(point):
            assert a.hull(b).contains_point(point)

    @given(rectangles())
    def test_volume_nonnegative(self, r):
        assert r.volume >= 0.0

    @given(rectangles(), rectangles())
    def test_intersection_volume_bounded(self, a, b):
        inter = a.intersection(b)
        if a.is_bounded and b.is_bounded:
            assert inter.volume <= min(a.volume, b.volume) + 1e-6

    @given(rectangles())
    def test_hull_with_self_has_same_volume(self, r):
        if not r.is_empty:
            assert r.hull(r).volume == r.volume

    @given(
        st.lists(rectangles(), min_size=1, max_size=8),
        st.lists(finite_floats, min_size=3, max_size=3),
    )
    def test_bulk_membership_agrees_with_scalar(self, rects, coords):
        lows = np.array([r.lows for r in rects])
        highs = np.array([r.highs for r in rects])
        point = tuple(coords)
        mask = point_membership_mask(lows, highs, point)
        assert mask.tolist() == [r.contains_point(point) for r in rects]
