"""Unit tests for point normalization helpers."""

import math

import numpy as np
import pytest

from repro.geometry import as_point, points_to_array


class TestAsPoint:
    def test_basic_conversion(self):
        assert as_point([1, 2, 3]) == (1.0, 2.0, 3.0)

    def test_accepts_numpy_row(self):
        assert as_point(np.array([1.5, 2.5])) == (1.5, 2.5)

    def test_ndim_validation(self):
        assert as_point([1, 2], ndim=2) == (1.0, 2.0)
        with pytest.raises(ValueError):
            as_point([1, 2], ndim=3)

    def test_rejects_infinite_coordinates(self):
        with pytest.raises(ValueError):
            as_point([1.0, math.inf])

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            as_point([float("nan")])


class TestPointsToArray:
    def test_stacks_points(self):
        array = points_to_array([(0, 1), (2, 3)])
        assert array.shape == (2, 2)
        assert array.dtype == np.float64

    def test_single_point_promoted(self):
        assert points_to_array([1.0, 2.0, 3.0]).shape == (1, 3)

    def test_rejects_ragged(self):
        with pytest.raises(ValueError):
            points_to_array(np.zeros((2, 2, 2)))
