"""Corruption fuzzing: recovery must never raise, whatever the damage.

The WAL's contract is "truncate, don't trust": any torn tail or
flipped bit inside the log body must leave :func:`repro.durability.
recover` with a clean, usable prefix.  These tests hammer that with
seeded random damage — every truncation point and every bit position
in a realistic log — and are the `crash-recovery-smoke` CI job's
fuzz leg.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.subscription import SubscriptionTable
from repro.durability import (
    MemorySnapshotStore,
    MemoryWAL,
    RecordKind,
    Snapshot,
    recover,
)
from repro.io import table_to_dict


def build_log():
    """A realistic mixed log: churn, intents, completions, checkpoints."""
    wal = MemoryWAL(clock=lambda: 1.0)
    for sid in range(8):
        wal.append(
            RecordKind.SUBSCRIBE,
            {
                "sid": sid,
                "subscriber": 100 + sid,
                "lows": [0.0, float(sid)],
                "highs": [1.0, sid + 1.0],
            },
        )
    wal.append(RecordKind.UNSUBSCRIBE, {"sid": 3})
    for seq in range(10):
        wal.append(
            RecordKind.PUBLISH,
            {
                "seq": seq,
                "publisher": 5,
                "targets": [100 + (seq % 4), 104],
            },
        )
        if seq % 2 == 0:
            wal.append(
                RecordKind.DELIVER, {"seq": seq, "target": 100 + (seq % 4)}
            )
    wal.append(RecordKind.CHECKPOINT, {"snapshot_id": 0, "lsn": 0})
    return wal


def build_store():
    table = SubscriptionTable(2)
    store = MemorySnapshotStore()
    store.save(
        Snapshot(snapshot_id=0, checkpoint_lsn=0, table=table_to_dict(table))
    )
    return store


def damaged_copy(body, base):
    wal = MemoryWAL()
    wal._store(base, body)
    return wal


def test_every_truncation_point_recovers():
    pristine = build_log()
    body = pristine._load()
    base = pristine.base_lsn
    for cut in range(len(body) + 1):
        wal = damaged_copy(body[:cut], base)
        state = recover(wal, MemorySnapshotStore())  # must not raise
        assert wal.scan().clean
        assert state.truncated_bytes >= 0


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_random_bit_flips_recover(seed):
    rng = np.random.default_rng(seed)
    pristine = build_log()
    body = bytearray(pristine._load())
    base = pristine.base_lsn
    for _ in range(40):
        mutated = bytearray(body)
        for _ in range(int(rng.integers(1, 4))):
            position = int(rng.integers(len(mutated)))
            mutated[position] ^= 1 << int(rng.integers(8))
        wal = damaged_copy(bytes(mutated), base)
        state = recover(wal, build_store())  # must not raise
        # Whatever survived is a clean log and a coherent state.
        assert wal.scan().clean
        assert state.digest() == recover(
            damaged_copy(wal._load(), wal.base_lsn), build_store()
        ).digest()


@pytest.mark.parametrize("seed", [7, 8])
def test_random_tears_then_appends(seed):
    rng = np.random.default_rng(seed)
    for _ in range(20):
        wal = build_log()
        wal.tear_tail(int(rng.integers(1, 200)))
        state = recover(wal, MemorySnapshotStore())
        assert wal.scan().clean
        # A repaired log accepts new traffic at the valid end.
        lsn = wal.append(RecordKind.DELIVER, {"seq": 99, "target": 1})
        assert lsn == state.valid_end
        assert wal.scan().clean
