"""Snapshots: digest verification and newest-valid-wins retrieval."""

from __future__ import annotations

import json

import pytest

from repro.durability import FileSnapshotStore, MemorySnapshotStore, Snapshot

TABLE = {
    "ndim": 2,
    "subscriptions": [
        {"subscriber": 3, "lows": [0.0, "-inf"], "highs": [1.0, "inf"]},
    ],
}


def snap(snapshot_id=0, checkpoint_lsn=17):
    return Snapshot(
        snapshot_id=snapshot_id,
        checkpoint_lsn=checkpoint_lsn,
        table=TABLE,
        removed=[2],
        partition={"algorithm": "forgy", "cells_per_dim": 4},
        taken_at=8.5,
    )


class TestCodec:
    def test_round_trip(self):
        original = snap()
        restored = Snapshot.from_dict(original.to_dict())
        assert restored == original

    def test_digest_detects_tampering(self):
        payload = snap().to_dict()
        payload["checkpoint_lsn"] += 1
        with pytest.raises(ValueError, match="digest mismatch"):
            Snapshot.from_dict(payload)

    def test_digest_is_content_stable(self):
        assert snap().digest() == snap().digest()
        assert snap().digest() != snap(checkpoint_lsn=99).digest()

    def test_unknown_format_version_rejected(self):
        payload = snap().to_dict()
        payload["format_version"] = 99
        with pytest.raises(ValueError, match="format version"):
            Snapshot.from_dict(payload)


class TestMemoryStore:
    def test_latest_is_highest_id(self):
        store = MemorySnapshotStore()
        assert store.latest() is None
        store.save(snap(snapshot_id=0))
        store.save(snap(snapshot_id=2, checkpoint_lsn=50))
        store.save(snap(snapshot_id=1))
        assert store.latest().snapshot_id == 2
        assert store.ids() == [0, 1, 2]


class TestFileStore:
    def test_save_and_latest(self, tmp_path):
        store = FileSnapshotStore(tmp_path / "snaps")
        store.save(snap(snapshot_id=0))
        store.save(snap(snapshot_id=1, checkpoint_lsn=40))
        latest = store.latest()
        assert latest.snapshot_id == 1
        assert latest.checkpoint_lsn == 40
        assert store.ids() == [0, 1]

    def test_corrupt_newest_falls_back_to_previous_valid(self, tmp_path):
        store = FileSnapshotStore(tmp_path)
        store.save(snap(snapshot_id=0))
        store.save(snap(snapshot_id=1, checkpoint_lsn=40))
        newest = store._path(1)
        # A torn write: only half the JSON made it to disk.
        newest.write_text(newest.read_text()[: newest.stat().st_size // 2])
        latest = store.latest()
        assert latest.snapshot_id == 0

    def test_digest_tampered_newest_skipped(self, tmp_path):
        store = FileSnapshotStore(tmp_path)
        store.save(snap(snapshot_id=0))
        store.save(snap(snapshot_id=1, checkpoint_lsn=40))
        newest = store._path(1)
        payload = json.loads(newest.read_text())
        payload["checkpoint_lsn"] = 9999  # digest no longer matches
        newest.write_text(json.dumps(payload))
        assert store.latest().snapshot_id == 0

    def test_all_corrupt_returns_none(self, tmp_path):
        store = FileSnapshotStore(tmp_path)
        store.save(snap(snapshot_id=0))
        store._path(0).write_text("{")
        assert store.latest() is None

    def test_ids_ignore_foreign_files(self, tmp_path):
        store = FileSnapshotStore(tmp_path)
        store.save(snap(snapshot_id=3))
        (tmp_path / "snapshot-notanumber.json").write_text("{}")
        (tmp_path / "other.txt").write_text("hi")
        assert store.ids() == [3]
