"""The write-ahead log: framing, LSN arithmetic, damage detection."""

from __future__ import annotations

import struct

import pytest

from repro.durability import FileWAL, MemoryWAL, RecordKind
from repro.durability.wal import MAX_PAYLOAD, encode_record

_RECORD_HEADER = struct.Struct("<II")


@pytest.fixture(params=["memory", "file"])
def make_wal(request, tmp_path):
    """Factory building either WAL flavour (they must be bit-compatible)."""
    counter = {"n": 0}

    def build(clock=None):
        if request.param == "memory":
            return MemoryWAL(clock=clock)
        counter["n"] += 1
        return FileWAL(tmp_path / f"wal-{counter['n']}.wal", clock=clock)

    return build


class TestRoundTrip:
    def test_append_scan_round_trip(self, make_wal):
        wal = make_wal()
        bodies = [
            (RecordKind.SUBSCRIBE, {"sid": 0, "subscriber": 7}),
            (RecordKind.PUBLISH, {"seq": 1, "targets": [3, 4]}),
            (RecordKind.DELIVER, {"seq": 1, "target": 3}),
        ]
        lsns = [wal.append(kind, dict(body)) for kind, body in bodies]
        result = wal.scan()
        assert result.clean
        assert [r.lsn for r in result.records] == lsns
        assert [r.kind for r in result.records] == [k for k, _ in bodies]
        for record, (_, body) in zip(result.records, bodies):
            for key, value in body.items():
                assert record.body[key] == value
        assert result.valid_end == wal.end_lsn
        assert wal.appends == 3

    def test_records_are_clock_stamped(self, make_wal):
        times = iter([4.5, 9.0])
        wal = make_wal(clock=lambda: next(times))
        wal.append(RecordKind.DELIVER, {"seq": 0, "target": 1})
        wal.append(RecordKind.DELIVER, {"seq": 0, "target": 2, "t": 1.25})
        first, second = wal.scan().records
        assert first.body["t"] == 4.5
        # A caller-supplied stamp wins over the clock.
        assert second.body["t"] == 1.25

    def test_end_lsn_matches_record_arithmetic(self, make_wal):
        wal = make_wal()
        wal.append(RecordKind.CHECKPOINT, {"snapshot_id": 0, "lsn": 0})
        (record,) = wal.scan().records
        assert record.end_lsn == wal.end_lsn

    def test_memory_and_file_are_bit_compatible(self, tmp_path):
        mem = MemoryWAL(clock=lambda: 2.0)
        disk = FileWAL(tmp_path / "twin.wal", clock=lambda: 2.0)
        for wal in (mem, disk):
            wal.append(RecordKind.SUBSCRIBE, {"sid": 0, "subscriber": 3})
            wal.append(RecordKind.PUBLISH, {"seq": 0, "targets": [3]})
        assert mem.dump() == disk.dump()

    def test_file_wal_survives_reopen(self, tmp_path):
        path = tmp_path / "reopen.wal"
        first = FileWAL(path)
        lsn = first.append(RecordKind.DELIVER, {"seq": 9, "target": 1})
        reopened = FileWAL(path)
        result = reopened.scan()
        assert result.clean
        assert [r.lsn for r in result.records] == [lsn]
        assert reopened.base_lsn == first.base_lsn

    def test_file_wal_rejects_foreign_bytes(self, tmp_path):
        path = tmp_path / "not-a-wal"
        path.write_bytes(b"GARBAGE!" + b"\x00" * 16)
        with pytest.raises(ValueError, match="bad magic"):
            FileWAL(path)
        short = tmp_path / "short"
        short.write_bytes(b"RE")
        with pytest.raises(ValueError, match="too short"):
            FileWAL(short)


class TestLsnStability:
    def test_truncate_prefix_preserves_lsns(self, make_wal):
        wal = make_wal()
        lsns = [
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
            for i in range(4)
        ]
        dropped = wal.truncate_prefix(lsns[2])
        assert dropped == lsns[2] - lsns[0]
        assert wal.base_lsn == lsns[2]
        result = wal.scan()
        assert result.clean
        assert [r.lsn for r in result.records] == lsns[2:]
        # Appends after truncation continue the same LSN space.
        next_lsn = wal.append(RecordKind.DELIVER, {"seq": 9, "target": 9})
        assert next_lsn > lsns[-1]

    def test_truncate_below_base_is_noop(self, make_wal):
        wal = make_wal()
        first = wal.append(RecordKind.DELIVER, {"seq": 0, "target": 0})
        second = wal.append(RecordKind.DELIVER, {"seq": 0, "target": 1})
        wal.truncate_prefix(second)
        assert wal.truncate_prefix(first) == 0
        assert wal.base_lsn == second

    def test_truncate_empty_log_at_base_is_a_noop(self, make_wal):
        wal = make_wal()
        assert wal.truncate_prefix(wal.base_lsn) == 0
        assert wal.base_lsn == wal.end_lsn

    def test_truncate_at_head_empties_but_keeps_lsn_space(self, make_wal):
        wal = make_wal()
        for i in range(3):
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
        base, head = wal.base_lsn, wal.end_lsn
        dropped = wal.truncate_prefix(head)
        assert dropped == head - base  # every retained byte went
        assert wal.base_lsn == wal.end_lsn == head
        assert wal.scan().records == ()
        # The LSN space continues monotonically after a full truncation.
        next_lsn = wal.append(RecordKind.DELIVER, {"seq": 9, "target": 9})
        assert next_lsn == head

    def test_truncate_past_head_raises_with_context(self, make_wal):
        # Must be a plain raise (not an assert): the message has to
        # survive `python -O`.
        wal = make_wal()
        wal.append(RecordKind.DELIVER, {"seq": 0, "target": 0})
        with pytest.raises(ValueError, match="lies past the log head"):
            wal.truncate_prefix(wal.end_lsn + 1)

    def test_truncate_at_record_lsn_keeps_that_record(self, make_wal):
        # An LSN names a record's *first* byte: truncating at it drops
        # only the strictly-below prefix, so the record survives — the
        # contract retention's cursor low-water mark relies on.
        wal = make_wal()
        lsns = [
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
            for i in range(2)
        ]
        wal.truncate_prefix(lsns[1])
        (survivor,) = wal.scan().records
        assert survivor.lsn == lsns[1]
        assert survivor.body["seq"] == 1

    def test_scan_from_lsn_seeks(self, make_wal):
        wal = make_wal()
        lsns = [
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
            for i in range(3)
        ]
        result = wal.scan(from_lsn=lsns[1])
        assert [r.lsn for r in result.records] == lsns[1:]
        past = wal.scan(from_lsn=wal.end_lsn + 100)
        assert past.records == ()


class TestDamage:
    def _seed(self, wal, n=3):
        return [
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
            for i in range(n)
        ]

    def test_torn_tail_stops_scan_without_raising(self, make_wal):
        wal = make_wal()
        lsns = self._seed(wal)
        assert wal.tear_tail(5) == 5
        result = wal.scan()
        assert not result.clean
        assert "torn" in result.corruption
        assert [r.lsn for r in result.records] == lsns[:2]
        assert result.valid_end == lsns[2]

    def test_bit_flip_fails_crc(self, make_wal):
        wal = make_wal()
        lsns = self._seed(wal)
        assert wal.flip_bit(3, bit=2)
        result = wal.scan()
        assert not result.clean
        assert "CRC mismatch" in result.corruption
        assert [r.lsn for r in result.records] == lsns[:2]

    def test_implausible_length_is_corruption(self, make_wal):
        wal = make_wal()
        lsns = self._seed(wal, n=1)
        wal._append_bytes(_RECORD_HEADER.pack(MAX_PAYLOAD + 1, 0))
        result = wal.scan()
        assert not result.clean
        assert "implausible" in result.corruption
        assert [r.lsn for r in result.records] == lsns

    def test_undecodable_payload_is_corruption(self, make_wal):
        import zlib

        wal = make_wal()
        payload = bytes([int(RecordKind.DELIVER)]) + b"not json"
        wal._append_bytes(
            _RECORD_HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        )
        result = wal.scan()
        assert not result.clean
        assert "undecodable" in result.corruption

    def test_repair_truncates_at_last_valid_record(self, make_wal):
        wal = make_wal()
        lsns = self._seed(wal)
        end_before = wal.end_lsn
        wal.tear_tail(7)
        removed = wal.repair()
        # Everything from the damaged record on is gone, not just the
        # missing bytes.
        assert removed == end_before - 7 - lsns[2]
        result = wal.scan()
        assert result.clean
        assert [r.lsn for r in result.records] == lsns[:2]
        # Idempotent, and the log accepts appends again.
        assert wal.repair() == 0
        wal.append(RecordKind.DELIVER, {"seq": 9, "target": 9})
        assert wal.scan().clean

    def test_tear_never_removes_the_header(self, make_wal):
        wal = make_wal()
        self._seed(wal, n=1)
        body = wal.end_lsn - wal.base_lsn
        assert wal.tear_tail(10_000) == body
        assert wal.scan().records == ()

    def test_injector_validation(self, make_wal):
        wal = make_wal()
        with pytest.raises(ValueError, match="nbytes must be positive"):
            wal.tear_tail(0)
        with pytest.raises(ValueError, match="offset_from_end"):
            wal.flip_bit(0)
        with pytest.raises(ValueError, match="bit must lie in 0..7"):
            wal.flip_bit(1, bit=8)
        assert wal.flip_bit(10) is False  # shorter than the offset


def test_encode_record_is_deterministic():
    a = encode_record(RecordKind.PUBLISH, {"seq": 1, "targets": [2, 3]})
    b = encode_record(RecordKind.PUBLISH, {"targets": [2, 3], "seq": 1})
    assert a == b  # canonical JSON: key order cannot matter
