"""Interrupted writes must never destroy the previous file (satellite:
atomic persistence for testbeds and experiment exports)."""

from __future__ import annotations

import os

import pytest

from repro.experiments.export import write_csv
from repro.io import atomic_write_text, load_testbed, save_testbed


class TestAtomicWriteText:
    def test_writes_and_replaces(self, tmp_path):
        target = tmp_path / "out.json"
        atomic_write_text(target, "first")
        atomic_write_text(target, "second")
        assert target.read_text() == "second"
        assert list(tmp_path.iterdir()) == [target]  # no temp leftovers

    def test_failure_keeps_previous_content(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        atomic_write_text(target, "precious")

        import repro.io as io_module

        def exploding_replace(src, dst):
            raise OSError("disk full")

        monkeypatch.setattr(io_module.os, "replace", exploding_replace)
        with pytest.raises(OSError, match="disk full"):
            atomic_write_text(target, "half-written garbage")
        monkeypatch.undo()
        assert target.read_text() == "precious"
        assert list(tmp_path.iterdir()) == [target]


class TestSaveTestbed:
    def test_interrupted_save_keeps_old_testbed(
        self, tmp_path, monkeypatch, small_topology, small_table
    ):
        target = tmp_path / "testbed.json"
        save_testbed(target, small_topology, small_table)
        before = target.read_bytes()

        import repro.io as io_module

        monkeypatch.setattr(
            io_module.os,
            "replace",
            lambda src, dst: (_ for _ in ()).throw(OSError("yanked")),
        )
        with pytest.raises(OSError, match="yanked"):
            save_testbed(target, small_topology, small_table)
        monkeypatch.undo()
        assert target.read_bytes() == before
        topology, table = load_testbed(target)  # still fully loadable
        assert topology.num_nodes == small_topology.num_nodes
        assert len(table) == len(small_table)
        assert [p.name for p in tmp_path.iterdir()] == ["testbed.json"]


class TestWriteCsv:
    def test_happy_path(self, tmp_path):
        target = tmp_path / "rows.csv"
        count = write_csv(target, ("a", "b"), [(1, 2), (3, 4)])
        assert count == 2
        lines = target.read_text().splitlines()
        assert lines == ["a,b", "1,2", "3,4"]

    def test_failing_row_iterator_keeps_old_file(self, tmp_path):
        target = tmp_path / "rows.csv"
        write_csv(target, ("a", "b"), [(1, 2)])
        before = target.read_text()

        def poisoned():
            yield (3, 4)
            raise RuntimeError("source broke mid-export")

        with pytest.raises(RuntimeError, match="mid-export"):
            write_csv(target, ("a", "b"), poisoned())
        assert target.read_text() == before
        assert [p.name for p in tmp_path.iterdir()] == ["rows.csv"]

    def test_bad_row_width_keeps_old_file(self, tmp_path):
        target = tmp_path / "rows.csv"
        write_csv(target, ("a", "b"), [(1, 2)])
        with pytest.raises(ValueError, match="cells"):
            write_csv(target, ("a", "b"), [(1, 2), (3, 4, 5)])
        assert target.read_text().splitlines() == ["a,b", "1,2"]

    def test_fresh_file_failure_leaves_nothing(self, tmp_path):
        target = tmp_path / "never.csv"
        with pytest.raises(ValueError):
            write_csv(target, ("a",), [(1, 2)])
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_temp_files_are_cleaned_up(self, tmp_path):
        # Even repeated failures never accumulate temp litter.
        target = tmp_path / "rows.csv"
        for _ in range(3):
            with pytest.raises(ValueError):
                write_csv(target, ("a",), [(1, 2)])
        assert list(tmp_path.iterdir()) == []
        assert os.listdir(tmp_path) == []
