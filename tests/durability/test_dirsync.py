"""Directory fsync after atomic renames (satellite: a freshly created
WAL or snapshot must survive a host crash, not just a process crash).

``os.replace`` makes the rename atomic, but until the *containing
directory* is fsynced the new directory entry may only exist in the
page cache — a power loss right after the rename can roll the file
back to its previous state, or to nothing at all for a fresh file.
These tests monkeypatch :func:`os.fsync` to record which descriptors
get synced and assert the directory's fd is among them.
"""

from __future__ import annotations

import os
import stat

import pytest

from repro.durability import FileWAL, RecordKind
from repro.durability.snapshot import FileSnapshotStore, Snapshot
from repro.io import atomic_write_text, fsync_dir


class _FsyncRecorder:
    """Wraps ``os.fsync`` and remembers whether any synced fd was a
    directory (fd identity is useless after close, so classify live)."""

    def __init__(self):
        self.dir_syncs = []
        self.calls = 0
        self._real = os.fsync

    def __call__(self, fd):
        self.calls += 1
        if stat.S_ISDIR(os.fstat(fd).st_mode):
            self.dir_syncs.append(os.stat(fd).st_ino)
        return self._real(fd)


@pytest.fixture
def recorder(monkeypatch):
    recording = _FsyncRecorder()
    monkeypatch.setattr(os, "fsync", recording)
    return recording


def _inode(path) -> int:
    return os.stat(path).st_ino


class TestFsyncDir:
    def test_syncs_the_directory_descriptor(self, tmp_path, recorder):
        fsync_dir(tmp_path)
        assert recorder.dir_syncs == [_inode(tmp_path)]

    def test_missing_directory_is_tolerated(self, tmp_path, recorder):
        fsync_dir(tmp_path / "nonexistent")  # must not raise
        assert recorder.calls == 0


class TestAtomicWriteDurability:
    def test_atomic_write_text_syncs_the_parent(self, tmp_path, recorder):
        atomic_write_text(tmp_path / "out.json", "payload")
        assert _inode(tmp_path) in recorder.dir_syncs


class TestWalDurability:
    def test_fresh_wal_creation_syncs_the_parent(self, tmp_path, recorder):
        FileWAL(tmp_path / "broker.wal")
        assert _inode(tmp_path) in recorder.dir_syncs

    def test_store_rewrite_syncs_the_parent(self, tmp_path, recorder):
        wal = FileWAL(tmp_path / "broker.wal")
        wal.append(RecordKind.PUBLISH, {"seq": 0, "targets": [1]})
        recorder.dir_syncs.clear()
        # truncate_prefix rewrites the file via tmp + os.replace.
        wal.truncate_prefix(wal.end_lsn)
        assert _inode(tmp_path) in recorder.dir_syncs


class TestSnapshotDurability:
    def test_snapshot_save_syncs_the_store_directory(
        self, tmp_path, recorder
    ):
        store = FileSnapshotStore(tmp_path / "snapshots")
        recorder.dir_syncs.clear()
        store.save(
            Snapshot(
                snapshot_id=1,
                checkpoint_lsn=0,
                table={"dimension": 1, "subscriptions": []},
            )
        )
        assert _inode(tmp_path / "snapshots") in recorder.dir_syncs
