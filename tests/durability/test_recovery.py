"""Recovery: snapshot + WAL replay semantics, down to each record kind."""

from __future__ import annotations

import pytest

from repro.core.subscription import SubscriptionTable
from repro.durability import (
    BrokerJournal,
    MemorySnapshotStore,
    MemoryWAL,
    RecordKind,
    recover,
    restore_broker,
)
from repro.faults.verifier import build_chaos_testbed
from repro.geometry.rectangle import Rectangle
from repro.io import table_to_dict
from repro.workload import PublicationGenerator


def subscribe_record(sid, subscriber=7, lows=(0.0, 0.0), highs=(1.0, 1.0)):
    return {
        "sid": sid,
        "subscriber": subscriber,
        "lows": list(lows),
        "highs": list(highs),
    }


class TestReplaySemantics:
    def test_empty_storage_recovers_to_nothing(self):
        state = recover(MemoryWAL(), MemorySnapshotStore())
        assert state.table is None
        assert state.inflight == {}
        assert state.replayed == 0

    def test_subscribes_rebuild_the_table(self):
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        wal.append(
            RecordKind.SUBSCRIBE,
            subscribe_record(1, subscriber=9, lows=(2.0, "-inf")),
        )
        state = recover(wal, MemorySnapshotStore())
        assert len(state.table) == 2
        assert state.subscriptions_replayed == 2
        assert state.table[1].subscriber == 9
        assert state.table[1].rectangle.lows[1] == float("-inf")

    def test_id_space_gap_is_skipped_not_misassigned(self):
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(5))  # gap
        state = recover(wal, MemorySnapshotStore())
        assert len(state.table) == 1
        assert state.skipped == 1

    def test_unsubscribe_tombstones(self):
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        wal.append(RecordKind.UNSUBSCRIBE, {"sid": 0})
        wal.append(RecordKind.UNSUBSCRIBE, {"sid": 44})  # unknown id
        state = recover(wal, MemorySnapshotStore())
        assert state.removed == {0}
        assert state.removals_replayed == 1
        assert state.skipped == 1

    def test_records_below_checkpoint_lsn_are_not_replayed(self):
        from repro.durability import Snapshot

        wal = MemoryWAL()
        table = SubscriptionTable(2)
        table.add(7, Rectangle((0.0, 0.0), (1.0, 1.0)))
        early = wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        boundary = wal.end_lsn
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(1, subscriber=8))
        store = MemorySnapshotStore()
        store.save(
            Snapshot(
                snapshot_id=0,
                checkpoint_lsn=boundary,
                table=table_to_dict(table),
            )
        )
        state = recover(wal, store)
        # The early SUBSCRIBE is inside the snapshot; only the one at
        # or past the boundary replays on top of the snapshot table.
        assert early < boundary
        assert state.subscriptions_replayed == 1
        assert len(state.table) == 2
        assert state.checkpoint_lsn == boundary

    def test_publish_deliver_reconstruct_inflight(self):
        wal = MemoryWAL()
        lsn = wal.append(
            RecordKind.PUBLISH,
            {"seq": 4, "publisher": 2, "targets": [10, 11, 12]},
        )
        wal.append(RecordKind.PUBLISH, {"seq": 5, "publisher": 2, "targets": [10]})
        wal.append(RecordKind.DELIVER, {"seq": 4, "target": 11})
        wal.append(RecordKind.DELIVER, {"seq": 5, "target": 10})
        state = recover(wal, MemorySnapshotStore())
        # seq 5 finished; seq 4 still owes targets 10 and 12.
        assert set(state.inflight) == {4}
        entry = state.inflight[4]
        assert entry.targets == (10, 12)
        assert entry.publisher == 2
        assert entry.lsn == lsn

    def test_malformed_body_skipped_never_raised(self):
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, {"nonsense": True})
        wal.append(RecordKind.PUBLISH, {"seq": "x", "publisher": [], "targets": 3})
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        state = recover(wal, MemorySnapshotStore())
        assert state.skipped == 2
        assert len(state.table) == 1

    def test_torn_tail_truncates_and_repairs(self):
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(1))
        wal.tear_tail(4)
        state = recover(wal, MemorySnapshotStore())
        assert state.truncated_bytes > 0
        assert "torn" in state.corruption
        assert len(state.table) == 1
        # The log was physically repaired: the next scan is clean.
        assert wal.scan().clean

    def test_digest_is_deterministic(self):
        def build():
            wal = MemoryWAL()
            wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
            wal.append(
                RecordKind.PUBLISH,
                {"seq": 0, "publisher": 1, "targets": [5]},
            )
            return recover(wal, MemorySnapshotStore())

        assert build().digest() == build().digest()


class TestRestoreBroker:
    def test_refuses_empty_state(self):
        broker, _ = _testbed()
        state = recover(MemoryWAL(), MemorySnapshotStore())
        with pytest.raises(ValueError, match="empty recovered state"):
            restore_broker(broker, state)

    def test_refuses_state_without_partition(self):
        broker, _ = _testbed()
        wal = MemoryWAL()
        wal.append(RecordKind.SUBSCRIBE, subscribe_record(0))
        state = recover(wal, MemorySnapshotStore())
        with pytest.raises(ValueError, match="no partition assignment"):
            restore_broker(broker, state)

    def test_round_trip_preserves_matching(self):
        broker, density = _testbed()
        wal = MemoryWAL()
        store = MemorySnapshotStore()
        journal = BrokerJournal(broker, wal, store, checkpoint_every=10_000)
        broker.attach_journal(journal)
        journal.checkpoint()

        # Post-checkpoint churn rides the WAL, not the snapshot.
        stub = broker.topology.all_stub_nodes()
        template = broker.table[0].rectangle
        added = broker.subscribe(int(stub[0]), template)
        broker.unsubscribe(2)

        reference, _ = _testbed()
        state = recover(wal, store)
        assert state.subscriptions_replayed == 1
        assert state.removals_replayed == 1
        restore_broker(reference, state)

        points, _ = PublicationGenerator(
            density, stub, seed=77
        ).generate(40)
        for point in points:
            expected = broker.engine.match_point(point)
            recovered = reference.engine.match_point(point)
            assert recovered.subscription_ids == expected.subscription_ids
            assert recovered.subscribers == expected.subscribers
        # The replayed add is genuinely live in the recovered engine:
        # probe a point inside its rectangle (lows < p <= highs).
        inf = float("inf")
        probe_point = tuple(
            hi if hi != inf else (lo + 1.0 if lo != -inf else 0.0)
            for lo, hi in zip(template.lows, template.highs)
        )
        probe = reference.engine.match_point(probe_point)
        assert added.subscription_id in probe.subscription_ids
        assert reference.partition.num_groups == broker.partition.num_groups
        for q in range(1, reference.partition.num_groups + 1):
            assert (
                reference.partition.group(q).members
                == broker.partition.group(q).members
            )


def _testbed():
    return build_chaos_testbed(
        seed=5, subscriptions=60, num_groups=5, dynamic=True
    )
