"""End-to-end crash recovery: exactly-once across restarts, determinism."""

from __future__ import annotations

import pytest

from repro.core import ThresholdPolicy
from repro.durability import MemorySnapshotStore, MemoryWAL
from repro.faults import (
    CrashRecoverySimulation,
    FaultPlan,
    WalCorruption,
    build_crash_recovery_plan,
)
from repro.faults.verifier import build_chaos_testbed
from repro.workload import PublicationGenerator

EVENTS = 120
SUBSCRIPTIONS = 100


def make_run(seed=2003, corrupt=None, crashes=2):
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=SUBSCRIPTIONS, num_groups=7, dynamic=True
    )
    broker.policy = ThresholdPolicy(0.15)
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(EVENTS)
    plan, home = build_crash_recovery_plan(
        broker.topology,
        seed=seed,
        loss=0.05,
        crashes=crashes,
        crash_length=25.0,
        horizon=float(EVENTS),
        corrupt=corrupt,
    )
    simulation = CrashRecoverySimulation(
        broker, plan, home=home, checkpoint_every=32
    )
    return simulation, points, publishers


class TestCleanRuns:
    def test_exactly_once_across_restarts(self):
        simulation, points, publishers = make_run()
        report = simulation.run(points, publishers)
        assert report.exactly_once
        assert report.durability.recoveries == len(simulation.windows) == 2
        assert report.durability.wal_appends > 0
        assert report.durability.checkpoints >= 1
        assert report.durability.truncated_bytes == 0
        assert report.durability.corruptions == []
        # Every wiped in-flight delivery was re-handed after recovery.
        assert (
            report.durability.redelivered
            == report.durability.wiped_inflight
        )

    def test_deferred_events_are_published_after_recovery(self):
        simulation, points, publishers = make_run()
        report = simulation.run(points, publishers)
        # Arrivals inside a 25-unit window with unit inter-arrival must
        # have been deferred, and deferral never loses an event.
        assert report.durability.deferred_events > 0
        assert report.events == EVENTS

    def test_report_rows_include_durability(self):
        simulation, points, publishers = make_run()
        report = simulation.run(points, publishers)
        labels = {label for label, _ in report.summary_rows()}
        assert {"recoveries", "wal appends", "checkpoints"} <= labels


class TestDeterminism:
    def test_identical_runs_are_byte_identical(self):
        """Same seed + crash plan ⇒ same WAL bytes, digests, report."""
        reports, dumps = [], []
        for _ in range(2):
            simulation, points, publishers = make_run()
            reports.append(simulation.run(points, publishers))
            dumps.append(simulation.wal.dump())
        first, second = reports
        assert dumps[0] == dumps[1]
        assert (
            first.durability.recovery_digests
            == second.durability.recovery_digests
        )
        assert first.delivered == second.delivered
        assert first.missing == second.missing
        assert first.finished_at == second.finished_at

    def test_corrupted_runs_recover_deterministically(self):
        reports = []
        for _ in range(2):
            simulation, points, publishers = make_run(corrupt="torn-tail")
            reports.append(simulation.run(points, publishers))
        first, second = reports
        assert first.durability.truncated_bytes > 0
        assert (
            first.durability.recovery_digests
            == second.durability.recovery_digests
        )
        assert first.durability.truncated_bytes == second.durability.truncated_bytes

    def test_recovered_matching_equals_uncrashed_broker(self):
        """Post-recovery MatchResults match a broker that never crashed."""
        simulation, points, publishers = make_run()
        simulation.run(points, publishers)
        pristine, density = build_chaos_testbed(
            seed=2003, subscriptions=SUBSCRIPTIONS, num_groups=7, dynamic=True
        )
        probes, _ = PublicationGenerator(
            density, pristine.topology.all_stub_nodes(), seed=555
        ).generate(50)
        for point in probes:
            recovered = simulation.broker.engine.match_point(point)
            expected = pristine.engine.match_point(point)
            assert recovered.subscription_ids == expected.subscription_ids
            assert recovered.subscribers == expected.subscribers


class TestCorruption:
    @pytest.mark.parametrize("kind", ["torn-tail", "bit-flip"])
    def test_corruption_truncates_and_never_duplicates(self, kind):
        simulation, points, publishers = make_run(corrupt=kind)
        report = simulation.run(points, publishers)
        assert len(report.durability.corruptions) == 2
        assert report.durability.truncated_bytes > 0
        assert report.durability.recoveries == 2
        assert report.duplicate_deliveries == 0
        # The repaired log is clean at the end of the run.
        assert simulation.wal.scan().clean


class TestHarnessValidation:
    def test_requires_dynamic_broker(self):
        broker, _ = build_chaos_testbed(
            seed=3, subscriptions=40, num_groups=5
        )
        plan, home = build_crash_recovery_plan(broker.topology, seed=3)
        with pytest.raises(TypeError, match="churn-capable"):
            CrashRecoverySimulation(broker, plan, home=home)

    def test_requires_a_home(self):
        broker, _ = build_chaos_testbed(
            seed=3, subscriptions=40, num_groups=5, dynamic=True
        )
        with pytest.raises(ValueError, match="no crash windows"):
            CrashRecoverySimulation(broker, FaultPlan(seed=1))

    def test_plan_builder_validation(self):
        broker, _ = build_chaos_testbed(
            seed=3, subscriptions=40, num_groups=5, dynamic=True
        )
        with pytest.raises(ValueError, match="crashes must be >= 1"):
            build_crash_recovery_plan(broker.topology, crashes=0)
        with pytest.raises(ValueError, match="no up-time"):
            build_crash_recovery_plan(
                broker.topology, crashes=3, crash_length=200.0, horizon=100.0
            )

    def test_plan_builder_homes_all_crashes_on_one_transit_node(self):
        broker, _ = build_chaos_testbed(
            seed=3, subscriptions=40, num_groups=5, dynamic=True
        )
        plan, home = build_crash_recovery_plan(
            broker.topology, seed=7, crashes=3, crash_length=10.0,
            corrupt="bit-flip",
        )
        assert home in set(broker.topology.all_transit_nodes())
        assert all(c.node == home for c in plan.crashes)
        assert [c.crash_index for c in plan.wal_corruptions] == [0, 1, 2]
        assert plan.enabled

    def test_wal_corruption_validation(self):
        with pytest.raises(ValueError, match="kind"):
            WalCorruption(kind="melted")
        with pytest.raises(ValueError, match="crash_index"):
            WalCorruption(crash_index=-1)
        with pytest.raises(ValueError, match="tail_bytes"):
            WalCorruption(kind="torn-tail", tail_bytes=0)
        with pytest.raises(ValueError, match="flip_offset"):
            WalCorruption(kind="bit-flip", flip_offset=0)
        with pytest.raises(ValueError, match="flip_bit"):
            WalCorruption(kind="bit-flip", flip_bit=9)

    def test_wal_corruption_apply(self):
        from repro.durability import RecordKind

        wal = MemoryWAL()
        for i in range(3):
            wal.append(RecordKind.DELIVER, {"seq": i, "target": i})
        assert WalCorruption(kind="torn-tail", tail_bytes=4).apply(wal)
        assert not wal.scan().clean

    def test_external_stores_are_honoured(self):
        wal = MemoryWAL(clock=lambda: 0.0)
        store = MemorySnapshotStore()
        broker, density = build_chaos_testbed(
            seed=11, subscriptions=40, num_groups=5, dynamic=True
        )
        broker.policy = ThresholdPolicy(0.15)
        plan, home = build_crash_recovery_plan(
            broker.topology, seed=11, crashes=1, crash_length=10.0,
            horizon=60.0,
        )
        sim = CrashRecoverySimulation(
            broker, plan, home=home, wal=wal, snapshots=store
        )
        assert sim.wal is wal
        assert sim.snapshots is store
        # The bootstrap checkpoint already landed in both.
        assert store.ids() == [0]
        assert wal.appends >= 1
