"""Smoke tests for the example scripts.

Each example must be importable (no module-level work) and expose a
``main`` callable; the cheapest one is executed end to end.  The
heavier examples are exercised indirectly — every API they touch is
covered by the integration tests — so here we only guard against the
repository's front door rotting.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).parent.parent / "examples").glob("*.py")
)


def load_example(path):
    spec = importlib.util.spec_from_file_location(path.stem, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[path.stem] = module
    spec.loader.exec_module(module)
    return module


class TestExamples:
    def test_examples_exist(self):
        names = {path.stem for path in EXAMPLES}
        assert {
            "quickstart",
            "stock_ticker",
            "threshold_tuning",
            "matching_showdown",
            "group_efficiency",
            "market_day_replay",
        } <= names

    @pytest.mark.parametrize(
        "path", EXAMPLES, ids=lambda p: p.stem
    )
    def test_importable_with_main(self, path):
        module = load_example(path)
        assert callable(getattr(module, "main", None)), path.stem

    def test_stock_ticker_runs(self, capsys):
        module = load_example(
            Path(__file__).parent.parent / "examples" / "stock_ticker.py"
        )
        module.main()
        out = capsys.readouterr().out
        assert "multicast to group" in out
        assert "not sent" in out
