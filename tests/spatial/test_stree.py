"""Unit tests for the S-tree."""

import math

import numpy as np
import pytest

from repro.geometry import Interval, Rectangle
from repro.spatial import LinearScanMatcher, STree, STreeParams


def brute_force(lows, highs, point):
    mask = np.all((lows < point) & (point <= highs), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


class TestParams:
    def test_defaults_match_paper(self):
        params = STreeParams()
        assert params.branch_factor == 40
        assert params.skew_factor == pytest.approx(0.3)
        assert params.effective_sweep_increment == 40

    def test_branch_factor_validation(self):
        with pytest.raises(ValueError):
            STreeParams(branch_factor=1)

    def test_skew_factor_range(self):
        STreeParams(skew_factor=0.5)  # boundary is legal
        with pytest.raises(ValueError):
            STreeParams(skew_factor=0.0)
        with pytest.raises(ValueError):
            STreeParams(skew_factor=0.6)

    def test_sweep_increment_validation(self):
        with pytest.raises(ValueError):
            STreeParams(sweep_increment=0)

    def test_split_dimension_validation(self):
        with pytest.raises(ValueError):
            STreeParams(split_dimension="widest")


class TestConstruction:
    def test_single_rectangle(self):
        tree = STree.build(np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]]))
        assert tree.match([0.5, 0.5]) == [0]
        assert tree.match([2.0, 2.0]) == []

    def test_small_set_becomes_single_leaf(self):
        lows = np.zeros((5, 2))
        highs = np.ones((5, 2)) * np.arange(1, 6)[:, None]
        tree = STree.build(lows, highs)
        shape = tree.shape()
        assert shape.leaf_nodes == 1
        assert shape.height == 0
        assert shape.entries == 5

    def test_every_entry_reachable(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        assert tree.shape().entries == len(lows)

    def test_branch_factor_respected(self, workload):
        lows, highs, _ = workload
        params = STreeParams(branch_factor=8)
        tree = STree.build(lows, highs, params=params)

        def check(node):
            if node.is_leaf:
                assert len(node.entry_ids) <= 8
            else:
                assert 2 <= len(node.children) <= 8
                for child in node.children:
                    check(child)

        check(tree._root)

    def test_custom_ids_reported(self):
        lows = np.zeros((3, 1))
        highs = np.ones((3, 1))
        tree = STree.build(lows, highs, ids=[10, 20, 30])
        assert tree.match([0.5]) == [10, 20, 30]

    def test_identical_rectangles(self):
        # Degenerate data: every rectangle the same.
        lows = np.zeros((200, 2))
        highs = np.ones((200, 2))
        tree = STree.build(lows, highs, params=STreeParams(branch_factor=10))
        assert tree.match([0.5, 0.5]) == list(range(200))
        assert tree.match([1.5, 0.5]) == []

    def test_build_input_validation(self):
        with pytest.raises(ValueError):
            STree.build(np.zeros((0, 2)), np.zeros((0, 2)))
        with pytest.raises(ValueError):
            STree.build(np.zeros((3, 2)), np.zeros((3, 3)))
        with pytest.raises(ValueError):
            STree.build(
                np.full((2, 2), np.nan), np.ones((2, 2))
            )
        with pytest.raises(ValueError):
            STree.build(np.zeros((2, 2)), np.ones((2, 2)), ids=[1])

    def test_from_rectangles(self):
        rects = [
            Rectangle.from_intervals([Interval(0, 1), Interval(0, 1)]),
            Rectangle.from_intervals([Interval(2, 3), Interval(2, 3)]),
        ]
        tree = STree.from_rectangles(rects)
        assert tree.match([0.5, 0.5]) == [0]
        assert tree.match([2.5, 2.5]) == [1]


class TestCorrectness:
    def test_matches_brute_force(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        for point in points:
            assert tree.match(point) == brute_force(lows, highs, point)

    def test_matches_brute_force_bounded(self, bounded_workload):
        lows, highs, points = bounded_workload
        tree = STree.build(lows, highs)
        for point in points:
            assert tree.match(point) == brute_force(lows, highs, point)

    def test_longest_dimension_variant_correct(self, workload):
        lows, highs, points = workload
        tree = STree.build(
            lows, highs, params=STreeParams(split_dimension="longest")
        )
        for point in points[:50]:
            assert tree.match(point) == brute_force(lows, highs, point)

    def test_half_open_semantics_at_boundaries(self):
        lows = np.array([[0.0, 0.0]])
        highs = np.array([[1.0, 1.0]])
        tree = STree.build(lows, highs)
        assert tree.match([0.0, 0.5]) == []
        assert tree.match([1.0, 1.0]) == [0]

    def test_unbounded_rectangle_matches_far_points(self):
        lows = np.array([[0.0, -np.inf]])
        highs = np.array([[np.inf, 0.0]])
        tree = STree.build(lows, highs)
        assert tree.match([1e9, -1e9]) == [0]
        assert tree.match([-1.0, -1.0]) == []

    def test_count(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        for point in points[:20]:
            assert tree.count(point) == len(
                brute_force(lows, highs, point)
            )

    def test_wrong_point_arity(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        with pytest.raises(ValueError):
            tree.match([1.0])


class TestRegionQuery:
    def test_region_matches_bruteforce(self, workload, rng):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        for _ in range(30):
            q_lo = rng.uniform(-2, 18, size=4)
            q_hi = q_lo + rng.uniform(0.5, 6, size=4)
            expected = sorted(
                np.flatnonzero(
                    np.all(
                        np.maximum(lows, q_lo) < np.minimum(highs, q_hi),
                        axis=1,
                    )
                ).tolist()
            )
            assert tree.region_query(q_lo, q_hi) == expected

    def test_region_covering_everything(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        result = tree.region_query([-1e9] * 4, [1e9] * 4)
        assert result == list(range(len(lows)))

    def test_region_arity_validation(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        with pytest.raises(ValueError):
            tree.region_query([0.0], [1.0])


class TestShapeAndStats:
    def test_shape_consistency(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs, params=STreeParams(branch_factor=10))
        shape = tree.shape()
        assert shape.entries == len(lows)
        assert shape.min_leaf_depth <= shape.max_leaf_depth == shape.height
        assert shape.skewness >= 0
        assert shape.mean_branch_factor > 1.0

    def test_higher_skew_factor_balances_tree(self, rng):
        from .conftest import make_workload

        lows, highs, _ = make_workload(rng, k=3000, unbounded=False)
        loose = STree.build(
            lows, highs, params=STreeParams(branch_factor=8, skew_factor=0.1)
        ).shape()
        tight = STree.build(
            lows, highs, params=STreeParams(branch_factor=8, skew_factor=0.5)
        ).shape()
        assert tight.skewness <= loose.skewness + 1

    def test_stats_accumulate(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        assert tree.stats.queries == 0
        tree.match(points[0])
        tree.match(points[1])
        assert tree.stats.queries == 2
        assert tree.stats.entries_tested > 0
        tree.stats.reset()
        assert tree.stats.queries == 0

    def test_pruning_beats_linear_scan(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        linear = LinearScanMatcher.build(lows, highs)
        for point in points:
            tree.match(point)
            linear.match(point)
        assert (
            tree.stats.entries_per_query < linear.stats.entries_per_query
        )

    def test_len_and_ndim(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        assert len(tree) == len(lows)
        assert tree.ndim == 4
