"""Fixtures shared by the spatial index tests."""

from __future__ import annotations

import numpy as np
import pytest


def make_workload(rng, k=500, ndim=4, unbounded=True):
    """Random rectangles, some with ray/wildcard sides, plus probe points."""
    centers = rng.uniform(0, 20, size=(k, ndim))
    half = rng.pareto(1.5, size=(k, ndim)) + 0.05
    lows = centers - half
    highs = centers + half
    if unbounded:
        highs[rng.random(k) < 0.15, ndim - 1] = np.inf
        lows[rng.random(k) < 0.15, ndim - 2] = -np.inf
        full = rng.random(k) < 0.05
        lows[full, 0] = -np.inf
        highs[full, 0] = np.inf
    points = rng.uniform(-3, 23, size=(200, ndim))
    return lows, highs, points


@pytest.fixture()
def workload(rng):
    return make_workload(rng)


@pytest.fixture()
def bounded_workload(rng):
    return make_workload(rng, unbounded=False)
