"""Unit tests for the interval tree and the counting matcher."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import CountingMatcher, LinearScanMatcher, StaticIntervalTree

from .conftest import make_workload


def brute_stab(lows, highs, x):
    return sorted(
        i
        for i, (lo, hi) in enumerate(zip(lows, highs))
        if lo < x <= hi
    )


class TestStaticIntervalTree:
    def test_basic_stabbing(self):
        tree = StaticIntervalTree([0.0, 2.0, -1.0], [5.0, 3.0, 1.0])
        assert sorted(tree.stab(2.5)) == [0, 1]
        assert sorted(tree.stab(0.5)) == [0, 2]
        assert tree.stab(10.0) == []

    def test_half_open_semantics(self):
        tree = StaticIntervalTree([0.0], [1.0])
        assert tree.stab(0.0) == []
        assert tree.stab(1.0) == [0]

    def test_empty_intervals_dropped(self):
        tree = StaticIntervalTree([0.0, 5.0], [1.0, 4.0])
        assert tree.size == 1
        assert tree.stab(4.5) == []

    def test_unbounded_rays(self):
        tree = StaticIntervalTree(
            [-np.inf, 3.0, -np.inf], [0.0, np.inf, np.inf]
        )
        assert sorted(tree.stab(-100.0)) == [0, 2]
        assert sorted(tree.stab(100.0)) == [1, 2]

    def test_all_identical_left_rays_terminate(self):
        # The degenerate case that would loop without the recentering.
        k = 50
        tree = StaticIntervalTree([-np.inf] * k, [0.0] * k)
        assert sorted(tree.stab(-1.0)) == list(range(k))
        assert tree.stab(0.5) == []

    def test_all_identical_right_rays_terminate(self):
        k = 50
        tree = StaticIntervalTree([0.0] * k, [np.inf] * k)
        assert sorted(tree.stab(1.0)) == list(range(k))

    def test_one_ulp_intervals(self):
        lo = 1.0
        hi = np.nextafter(1.0, 2.0)
        tree = StaticIntervalTree([lo] * 5, [hi] * 5)
        assert sorted(tree.stab(hi)) == [0, 1, 2, 3, 4]
        assert tree.stab(lo) == []

    def test_custom_ids(self):
        tree = StaticIntervalTree([0.0], [1.0], ids=[42])
        assert tree.stab(0.5) == [42]

    def test_count_matches_stab(self, rng):
        lows = rng.uniform(-10, 10, 200)
        highs = lows + rng.pareto(1.5, 200)
        tree = StaticIntervalTree(lows, highs)
        for x in rng.uniform(-12, 12, 50):
            assert tree.count_stab(float(x)) == len(tree.stab(float(x)))

    def test_validation(self):
        with pytest.raises(ValueError):
            StaticIntervalTree([0.0], [1.0, 2.0])
        with pytest.raises(ValueError):
            StaticIntervalTree([0.0], [1.0], ids=[1, 2])

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(
            st.tuples(
                st.floats(-100, 100, allow_nan=False),
                st.floats(-100, 100, allow_nan=False),
            ),
            min_size=1,
            max_size=40,
        ),
        st.floats(-120, 120, allow_nan=False),
    )
    def test_matches_bruteforce(self, pairs, x):
        lows = [min(a, b) for a, b in pairs]
        highs = [max(a, b) for a, b in pairs]
        tree = StaticIntervalTree(lows, highs)
        assert sorted(tree.stab(x)) == brute_stab(lows, highs, x)


class TestCountingMatcher:
    def test_matches_brute_force(self, workload):
        lows, highs, points = workload
        counting = CountingMatcher.build(lows, highs)
        linear = LinearScanMatcher.build(lows, highs)
        for point in points:
            assert counting.match(point) == linear.match(point)

    def test_matches_brute_force_bounded(self, bounded_workload):
        lows, highs, points = bounded_workload
        counting = CountingMatcher.build(lows, highs)
        linear = LinearScanMatcher.build(lows, highs)
        for point in points[:80]:
            assert counting.match(point) == linear.match(point)

    def test_all_wildcard_subscription(self):
        lows = np.array([[-np.inf, -np.inf], [0.0, 0.0]])
        highs = np.array([[np.inf, np.inf], [1.0, 1.0]])
        matcher = CountingMatcher.build(lows, highs)
        assert matcher.match([0.5, 0.5]) == [0, 1]
        assert matcher.match([100.0, 100.0]) == [0]

    def test_partial_satisfaction_is_no_match(self):
        # One predicate satisfied, the other not: counter != required.
        lows = np.array([[0.0, 10.0]])
        highs = np.array([[1.0, 11.0]])
        matcher = CountingMatcher.build(lows, highs)
        assert matcher.match([0.5, 5.0]) == []
        assert matcher.match([0.5, 10.5]) == [0]

    def test_mixed_wildcard_dimensions(self):
        # Wildcard price, bounded volume: only the volume test counts.
        lows = np.array([[-np.inf, 0.0]])
        highs = np.array([[np.inf, 10.0]])
        matcher = CountingMatcher.build(lows, highs)
        assert matcher.match([123.0, 5.0]) == [0]
        assert matcher.match([123.0, 50.0]) == []

    def test_custom_ids(self):
        lows = np.zeros((2, 1))
        highs = np.ones((2, 1))
        matcher = CountingMatcher.build(lows, highs, ids=[5, 9])
        assert matcher.match([0.5]) == [5, 9]

    def test_registered_as_backend(self):
        from repro.core import MATCHER_BACKENDS

        assert MATCHER_BACKENDS["counting"] is CountingMatcher
