"""Unit tests for batch matching."""

import numpy as np
import pytest

from repro.spatial import LinearScanMatcher, STree

from .conftest import make_workload


class TestMatchMany:
    def test_stree_batch_equals_loop(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        batch = tree.match_many(points[:50])
        for point, result in zip(points[:50], batch):
            assert result == tree.match(point)

    def test_linear_vectorized_batch_equals_loop(self, workload):
        lows, highs, points = workload
        matcher = LinearScanMatcher.build(lows, highs)
        batch = matcher.match_many(points[:50])
        for point, result in zip(points[:50], batch):
            assert result == matcher.match(point)

    def test_linear_and_stree_batches_agree(self, workload):
        lows, highs, points = workload
        tree = STree.build(lows, highs)
        linear = LinearScanMatcher.build(lows, highs)
        assert tree.match_many(points) == linear.match_many(points)

    def test_batch_shape_validation(self, workload):
        lows, highs, _ = workload
        tree = STree.build(lows, highs)
        with pytest.raises(ValueError):
            tree.match_many(np.zeros((5, 2)))
        linear = LinearScanMatcher.build(lows, highs)
        with pytest.raises(ValueError):
            linear.match_many(np.zeros(4))

    def test_batch_updates_stats(self, workload):
        lows, highs, points = workload
        linear = LinearScanMatcher.build(lows, highs)
        linear.match_many(points[:10])
        assert linear.stats.queries == 10
        assert linear.stats.entries_tested == 10 * len(lows)
