"""Unit tests for the Hilbert-packed R-tree."""

import numpy as np
import pytest

from repro.spatial import HilbertRTree

from .conftest import make_workload


def brute_force(lows, highs, point):
    mask = np.all((lows < point) & (point <= highs), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


class TestConstruction:
    def test_single_rectangle(self):
        tree = HilbertRTree.build(
            np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert tree.match([0.5, 0.5]) == [0]
        assert tree.height == 0

    def test_height_is_logarithmic(self, rng):
        lows, highs, _ = make_workload(rng, k=1000)
        tree = HilbertRTree.build(lows, highs, branch_factor=10)
        # 1000 entries, fanout 10: leaves=100, level1=10, root -> height 2.
        assert tree.height == 2

    def test_perfectly_balanced(self, rng):
        lows, highs, _ = make_workload(rng, k=777)

        tree = HilbertRTree.build(lows, highs, branch_factor=8)
        depths = set()

        def walk(node, depth):
            if node.is_leaf:
                depths.add(depth)
            else:
                for child in node.children:
                    walk(child, depth + 1)

        walk(tree._root, 0)
        assert len(depths) == 1  # all leaves at one depth

    def test_branch_factor_validation(self, rng):
        lows, highs, _ = make_workload(rng, k=10)
        with pytest.raises(ValueError):
            HilbertRTree.build(lows, highs, branch_factor=1)
        with pytest.raises(ValueError):
            HilbertRTree.build(lows, highs, curve_bits=0)


class TestCorrectness:
    def test_matches_brute_force(self, workload):
        lows, highs, points = workload
        tree = HilbertRTree.build(lows, highs)
        for point in points:
            assert tree.match(point) == brute_force(lows, highs, point)

    def test_matches_brute_force_small_fanout(self, workload):
        lows, highs, points = workload
        tree = HilbertRTree.build(lows, highs, branch_factor=4)
        for point in points[:80]:
            assert tree.match(point) == brute_force(lows, highs, point)

    def test_half_open_semantics(self):
        tree = HilbertRTree.build(
            np.array([[0.0, 0.0]]), np.array([[1.0, 1.0]])
        )
        assert tree.match([0.0, 0.5]) == []
        assert tree.match([1.0, 1.0]) == [0]

    def test_custom_ids(self):
        lows = np.zeros((3, 1))
        highs = np.ones((3, 1))
        tree = HilbertRTree.build(lows, highs, ids=[7, 8, 9])
        assert tree.match([1.0]) == [7, 8, 9]


class TestStats:
    def test_locality_prunes(self, rng):
        lows, highs, points = make_workload(rng, k=2000, unbounded=False)
        tree = HilbertRTree.build(lows, highs)
        for point in points:
            tree.match(point)
        assert tree.stats.entries_per_query < len(lows) * 0.6
