"""Property-based cross-checks: every index answers like the brute force.

This is the load-bearing invariant of the matching layer — all four
backends are interchangeable implementations of the same point query.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.spatial import (
    GridIndexMatcher,
    HilbertRTree,
    LinearScanMatcher,
    STree,
    STreeParams,
)

coordinate = st.floats(
    min_value=-50.0, max_value=50.0, allow_nan=False, allow_infinity=False
)
maybe_unbounded_low = st.one_of(coordinate, st.just(-np.inf))
maybe_unbounded_high = st.one_of(coordinate, st.just(np.inf))


@st.composite
def rectangle_set(draw, ndim=2):
    k = draw(st.integers(min_value=1, max_value=30))
    lows = []
    highs = []
    for _ in range(k):
        row_lo = []
        row_hi = []
        for _ in range(ndim):
            a = draw(maybe_unbounded_low)
            b = draw(maybe_unbounded_high)
            lo, hi = (a, b) if a <= b else (b, a)
            row_lo.append(lo)
            row_hi.append(hi)
        lows.append(row_lo)
        highs.append(row_hi)
    return np.array(lows), np.array(highs)


@st.composite
def query_points(draw, ndim=2):
    return np.array([draw(coordinate) for _ in range(ndim)])


def reference(lows, highs, point):
    mask = np.all((lows < point) & (point <= highs), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


@settings(max_examples=60, deadline=None)
@given(rectangle_set(), query_points())
def test_stree_equals_reference(rects, point):
    lows, highs = rects
    tree = STree.build(lows, highs, params=STreeParams(branch_factor=4))
    assert tree.match(point) == reference(lows, highs, point)


@settings(max_examples=60, deadline=None)
@given(rectangle_set(), query_points())
def test_stree_longest_equals_reference(rects, point):
    lows, highs = rects
    tree = STree.build(
        lows,
        highs,
        params=STreeParams(branch_factor=4, split_dimension="longest"),
    )
    assert tree.match(point) == reference(lows, highs, point)


@settings(max_examples=60, deadline=None)
@given(rectangle_set(), query_points())
def test_rtree_equals_reference(rects, point):
    lows, highs = rects
    tree = HilbertRTree.build(lows, highs, branch_factor=4)
    assert tree.match(point) == reference(lows, highs, point)


@settings(max_examples=60, deadline=None)
@given(rectangle_set(), query_points())
def test_grid_equals_reference(rects, point):
    lows, highs = rects
    matcher = GridIndexMatcher.build(lows, highs, cells_per_dim=4)
    assert matcher.match(point) == reference(lows, highs, point)


@settings(max_examples=60, deadline=None)
@given(rectangle_set(), query_points())
def test_linear_equals_reference(rects, point):
    lows, highs = rects
    matcher = LinearScanMatcher.build(lows, highs)
    assert matcher.match(point) == reference(lows, highs, point)


@settings(max_examples=30, deadline=None)
@given(rectangle_set(ndim=3), query_points(ndim=3))
def test_all_backends_agree_3d(rects, point):
    lows, highs = rects
    results = {
        "stree": STree.build(
            lows, highs, params=STreeParams(branch_factor=4)
        ).match(point),
        "rtree": HilbertRTree.build(lows, highs, branch_factor=4).match(
            point
        ),
        "grid": GridIndexMatcher.build(lows, highs).match(point),
        "linear": LinearScanMatcher.build(lows, highs).match(point),
    }
    assert len({tuple(v) for v in results.values()}) == 1, results
