"""Unit tests for the Hilbert curve encoding."""

import numpy as np
import pytest

from repro.spatial.hilbert import (
    hilbert_index,
    hilbert_indices,
    quantize_to_lattice,
)


class TestHilbertIndex:
    def test_2d_order1_visits_all_cells_once(self):
        indices = {
            hilbert_index((x, y), bits=1) for x in range(2) for y in range(2)
        }
        assert indices == {0, 1, 2, 3}

    def test_2d_order1_canonical_order(self):
        # The order-1 2-D Hilbert curve: (0,0) -> (0,1) -> (1,1) -> (1,0).
        path = sorted(
            ((x, y) for x in range(2) for y in range(2)),
            key=lambda p: hilbert_index(p, bits=1),
        )
        assert path[0] == (0, 0)
        assert path[-1] == (1, 0)
        # Every hop moves by exactly one unit.
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_bijection_2d_order3(self):
        seen = {
            hilbert_index((x, y), bits=3)
            for x in range(8)
            for y in range(8)
        }
        assert seen == set(range(64))

    def test_bijection_3d_order2(self):
        seen = {
            hilbert_index((x, y, z), bits=2)
            for x in range(4)
            for y in range(4)
            for z in range(4)
        }
        assert seen == set(range(64))

    def test_continuity_2d(self):
        # Consecutive curve positions are unit-distance neighbours.
        bits = 4
        by_index = {}
        for x in range(16):
            for y in range(16):
                by_index[hilbert_index((x, y), bits)] = (x, y)
        for h in range(255):
            a = by_index[h]
            b = by_index[h + 1]
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1

    def test_range_validation(self):
        with pytest.raises(ValueError):
            hilbert_index((4,), bits=2)  # 4 >= 2**2
        with pytest.raises(ValueError):
            hilbert_index((-1, 0), bits=2)
        with pytest.raises(ValueError):
            hilbert_index((0, 0), bits=0)
        with pytest.raises(ValueError):
            hilbert_index((), bits=2)

    def test_one_dimension_is_identity(self):
        for v in range(16):
            assert hilbert_index((v,), bits=4) == v


class TestBulkHelpers:
    def test_hilbert_indices_matches_scalar(self, rng):
        points = rng.integers(0, 8, size=(20, 3))
        bulk = hilbert_indices(points, bits=3)
        for row, h in zip(points, bulk):
            assert hilbert_index(tuple(row), bits=3) == h

    def test_hilbert_indices_requires_2d(self):
        with pytest.raises(ValueError):
            hilbert_indices(np.array([1, 2, 3]), bits=2)

    def test_quantize_maps_to_full_range(self):
        values = np.array([[0.0, 10.0], [5.0, 20.0], [10.0, 30.0]])
        lattice = quantize_to_lattice(values, bits=4)
        assert lattice.min() == 0
        assert lattice.max() == 15
        assert lattice[1, 0] == 8  # midpoint -> middle of lattice

    def test_quantize_constant_dimension(self):
        values = np.array([[1.0, 5.0], [2.0, 5.0]])
        lattice = quantize_to_lattice(values, bits=3)
        assert np.all(lattice[:, 1] == 0)

    def test_quantize_handles_nonfinite(self):
        values = np.array([[0.0], [np.inf], [10.0]])
        lattice = quantize_to_lattice(values, bits=3)
        assert lattice[1, 0] == 7  # clipped to the frame's top

    def test_quantize_requires_2d(self):
        with pytest.raises(ValueError):
            quantize_to_lattice(np.array([1.0, 2.0]), bits=3)

    def test_quantize_preserves_order(self, rng):
        values = np.sort(rng.uniform(0, 100, size=(50, 1)), axis=0)
        lattice = quantize_to_lattice(values, bits=8)
        assert np.all(np.diff(lattice[:, 0]) >= 0)
