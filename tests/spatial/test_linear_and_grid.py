"""Unit tests for the linear-scan and grid-bucket matchers."""

import numpy as np
import pytest

from repro.spatial import GridIndexMatcher, LinearScanMatcher

from .conftest import make_workload


def brute_force(lows, highs, point):
    mask = np.all((lows < point) & (point <= highs), axis=1)
    return sorted(np.flatnonzero(mask).tolist())


class TestLinearScan:
    def test_matches_brute_force(self, workload):
        lows, highs, points = workload
        matcher = LinearScanMatcher.build(lows, highs)
        for point in points:
            assert matcher.match(point) == brute_force(lows, highs, point)

    def test_entries_tested_is_everything(self, workload):
        lows, highs, points = workload
        matcher = LinearScanMatcher.build(lows, highs)
        matcher.match(points[0])
        assert matcher.stats.entries_tested == len(lows)

    def test_empty_rectangle_never_matches(self):
        lows = np.array([[1.0, 0.0]])
        highs = np.array([[0.0, 1.0]])
        matcher = LinearScanMatcher.build(lows, highs)
        assert matcher.match([0.5, 0.5]) == []


class TestGridIndex:
    def test_matches_brute_force(self, workload):
        lows, highs, points = workload
        matcher = GridIndexMatcher.build(lows, highs)
        for point in points:
            assert matcher.match(point) == brute_force(lows, highs, point)

    def test_matches_brute_force_fine_grid(self, workload):
        lows, highs, points = workload
        matcher = GridIndexMatcher.build(lows, highs, cells_per_dim=5)
        for point in points[:80]:
            assert matcher.match(point) == brute_force(lows, highs, point)

    def test_point_outside_frame_falls_back(self, rng):
        lows, highs, _ = make_workload(rng, k=100)
        matcher = GridIndexMatcher.build(lows, highs)
        far = np.array([1e9, 1e9, 1e9, 1e9])
        assert matcher.match(far) == brute_force(lows, highs, far)

    def test_unbounded_matches_outside_frame(self):
        lows = np.array([[0.0, 0.0], [0.0, 0.0]])
        highs = np.array([[np.inf, 1.0], [1.0, 1.0]])
        matcher = GridIndexMatcher.build(lows, highs)
        # Way beyond the frame in dim 0: only the ray matches.
        assert matcher.match([1e6, 0.5]) == [0]

    def test_cells_per_dim_validation(self, rng):
        lows, highs, _ = make_workload(rng, k=10)
        with pytest.raises(ValueError):
            GridIndexMatcher.build(lows, highs, cells_per_dim=0)

    def test_occupied_cells_positive(self, workload):
        lows, highs, _ = workload
        matcher = GridIndexMatcher.build(lows, highs)
        assert matcher.occupied_cells > 0

    def test_candidate_filtering_prunes(self, rng):
        lows, highs, points = make_workload(rng, k=2000, unbounded=False)
        matcher = GridIndexMatcher.build(lows, highs, cells_per_dim=8)
        for point in points:
            matcher.match(point)
        assert matcher.stats.entries_per_query < len(lows)

    def test_empty_rectangle_skipped(self):
        lows = np.array([[1.0, 0.0], [0.0, 0.0]])
        highs = np.array([[0.0, 1.0], [1.0, 1.0]])
        matcher = GridIndexMatcher.build(lows, highs)
        assert matcher.match([0.5, 0.5]) == [1]
