"""Unit tests for the distribution fitters."""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.analysis import fit_normal, fit_pareto_tail, fit_zipf
from repro.workload import ParetoSampler, zipf_weights


class TestFitNormal:
    def test_recovers_parameters(self, rng):
        data = rng.normal(5.0, 2.0, size=20_000)
        fit = fit_normal(data)
        assert fit.mean == pytest.approx(5.0, abs=0.05)
        assert fit.std == pytest.approx(2.0, abs=0.05)
        assert fit.looks_normal

    def test_rejects_uniform(self, rng):
        data = rng.uniform(0.0, 1.0, size=20_000)
        assert not fit_normal(data).looks_normal

    def test_rejects_bimodal(self, rng):
        data = np.concatenate(
            [rng.normal(0, 1, 10_000), rng.normal(20, 1, 10_000)]
        )
        assert not fit_normal(data).looks_normal

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_normal(np.zeros(4))

    def test_degenerate_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_normal(np.full(100, 3.0))


class TestFitZipf:
    def test_recovers_exponent(self, rng):
        weights = zipf_weights(500, theta=1.0)
        counts = rng.multinomial(500_000, weights)
        fit = fit_zipf(np.sort(counts)[::-1])
        assert fit.slope == pytest.approx(-1.0, abs=0.15)
        assert fit.looks_power_law

    def test_steeper_theta_steeper_slope(self, rng):
        shallow = rng.multinomial(300_000, zipf_weights(200, 0.7))
        steep = rng.multinomial(300_000, zipf_weights(200, 1.5))
        fit_shallow = fit_zipf(np.sort(shallow)[::-1])
        fit_steep = fit_zipf(np.sort(steep)[::-1])
        assert fit_steep.slope < fit_shallow.slope

    def test_uniform_counts_flat(self):
        fit = fit_zipf(np.full(100, 500.0))
        assert fit.slope == pytest.approx(0.0, abs=0.01)

    def test_too_few_counts_rejected(self):
        with pytest.raises(ValueError):
            fit_zipf(np.array([5.0, 3.0]))


class TestFitParetoTail:
    def test_recovers_alpha(self, rng):
        draws = ParetoSampler(2.0, 1.5, rng=rng).sample(100_000)
        fit = fit_pareto_tail(draws)
        assert fit.slope == pytest.approx(-1.5, abs=0.15)
        assert fit.looks_power_law

    def test_exponential_is_not_power_law(self, rng):
        draws = rng.exponential(1.0, size=50_000) + 1.0
        fit = fit_pareto_tail(draws)
        # Exponential tails fall much faster than any power law over
        # the sampled range; the log-log fit ends up steep.
        assert fit.slope < -3.0

    def test_tail_fraction_validation(self, rng):
        draws = ParetoSampler(1.0, 1.0, rng=rng).sample(1000)
        with pytest.raises(ValueError):
            fit_pareto_tail(draws, tail_fraction=0.0)
        with pytest.raises(ValueError):
            fit_pareto_tail(draws, tail_fraction=1.5)

    def test_small_sample_rejected(self):
        with pytest.raises(ValueError):
            fit_pareto_tail(np.ones(8))


class TestValidationMessages:
    """Validation is ValueError-based with uniform, diagnosable text."""

    CASES = [
        (lambda: fit_normal(np.zeros(4)),
         "fit_normal: need at least 8 observations (got 4)"),
        (lambda: fit_normal(np.full(100, 3.0)),
         "fit_normal: sample standard deviation must be positive (got 0.0)"),
        (lambda: fit_zipf(np.array([5.0, 3.0])),
         "fit_zipf: need at least 8 positive ranked counts (got 2)"),
        (lambda: fit_pareto_tail(np.ones(100), tail_fraction=1.5),
         "fit_pareto_tail: tail_fraction must lie in (0, 1] (got 1.5)"),
        (lambda: fit_pareto_tail(np.ones(8)),
         "fit_pareto_tail: need at least 16 positive observations (got 8)"),
    ]

    def test_messages_name_function_and_got_value(self):
        for call, expected in self.CASES:
            with pytest.raises(ValueError) as excinfo:
                call()
            assert str(excinfo.value) == expected

    def test_validation_survives_python_O(self):
        # ``python -O`` strips assert statements; the fitters must not
        # rely on them for input validation.  Run every bad input in an
        # optimized subprocess and require the same ValueErrors.
        program = (
            "import numpy as np\n"
            "from repro.analysis import fit_normal, fit_pareto_tail, "
            "fit_zipf\n"
            "cases = [\n"
            "    (lambda: fit_normal(np.zeros(4)), 'fit_normal:'),\n"
            "    (lambda: fit_normal(np.full(100, 3.0)), 'fit_normal:'),\n"
            "    (lambda: fit_zipf(np.array([5.0, 3.0])), 'fit_zipf:'),\n"
            "    (lambda: fit_pareto_tail(np.ones(100), tail_fraction=1.5),"
            " 'fit_pareto_tail:'),\n"
            "    (lambda: fit_pareto_tail(np.ones(8)),"
            " 'fit_pareto_tail:'),\n"
            "]\n"
            "assert False  # proves -O is active: this must not raise\n"
            "for call, prefix in cases:\n"
            "    try:\n"
            "        call()\n"
            "    except ValueError as error:\n"
            "        if not str(error).startswith(prefix):\n"
            "            raise SystemExit(f'wrong message: {error}')\n"
            "    else:\n"
            "        raise SystemExit('ValueError not raised under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", program],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"
