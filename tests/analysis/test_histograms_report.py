"""Unit tests for histogram series and text reporting."""

import numpy as np
import pytest

from repro.analysis import (
    density_histogram,
    format_series,
    format_table,
    rank_frequency,
    sparkline,
    survival_curve,
)


class TestDensityHistogram:
    def test_integrates_to_one(self, rng):
        series = density_histogram(rng.normal(size=10_000), bins=40)
        assert series.total_mass() == pytest.approx(1.0, abs=1e-9)

    def test_mode_near_distribution_mode(self, rng):
        series = density_histogram(rng.normal(7.0, 1.0, 50_000), bins=60)
        assert series.mode_center == pytest.approx(7.0, abs=0.3)

    def test_explicit_range(self, rng):
        series = density_histogram(
            rng.uniform(0, 1, 1000), bins=10, value_range=(0.0, 2.0)
        )
        assert series.centers[0] == pytest.approx(0.1)
        assert series.centers[-1] == pytest.approx(1.9)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            density_histogram(np.array([]))


class TestRankFrequency:
    def test_sorted_descending(self, rng):
        counts = rng.integers(0, 100, size=50)
        ranks, sorted_counts = rank_frequency(counts)
        assert np.all(np.diff(sorted_counts) <= 0)
        assert ranks[0] == 1

    def test_zeros_dropped(self):
        ranks, counts = rank_frequency(np.array([5, 0, 3, 0]))
        assert len(counts) == 2

    def test_all_zero_rejected(self):
        with pytest.raises(ValueError):
            rank_frequency(np.zeros(5))


class TestSurvivalCurve:
    def test_monotone_decreasing(self, rng):
        xs, survival = survival_curve(rng.pareto(1.0, 10_000) + 1.0)
        assert np.all(np.diff(survival) <= 1e-12)

    def test_starts_near_one(self, rng):
        xs, survival = survival_curve(rng.uniform(1, 2, 10_000))
        assert survival[0] > 0.95

    def test_positive_data_required(self):
        with pytest.raises(ValueError):
            survival_curve(np.array([-1.0, -2.0]))


class TestFormatTable:
    def test_aligned_output(self):
        text = format_table(
            ("name", "value"), [("alpha", 1.5), ("b", 22)]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows
        assert len({len(line) for line in lines}) == 1  # aligned

    def test_row_arity_checked(self):
        with pytest.raises(ValueError):
            format_table(("a", "b"), [(1,)])

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table((), [])

    def test_float_formatting(self):
        text = format_table(("x",), [(1.23456,)])
        assert "1.23" in text


class TestSparkline:
    def test_length_matches(self):
        assert len(sparkline([1, 2, 3, 4])) == 4

    def test_monotone_series(self):
        line = sparkline([0, 1, 2, 3])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_constant_series(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestFormatSeries:
    def test_contains_pairs(self):
        text = format_series("curve", [0.0, 0.5], [1.0, 2.0])
        assert "curve" in text
        assert "0.00:1.00" in text

    def test_arity_checked(self):
        with pytest.raises(ValueError):
            format_series("x", [1.0], [1.0, 2.0])
