"""Unit tests for the transit-stub topology generator."""

import networkx as nx
import pytest

from repro.network import Topology, TransitStubGenerator, TransitStubParams


class TestParams:
    def test_defaults_give_paper_scale(self):
        params = TransitStubParams()
        expected = (
            params.transit_blocks
            * params.transit_nodes_per_block
            * (1 + params.stubs_per_transit_node * params.nodes_per_stub)
        )
        assert expected == 615  # ~600 nodes, as in the paper

    def test_validation(self):
        with pytest.raises(ValueError):
            TransitStubParams(transit_blocks=0)
        with pytest.raises(ValueError):
            TransitStubParams(transit_nodes_per_block=0)
        with pytest.raises(ValueError):
            TransitStubParams(stubs_per_transit_node=0)
        with pytest.raises(ValueError):
            TransitStubParams(nodes_per_stub=0)
        with pytest.raises(ValueError):
            TransitStubParams(extra_edge_prob=1.5)


class TestGeneration:
    def test_deterministic_with_seed(self):
        a = TransitStubGenerator(seed=5).generate()
        b = TransitStubGenerator(seed=5).generate()
        assert sorted(a.graph.edges()) == sorted(b.graph.edges())
        assert a.stub_members == b.stub_members

    def test_different_seeds_differ(self):
        a = TransitStubGenerator(seed=5).generate()
        b = TransitStubGenerator(seed=6).generate()
        assert sorted(a.graph.edges()) != sorted(b.graph.edges())

    def test_connected(self, paper_topology):
        assert nx.is_connected(paper_topology.graph)

    def test_paper_scale_node_count(self, paper_topology):
        # 3 blocks x ~5 transit x (1 + 2 stubs x ~20) — roughly 600.
        assert 400 <= paper_topology.num_nodes <= 800

    def test_block_structure(self, paper_topology):
        assert paper_topology.num_blocks == 3
        for block_nodes in paper_topology.transit_nodes:
            assert len(block_nodes) >= 1

    def test_every_transit_node_has_stubs(self, paper_topology):
        topo = paper_topology
        expected_stubs = 2 * len(topo.all_transit_nodes())
        assert topo.num_stubs == expected_stubs

    def test_stub_membership_partitions_stub_nodes(self, paper_topology):
        all_members = [n for ms in paper_topology.stub_members for n in ms]
        assert len(all_members) == len(set(all_members))
        assert set(all_members) == set(paper_topology.all_stub_nodes())

    def test_node_attributes(self, paper_topology):
        for node, data in paper_topology.graph.nodes(data=True):
            assert data["kind"] in ("transit", "stub")
            assert 0 <= data["block"] < 3
            if data["kind"] == "stub":
                assert 0 <= data["stub"] < paper_topology.num_stubs

    def test_edge_costs_positive(self, paper_topology):
        for _, _, data in paper_topology.graph.edges(data=True):
            assert data["cost"] > 0

    def test_cost_tiers(self, paper_topology):
        # Intra-stub edges must be cheaper than inter-block edges.
        graph = paper_topology.graph
        stub_costs = []
        inter_costs = []
        for u, v, data in graph.edges(data=True):
            du, dv = graph.nodes[u], graph.nodes[v]
            if (
                du["kind"] == dv["kind"] == "stub"
                and du.get("stub") == dv.get("stub")
            ):
                stub_costs.append(data["cost"])
            elif (
                du["kind"] == dv["kind"] == "transit"
                and du["block"] != dv["block"]
            ):
                inter_costs.append(data["cost"])
        assert max(stub_costs) < min(inter_costs)

    def test_blocks_pairwise_connected_directly(self, paper_topology):
        graph = paper_topology.graph
        seen_pairs = set()
        for u, v in graph.edges():
            du, dv = graph.nodes[u], graph.nodes[v]
            if du["kind"] == dv["kind"] == "transit":
                if du["block"] != dv["block"]:
                    seen_pairs.add(
                        tuple(sorted((du["block"], dv["block"])))
                    )
        assert seen_pairs == {(0, 1), (0, 2), (1, 2)}

    def test_single_block_topology(self):
        params = TransitStubParams(
            transit_blocks=1,
            transit_nodes_per_block=1,
            stubs_per_transit_node=1,
            nodes_per_stub=3,
            size_spread=0,
        )
        topo = TransitStubGenerator(params, seed=1).generate()
        assert topo.num_blocks == 1
        assert topo.num_stubs == 1
        assert nx.is_connected(topo.graph)


class TestTopologyAccessors:
    def test_stubs_in_block(self, paper_topology):
        total = sum(
            len(paper_topology.stubs_in_block(b)) for b in range(3)
        )
        assert total == paper_topology.num_stubs

    def test_edge_cost_accessor(self, paper_topology):
        u, v = next(iter(paper_topology.graph.edges()))
        assert paper_topology.edge_cost(u, v) > 0

    def test_degree_stats(self, paper_topology):
        stats = paper_topology.degree_stats()
        assert stats["min"] >= 1
        assert stats["min"] <= stats["mean"] <= stats["max"]

    def test_validate_passes(self, paper_topology):
        paper_topology.validate()

    def test_validate_detects_bad_cost(self, small_topology):
        broken = Topology(
            graph=small_topology.graph.copy(),
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        u, v = next(iter(broken.graph.edges()))
        broken.graph.edges[u, v]["cost"] = -1.0
        with pytest.raises(ValueError, match="non-positive cost"):
            broken.validate()

    def test_validate_errors_are_uniform_valueerrors(self, small_topology):
        # All three structural violations surface as ValueError with
        # the shared "invalid topology" prefix, so callers can catch
        # malformed-topology errors uniformly.
        zero_cost = Topology(
            graph=small_topology.graph.copy(),
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        u, v = next(iter(zero_cost.graph.edges()))
        zero_cost.graph.edges[u, v]["cost"] = 0.0
        with pytest.raises(ValueError, match="invalid topology"):
            zero_cost.validate()

        no_kind = Topology(
            graph=small_topology.graph.copy(),
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        node = next(iter(no_kind.graph.nodes()))
        del no_kind.graph.nodes[node]["kind"]
        with pytest.raises(ValueError, match="invalid topology.*node kind"):
            no_kind.validate()

        disconnected = Topology(
            graph=small_topology.graph.copy(),
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        disconnected.graph.add_node(424242, kind="stub", block=0, stub=0)
        with pytest.raises(ValueError, match="invalid topology.*connected"):
            disconnected.validate()
