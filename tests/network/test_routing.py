"""Unit tests for shortest-path routing."""

import networkx as nx
import numpy as np
import pytest

from repro.network import RoutingTable


@pytest.fixture(scope="module")
def line_graph():
    """0 -1- 1 -2- 2 -3- 3 (edge costs equal their right endpoint)."""
    graph = nx.Graph()
    for i in range(3):
        graph.add_edge(i, i + 1, cost=float(i + 1))
    return graph


@pytest.fixture(scope="module")
def diamond():
    """Two routes 0->3: via 1 (cost 2) and via 2 (cost 10)."""
    graph = nx.Graph()
    graph.add_edge(0, 1, cost=1.0)
    graph.add_edge(1, 3, cost=1.0)
    graph.add_edge(0, 2, cost=5.0)
    graph.add_edge(2, 3, cost=5.0)
    return graph


class TestDistances:
    def test_line_distances(self, line_graph):
        table = RoutingTable(line_graph)
        assert table.distance(0, 3) == 6.0
        assert table.distance(3, 0) == 6.0
        assert table.distance(1, 1) == 0.0

    def test_shortest_route_chosen(self, diamond):
        table = RoutingTable(diamond)
        assert table.distance(0, 3) == 2.0

    def test_matches_networkx(self, small_topology):
        table = RoutingTable(small_topology.graph)
        expected = dict(
            nx.all_pairs_dijkstra_path_length(
                small_topology.graph, weight="cost"
            )
        )
        nodes = list(small_topology.graph.nodes())[:10]
        for u in nodes:
            for v in nodes:
                assert table.distance(u, v) == pytest.approx(expected[u][v])

    def test_negative_cost_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, cost=-1.0)
        with pytest.raises(ValueError):
            RoutingTable(graph)


class TestPaths:
    def test_path_endpoints(self, diamond):
        table = RoutingTable(diamond)
        path = table.path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert path == [0, 1, 3]

    def test_path_to_self(self, diamond):
        assert RoutingTable(diamond).path(2, 2) == [2]

    def test_path_cost_equals_distance(self, small_topology):
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        for u, v in [(nodes[0], nodes[-1]), (nodes[3], nodes[7])]:
            path = table.path(u, v)
            total = sum(
                table.edge_cost(a, b) for a, b in zip(path, path[1:])
            )
            assert total == pytest.approx(table.distance(u, v))

    def test_edge_cost_rejects_non_edges(self, diamond):
        table = RoutingTable(diamond)
        with pytest.raises(ValueError):
            table.edge_cost(1, 2)


class TestAggregateCosts:
    def test_unicast_cost_sums_distances(self, diamond):
        table = RoutingTable(diamond)
        assert table.unicast_cost(0, [1, 2, 3]) == pytest.approx(
            1.0 + 5.0 + 2.0
        )

    def test_unicast_cost_empty(self, diamond):
        assert RoutingTable(diamond).unicast_cost(0, []) == 0.0

    def test_unicast_counts_shared_links_repeatedly(self, line_graph):
        # 0->2 and 0->3 both cross edges (0,1) and (1,2).
        table = RoutingTable(line_graph)
        assert table.unicast_cost(0, [2, 3]) == pytest.approx(3.0 + 6.0)

    def test_tree_cost_pays_shared_links_once(self, line_graph):
        table = RoutingTable(line_graph)
        assert table.shortest_path_tree_cost(0, [2, 3]) == pytest.approx(6.0)

    def test_tree_cost_single_target_equals_distance(self, small_topology):
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        for target in nodes[:8]:
            assert table.shortest_path_tree_cost(
                nodes[-1], [target]
            ) == pytest.approx(table.distance(nodes[-1], target))

    def test_tree_cost_at_most_unicast(self, small_topology, rng):
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        for _ in range(20):
            source = int(rng.choice(nodes))
            targets = rng.choice(nodes, size=8, replace=False).tolist()
            tree = table.shortest_path_tree_cost(source, targets)
            unicast = table.unicast_cost(source, targets)
            assert tree <= unicast + 1e-9

    def test_tree_cost_at_least_max_distance(self, small_topology, rng):
        # The tree must at least reach the farthest target.
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        source = nodes[0]
        targets = nodes[5:15]
        tree = table.shortest_path_tree_cost(source, targets)
        farthest = max(table.distance(source, t) for t in targets)
        assert tree >= farthest - 1e-9

    def test_tree_edges_form_tree(self, small_topology):
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        edges = table.tree_edges(nodes[0], nodes[1:20])
        graph = nx.Graph(edges)
        assert nx.is_tree(graph) or len(edges) == 0
        for target in nodes[1:20]:
            assert graph.has_node(target)

    def test_tree_cost_matches_tree_edges(self, small_topology):
        table = RoutingTable(small_topology.graph)
        nodes = list(small_topology.graph.nodes())
        targets = nodes[1:25]
        cost = table.shortest_path_tree_cost(nodes[0], targets)
        edges = table.tree_edges(nodes[0], targets)
        assert cost == pytest.approx(
            sum(table.edge_cost(u, v) for u, v in edges)
        )

    def test_target_equal_to_source_costs_nothing(self, diamond):
        table = RoutingTable(diamond)
        assert table.shortest_path_tree_cost(0, [0]) == 0.0

    def test_eccentricity(self, line_graph):
        assert RoutingTable(line_graph).eccentricity(0) == 6.0


class TestRelabelling:
    def test_non_contiguous_labels(self):
        graph = nx.Graph()
        graph.add_edge(10, 20, cost=1.0)
        graph.add_edge(20, 30, cost=2.0)
        table = RoutingTable(graph)
        # Relabelled to 0..2 in sorted order.
        assert table.distance(0, 2) == 3.0
