"""Unit tests for the DOT topology export."""

import pytest

from repro.network.visualize import topology_to_dot, write_dot


class TestDotExport:
    def test_document_structure(self, small_topology):
        dot = topology_to_dot(small_topology)
        assert dot.startswith("graph topology {")
        assert dot.rstrip().endswith("}")

    def test_all_nodes_present_by_default(self, small_topology):
        dot = topology_to_dot(small_topology)
        for node in small_topology.graph.nodes():
            assert f"n{node} [" in dot

    def test_transit_nodes_are_squares(self, small_topology):
        dot = topology_to_dot(small_topology)
        for node in small_topology.all_transit_nodes():
            line = next(
                l for l in dot.splitlines() if l.strip().startswith(f"n{node} [")
            )
            assert "square" in line

    def test_backbone_only_view(self, small_topology):
        dot = topology_to_dot(small_topology, include_stub_nodes=False)
        # One collapsed node per stub, linked to its gateway.
        for stub in range(small_topology.num_stubs):
            assert f"s{stub} [" in dot
            gateway = small_topology.stub_gateway_transit(stub)
            assert f"n{gateway} -- s{stub};" in dot
        # No individual stub-node circles.
        for node in small_topology.all_stub_nodes():
            assert f"n{node} [" not in dot

    def test_truncated_stub_view(self, small_topology):
        dot = topology_to_dot(small_topology, max_stub_nodes_per_stub=2)
        drawn = sum(
            1
            for node in small_topology.all_stub_nodes()
            if f"n{node} [" in dot
        )
        assert drawn == 2 * small_topology.num_stubs

    def test_edges_between_drawn_nodes_only(self, small_topology):
        dot = topology_to_dot(small_topology, include_stub_nodes=False)
        # Every backbone edge appears; stub-internal edges do not.
        for u, v, _ in small_topology.graph.edges(data=True):
            u_kind = small_topology.graph.nodes[u]["kind"]
            v_kind = small_topology.graph.nodes[v]["kind"]
            present = f"n{u} -- n{v} [" in dot or f"n{v} -- n{u} [" in dot
            assert present == (u_kind == v_kind == "transit")

    def test_write_dot(self, small_topology, tmp_path):
        path = write_dot(small_topology, tmp_path / "topo.dot")
        assert path.exists()
        assert "graph topology" in path.read_text()
