"""Unit tests for sparse-mode (shared-tree) multicast."""

import pytest

from repro.network import DeliveryCostModel


@pytest.fixture(scope="module")
def dense(small_topology):
    return DeliveryCostModel(small_topology, multicast_mode="dense")


@pytest.fixture(scope="module")
def sparse(small_topology):
    return DeliveryCostModel(small_topology, multicast_mode="sparse")


class TestSparseMode:
    def test_mode_validation(self, small_topology):
        with pytest.raises(ValueError):
            DeliveryCostModel(small_topology, multicast_mode="pim")

    def test_rendezvous_is_a_member(self, sparse, small_topology):
        members = small_topology.all_stub_nodes()[:12]
        assert sparse.rendezvous_point(members) in members

    def test_rendezvous_minimizes_member_distance(
        self, sparse, small_topology
    ):
        members = small_topology.all_stub_nodes()[:12]
        rendezvous = sparse.rendezvous_point(members)
        best = min(
            sparse.routing.unicast_cost(m, members) for m in members
        )
        assert sparse.routing.unicast_cost(
            rendezvous, members
        ) == pytest.approx(best)

    def test_sparse_usually_costs_more_than_dense(
        self, dense, sparse, small_topology, rng
    ):
        """The shared tree adds a publisher->RP detour, so it loses to
        the publisher-rooted SPT *on average* (not per draw — neither
        tree is Steiner-minimal, so individual draws can go either
        way)."""
        nodes = small_topology.all_stub_nodes()
        sparse_total = 0.0
        dense_total = 0.0
        for _ in range(25):
            source = int(rng.choice(nodes))
            members = rng.choice(nodes, size=10, replace=False).tolist()
            sparse_cost = sparse.multicast_cost(source, members)
            dense_cost = dense.multicast_cost(source, members)
            sparse_total += sparse_cost
            dense_total += dense_cost
            # Sanity envelope: the detour can't blow costs up wildly.
            assert sparse_cost <= 3.0 * dense_cost
        assert sparse_total >= dense_total

    def test_sparse_cost_decomposition(self, sparse, small_topology):
        nodes = small_topology.all_stub_nodes()
        members = nodes[:10]
        source = nodes[-1]
        rendezvous = sparse.rendezvous_point(members)
        expected = sparse.routing.distance(
            source, rendezvous
        ) + sparse.routing.shortest_path_tree_cost(rendezvous, members)
        assert sparse.multicast_cost(source, members) == pytest.approx(
            expected
        )

    def test_publishing_from_rendezvous_is_free_detour(
        self, sparse, small_topology
    ):
        members = small_topology.all_stub_nodes()[:10]
        rendezvous = sparse.rendezvous_point(members)
        tree_only = sparse.routing.shortest_path_tree_cost(
            rendezvous, members
        )
        assert sparse.multicast_cost(
            rendezvous, members
        ) == pytest.approx(tree_only)

    def test_shared_tree_source_independent(self, sparse, small_topology):
        """Sparse state is per-group: the tree part must not depend on
        the publisher."""
        nodes = small_topology.all_stub_nodes()
        members = nodes[:8]
        costs = {
            source: sparse.multicast_cost(source, members)
            - sparse.routing.distance(
                source, sparse.rendezvous_point(members)
            )
            for source in nodes[20:25]
        }
        values = list(costs.values())
        assert all(v == pytest.approx(values[0]) for v in values)

    def test_clear_cache_clears_shared_trees(self, small_topology):
        model = DeliveryCostModel(small_topology, multicast_mode="sparse")
        members = small_topology.all_stub_nodes()[:5]
        model.multicast_cost(0, members)
        assert model._shared_tree_cache
        model.clear_cache()
        assert not model._shared_tree_cache

    def test_empty_group_rejected(self, sparse):
        with pytest.raises(ValueError):
            sparse.rendezvous_point([])
