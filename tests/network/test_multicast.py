"""Unit tests for the delivery cost model and tallies."""

import pytest

from repro.network import CostTally, DeliveryCostModel


class TestCostTally:
    def test_empty_tally(self):
        tally = CostTally()
        assert tally.improvement_percent == 100.0  # degenerate: 0 == 0
        assert tally.average_message_cost == 0.0

    def test_add_accumulates(self):
        tally = CostTally()
        tally.add(5.0, 10.0, 4.0, recipients=3, used_multicast=True)
        tally.add(7.0, 8.0, 6.0, recipients=2, used_multicast=False)
        assert tally.messages == 2
        assert tally.deliveries == 5
        assert tally.scheme == 12.0
        assert tally.multicasts_sent == 1
        assert tally.unicasts_sent == 1

    def test_improvement_formula(self):
        tally = CostTally()
        # unicast 10, ideal 4, scheme 7 => (10-7)/(10-4) = 50%
        tally.add(7.0, 10.0, 4.0, recipients=1, used_multicast=True)
        assert tally.improvement_percent == pytest.approx(50.0)

    def test_improvement_at_bounds(self):
        unicast_like = CostTally()
        unicast_like.add(10.0, 10.0, 4.0, 1, False)
        assert unicast_like.improvement_percent == pytest.approx(0.0)
        ideal_like = CostTally()
        ideal_like.add(4.0, 10.0, 4.0, 1, True)
        assert ideal_like.improvement_percent == pytest.approx(100.0)

    def test_improvement_can_be_negative(self):
        tally = CostTally()
        tally.add(16.0, 10.0, 4.0, 1, True)  # multicast waste cost more
        assert tally.improvement_percent == pytest.approx(-100.0)

    def test_skip_counts_message_only(self):
        tally = CostTally()
        tally.skip()
        assert tally.messages == 1
        assert tally.deliveries == 0

    def test_merge(self):
        a = CostTally()
        a.add(5.0, 10.0, 4.0, 2, True)
        b = CostTally()
        b.add(3.0, 6.0, 2.0, 1, False)
        b.skip()
        merged = a.merge(b)
        assert merged.messages == 3
        assert merged.scheme == 8.0
        assert merged.unicast == 16.0
        assert merged.multicasts_sent == 1
        assert merged.unicasts_sent == 1

    def test_average_message_cost(self):
        tally = CostTally()
        tally.add(6.0, 10.0, 4.0, 1, True)
        tally.skip()
        assert tally.average_message_cost == pytest.approx(3.0)


class TestDeliveryCostModel:
    def test_unicast_vs_multicast_ordering(self, small_topology, rng):
        model = DeliveryCostModel(small_topology)
        nodes = small_topology.all_stub_nodes()
        for _ in range(10):
            source = int(rng.choice(nodes))
            members = rng.choice(nodes, size=10, replace=False).tolist()
            multicast = model.multicast_cost(source, members)
            unicast = model.unicast_cost(source, members)
            ideal = model.ideal_cost(source, members)
            assert multicast <= unicast + 1e-9
            # The "ideal" for exactly these recipients equals the
            # group tree when the group is exactly the recipients.
            assert ideal == pytest.approx(multicast)

    def test_ideal_subset_cheaper(self, small_topology):
        model = DeliveryCostModel(small_topology)
        nodes = small_topology.all_stub_nodes()
        group = nodes[:20]
        interested = nodes[:5]
        assert model.ideal_cost(nodes[-1], interested) <= (
            model.multicast_cost(nodes[-1], group) + 1e-9
        )

    def test_group_tree_memoized(self, small_topology):
        model = DeliveryCostModel(small_topology)
        nodes = small_topology.all_stub_nodes()
        members = nodes[:15]
        first = model.multicast_cost(nodes[-1], members)
        assert (nodes[-1], frozenset(members)) in model._group_tree_cache
        second = model.multicast_cost(nodes[-1], list(reversed(members)))
        assert first == second
        model.clear_cache()
        assert not model._group_tree_cache

    def test_empty_recipient_list(self, small_topology):
        model = DeliveryCostModel(small_topology)
        assert model.unicast_cost(0, []) == 0.0
        assert model.ideal_cost(0, []) == 0.0
