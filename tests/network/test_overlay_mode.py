"""Unit tests for application-level (overlay) multicast."""

import networkx as nx
import pytest

from repro.network import DeliveryCostModel
from repro.network.topology import Topology


def line_topology():
    """0 -- 1 -- 2 -- 3, unit costs."""
    graph = nx.Graph()
    for i in range(3):
        graph.add_edge(i, i + 1, cost=1.0)
    for node in graph.nodes():
        graph.nodes[node].update(kind="stub", block=0, stub=0)
    return Topology(
        graph=graph,
        transit_nodes=[[]],
        stub_members=[[0, 1, 2, 3]],
        stub_block=[0],
    )


@pytest.fixture(scope="module")
def overlay(small_topology):
    return DeliveryCostModel(small_topology, multicast_mode="overlay")


class TestOverlayMode:
    def test_line_overlay_cost(self):
        model = DeliveryCostModel(line_topology(), multicast_mode="overlay")
        # Members {1,2,3}: overlay MST = (1-2) + (2-3) = 2; entry from
        # publisher 0 = dist(0,1) = 1.
        assert model.multicast_cost(0, [1, 2, 3]) == pytest.approx(3.0)

    def test_publisher_inside_group_skips_entry(self):
        model = DeliveryCostModel(line_topology(), multicast_mode="overlay")
        assert model.multicast_cost(1, [1, 2, 3]) == pytest.approx(2.0)

    def test_single_member_group(self, overlay, small_topology):
        nodes = small_topology.all_stub_nodes()
        cost = overlay.multicast_cost(nodes[0], [nodes[5]])
        assert cost == pytest.approx(
            overlay.routing.distance(nodes[0], nodes[5])
        )

    def test_overlay_at_least_router_multicast_for_spread_groups(
        self, small_topology, rng
    ):
        """Across scattered groups the overlay pays shared physical
        links repeatedly, so on aggregate it costs at least as much as
        dense-mode router multicast."""
        dense = DeliveryCostModel(small_topology, multicast_mode="dense")
        overlay = DeliveryCostModel(
            small_topology, multicast_mode="overlay"
        )
        nodes = small_topology.all_stub_nodes()
        dense_total = 0.0
        overlay_total = 0.0
        for _ in range(20):
            source = int(rng.choice(nodes))
            members = rng.choice(nodes, size=12, replace=False).tolist()
            dense_total += dense.multicast_cost(source, members)
            overlay_total += overlay.multicast_cost(source, members)
        assert overlay_total >= dense_total * 0.95

    def test_memoization(self, small_topology):
        model = DeliveryCostModel(small_topology, multicast_mode="overlay")
        members = small_topology.all_stub_nodes()[:8]
        first = model.multicast_cost(0, members)
        assert model._overlay_tree_cache
        assert model.multicast_cost(0, list(reversed(members))) == first
        model.clear_cache()
        assert not model._overlay_tree_cache

    def test_empty_group_rejected(self, overlay):
        with pytest.raises(ValueError):
            overlay._overlay_tree_cost(frozenset())

    def test_unknown_mode_rejected(self, small_topology):
        with pytest.raises(ValueError):
            DeliveryCostModel(small_topology, multicast_mode="flooding")
