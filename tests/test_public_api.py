"""The public API surface stays importable and documented."""

import importlib
import inspect

import pytest

import repro

SUBPACKAGES = [
    "repro.geometry",
    "repro.spatial",
    "repro.clustering",
    "repro.network",
    "repro.workload",
    "repro.core",
    "repro.analysis",
    "repro.experiments",
    "repro.simulation",
    "repro.relay",
    "repro.faults",
    "repro.replication",
    "repro.io",
]


class TestImports:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_subpackage_imports(self, name):
        module = importlib.import_module(name)
        assert module.__doc__, f"{name} needs a module docstring"

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize("name", SUBPACKAGES + ["repro"])
    def test_all_entries_resolve(self, name):
        module = importlib.import_module(name)
        for symbol in module.__all__:
            assert hasattr(module, symbol), f"{name}.{symbol} missing"


class TestDocumentation:
    @pytest.mark.parametrize("name", SUBPACKAGES)
    def test_public_classes_and_functions_documented(self, name):
        module = importlib.import_module(name)
        undocumented = []
        for symbol in module.__all__:
            obj = getattr(module, symbol)
            if inspect.isclass(obj) or inspect.isfunction(obj):
                if not inspect.getdoc(obj):
                    undocumented.append(symbol)
        assert not undocumented, f"undocumented in {name}: {undocumented}"

    def test_public_methods_documented(self):
        from repro.core import PubSubBroker
        from repro.spatial import STree

        for cls in (PubSubBroker, STree):
            for name, member in inspect.getmembers(
                cls, predicate=inspect.isfunction
            ):
                if name.startswith("_"):
                    continue
                assert inspect.getdoc(member), f"{cls.__name__}.{name}"
