"""Tests for CSV export of experiment results."""

import csv

import pytest

from repro.experiments import (
    SMALL_CONFIG,
    build_testbed,
    run_figure4,
    run_figure6,
    run_matching_comparison,
)
from repro.experiments.export import (
    figure4_to_csv,
    figure6_to_csv,
    matching_to_csv,
    write_csv,
)


class TestWriteCsv:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        count = write_csv(path, ("a", "b"), [(1, 2), (3, 4)])
        assert count == 2
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows == [["a", "b"], ["1", "2"], ["3", "4"]]

    def test_arity_checked(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "bad.csv", ("a", "b"), [(1,)])


class TestExporters:
    @pytest.fixture(scope="class")
    def testbed(self):
        return build_testbed(SMALL_CONFIG)

    def test_figure4_files(self, tmp_path):
        result = run_figure4(SMALL_CONFIG)
        files = figure4_to_csv(result, tmp_path / "fig4")
        assert len(files) == 3
        for path in files:
            assert path.exists()
            with path.open() as handle:
                rows = list(csv.reader(handle))
            assert len(rows) > 10  # header + data

    def test_figure6_long_format(self, tmp_path, testbed):
        results = run_figure6(SMALL_CONFIG, testbed)
        path = tmp_path / "figure6.csv"
        count = figure6_to_csv(results, path)
        expected = sum(len(s.points) for s in results)
        assert count == expected
        with path.open() as handle:
            rows = list(csv.reader(handle))
        assert rows[0][0] == "algorithm"
        assert len(rows) == expected + 1

    def test_matching_table(self, tmp_path, testbed):
        rows = run_matching_comparison(
            SMALL_CONFIG,
            testbed,
            subscription_counts=(50,),
            num_queries=10,
        )
        path = tmp_path / "matching.csv"
        count = matching_to_csv(rows, path)
        assert count == len(rows)
        with path.open() as handle:
            parsed = list(csv.DictReader(handle))
        assert {row["backend"] for row in parsed} == {
            "stree",
            "rtree",
            "grid",
            "counting",
            "linear",
        }
