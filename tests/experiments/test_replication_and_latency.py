"""Tests for the replication and latency experiment drivers."""

import pytest

from repro.experiments import (
    SMALL_CONFIG,
    build_testbed,
    run_latency_experiment,
    run_replication,
)
from repro.experiments.replication import Replicate, ReplicationSummary


class TestReplication:
    def test_small_replication(self):
        summary = run_replication(
            SMALL_CONFIG, seeds=(3, 5), num_groups=4, modes=4
        )
        assert len(summary.replicates) == 2
        for replicate in summary.replicates:
            assert replicate.dynamic_gain >= -1e-9
            assert 0.0 <= replicate.best_threshold <= 1.0

    def test_summary_statistics(self):
        summary = ReplicationSummary(
            replicates=(
                Replicate(1, 10.0, 12.0, 0.05),
                Replicate(2, 20.0, 24.0, 0.10),
            )
        )
        assert summary.mean_best() == pytest.approx(18.0)
        assert summary.min_best() == pytest.approx(12.0)
        assert summary.max_threshold() == pytest.approx(0.10)
        assert summary.all_shapes_hold()

    def test_shape_violation_detected(self):
        summary = ReplicationSummary(
            replicates=(Replicate(1, 10.0, -5.0, 0.05),)
        )
        assert not summary.all_shapes_hold()


class TestLatencyExperiment:
    @pytest.fixture(scope="class")
    def rows(self):
        testbed = build_testbed(SMALL_CONFIG)
        return run_latency_experiment(
            SMALL_CONFIG,
            testbed,
            modes=4,
            num_groups=4,
            thresholds=(0.0, 1.0),
            num_events=60,
        )

    def test_row_structure(self, rows):
        assert len(rows) == 4  # 2 thresholds x burst/paced
        labels = {row.label for row in rows}
        assert "t=0.00/burst" in labels
        assert "t=1.00/paced" in labels

    def test_deliveries_policy_invariant(self, rows):
        deliveries = {row.report.deliveries for row in rows}
        assert len(deliveries) == 1

    def test_pacing_never_increases_queueing(self, rows):
        by_label = {row.label: row.report for row in rows}
        for threshold in ("0.00", "1.00"):
            assert (
                by_label[f"t={threshold}/paced"].queueing_delay
                <= by_label[f"t={threshold}/burst"].queueing_delay
            )
