"""Tests for the experiment drivers (small-scale runs)."""

import numpy as np
import pytest

from repro.experiments import (
    SMALL_CONFIG,
    ExperimentConfig,
    build_testbed,
    run_clustering_comparison,
    run_figure3,
    run_figure4,
    run_figure5,
    run_figure6,
    run_matching_comparison,
    run_table1,
    summarize_topology,
    sweep_thresholds,
)


@pytest.fixture(scope="module")
def testbed():
    return build_testbed(SMALL_CONFIG)


class TestConfig:
    def test_default_matches_paper(self):
        config = ExperimentConfig()
        assert config.num_subscriptions == 1000
        assert config.max_cells == 200
        assert config.group_counts == (11, 61)
        assert config.mode_counts == (1, 4, 9)

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(num_subscriptions=0)
        with pytest.raises(ValueError):
            ExperimentConfig(thresholds=(0.5, 1.5))
        with pytest.raises(ValueError):
            ExperimentConfig(group_counts=(0,))


class TestTestbed:
    def test_builds_consistently(self, testbed):
        assert len(testbed.placed) == SMALL_CONFIG.num_subscriptions
        assert len(testbed.table) == SMALL_CONFIG.num_subscriptions

    def test_publications_deterministic_per_mode(self, testbed):
        a = testbed.publications(4)
        b = testbed.publications(4)
        assert np.array_equal(a[0], b[0])
        c = testbed.publications(1)
        assert not np.array_equal(a[0], c[0])

    def test_make_broker(self, testbed):
        from repro.clustering import ForgyKMeansClustering

        broker = testbed.make_broker(
            ForgyKMeansClustering(), num_groups=3, modes=4
        )
        assert broker.partition.num_groups <= 3


class TestFigure3:
    def test_summary_consistent(self, testbed):
        summary = summarize_topology(testbed.topology)
        assert summary.num_nodes == testbed.topology.num_nodes
        assert (
            summary.num_transit_nodes + summary.num_stub_nodes
            == summary.num_nodes
        )
        assert summary.is_connected
        assert summary.diameter_cost > 0
        assert len(summary.rows()) == 11

    def test_run(self):
        summary = run_figure3(SMALL_CONFIG)
        assert summary.num_transit_blocks == 3


class TestTable1:
    def test_within_tolerance_at_scale(self):
        config = ExperimentConfig(num_subscriptions=2000, num_events=10)
        rows = run_table1(config)
        assert {r.field for r in rows} == {"price", "volume"}
        for row in rows:
            assert row.within_tolerance(0.05)

    def test_measured_frequencies_sum_to_one(self, testbed):
        for row in run_table1(SMALL_CONFIG, testbed):
            total = (
                row.measured.wildcard
                + row.measured.lower_ray
                + row.measured.upper_ray
                + row.measured.bounded
            )
            assert total == pytest.approx(1.0)


class TestFigure4:
    def test_fits_recover_laws(self):
        result = run_figure4(SMALL_CONFIG)
        assert result.price_fit.looks_normal
        assert result.price_fit.mean == pytest.approx(1.0, abs=0.01)
        assert result.popularity_fit.looks_power_law
        assert result.popularity_fit.slope == pytest.approx(-1.0, abs=0.2)
        assert result.amount_fit.looks_power_law
        assert result.amount_fit.slope == pytest.approx(-1.2, abs=0.2)

    def test_series_shapes(self):
        result = run_figure4(SMALL_CONFIG)
        assert len(result.price_histogram.centers) == 60
        assert len(result.popularity_ranks) == len(
            result.popularity_counts
        )
        assert np.all(np.diff(result.amount_survival) <= 1e-12)


class TestFigure5:
    def test_top3_panels(self):
        panels = run_figure5(SMALL_CONFIG)
        assert len(panels) == 3
        assert (
            panels[0].num_trades
            >= panels[1].num_trades
            >= panels[2].num_trades
        )
        for panel in panels:
            assert panel.price_fit.mean == pytest.approx(1.0, abs=0.01)
            assert panel.amount_fit.slope < -0.8

    def test_top_k_validation(self):
        with pytest.raises(ValueError):
            run_figure5(SMALL_CONFIG, top_k=0)


class TestFigure6:
    def test_sweep_structure(self, testbed):
        results = run_figure6(SMALL_CONFIG, testbed)
        expected = (
            len(SMALL_CONFIG.mode_counts)
            * len(SMALL_CONFIG.group_counts)
            * 3
        )
        assert len(results) == expected
        for sweep in results:
            assert len(sweep.points) == len(SMALL_CONFIG.thresholds)
            assert sweep.algorithm in ("forgy", "pairwise", "mst")

    def test_best_and_at_accessors(self, testbed):
        sweep = run_figure6(SMALL_CONFIG, testbed)[0]
        best = sweep.best()
        assert best.improvement_percent == max(
            p.improvement_percent for p in sweep.points
        )
        assert sweep.at(0.0).threshold == 0.0
        with pytest.raises(KeyError):
            sweep.at(0.123)
        assert sweep.dynamic_gain >= 0.0

    def test_sweep_thresholds_shares_broker(self, testbed):
        from repro.clustering import ForgyKMeansClustering

        broker = testbed.make_broker(
            ForgyKMeansClustering(), num_groups=3, modes=4
        )
        points, publishers = testbed.publications(4)
        curve = sweep_thresholds(
            broker, points, publishers, (0.0, 0.5, 1.0)
        )
        assert [p.threshold for p in curve] == [0.0, 0.5, 1.0]
        # Full unicast at t=1.0 unless some group is fully interested.
        assert curve[-1].improvement_percent >= -1e-9


class TestComparisons:
    def test_clustering_rows(self, testbed):
        rows = run_clustering_comparison(SMALL_CONFIG, testbed, modes=4)
        assert len(rows) == 3 * len(SMALL_CONFIG.group_counts)
        for row in rows:
            assert row.cluster_seconds >= 0.0
            assert row.expected_waste >= 0.0
            assert 0.0 <= row.covered_probability <= 1.0

    def test_matching_rows(self, testbed):
        rows = run_matching_comparison(
            SMALL_CONFIG,
            testbed,
            subscription_counts=(50, 150),
            num_queries=30,
        )
        assert len(rows) == 2 * 5  # two scales x five backends
        linear = [r for r in rows if r.backend == "linear"]
        stree = [r for r in rows if r.backend == "stree"]
        # The S-tree must test strictly fewer entries than brute force.
        for lin_row, st_row in zip(linear, stree):
            assert (
                st_row.entries_per_query < lin_row.entries_per_query
            )
        # All backends agree on the average match count.
        by_k = {}
        for row in rows:
            by_k.setdefault(row.num_subscriptions, set()).add(
                round(row.mean_matches, 6)
            )
        for matches in by_k.values():
            assert len(matches) == 1
