"""System-level property tests: cost-model and broker invariants.

These pin the inequalities everything else rests on:

- dense multicast to a group never costs more than unicasting to all
  its members, and never less than the tree to any subset;
- the "ideal" reference is a true lower envelope;
- the broker's improvement percentage respects its bounds for every
  policy; and matching is invariant across policies.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.clustering import ForgyKMeansClustering
from repro.core import PubSubBroker, ThresholdPolicy
from repro.network import (
    DeliveryCostModel,
    TransitStubGenerator,
    TransitStubParams,
)

# One compact shared topology for all properties (hypothesis varies
# the traffic, not the network).
_PARAMS = TransitStubParams(
    transit_blocks=2,
    transit_nodes_per_block=2,
    stubs_per_transit_node=1,
    nodes_per_stub=6,
    size_spread=0,
)
_TOPOLOGY = TransitStubGenerator(_PARAMS, seed=77).generate()
_MODEL = DeliveryCostModel(_TOPOLOGY)
_NODES = sorted(_TOPOLOGY.graph.nodes())

node_indices = st.integers(min_value=0, max_value=len(_NODES) - 1)
node_sets = st.sets(node_indices, min_size=1, max_size=10)


def _nodes(indices):
    return [_NODES[i] for i in indices]


class TestCostModelProperties:
    @given(node_indices, node_sets)
    @settings(max_examples=80, deadline=None)
    def test_tree_bounded_by_unicast(self, source, members):
        source = _NODES[source]
        members = _nodes(members)
        tree = _MODEL.multicast_cost(source, members)
        unicast = _MODEL.unicast_cost(source, members)
        assert tree <= unicast + 1e-9
        assert tree >= 0.0

    @given(node_indices, node_sets, node_sets)
    @settings(max_examples=80, deadline=None)
    def test_tree_monotone_in_targets(self, source, a, b):
        source = _NODES[source]
        small = _nodes(a)
        large = _nodes(a | b)
        assert _MODEL.ideal_cost(source, small) <= (
            _MODEL.ideal_cost(source, large) + 1e-9
        )

    @given(node_indices, node_sets, node_sets)
    @settings(max_examples=60, deadline=None)
    def test_ideal_is_lower_envelope(self, source, interested, extra):
        """ideal(interested) <= multicast(any supergroup) and
        <= unicast(interested)."""
        source = _NODES[source]
        recipients = _nodes(interested)
        group = _nodes(interested | extra)
        ideal = _MODEL.ideal_cost(source, recipients)
        assert ideal <= _MODEL.multicast_cost(source, group) + 1e-9
        assert ideal <= _MODEL.unicast_cost(source, recipients) + 1e-9

    @given(node_indices, node_indices)
    @settings(max_examples=60, deadline=None)
    def test_distance_symmetry(self, a, b):
        u, v = _NODES[a], _NODES[b]
        assert _MODEL.routing.distance(u, v) == pytest.approx(
            _MODEL.routing.distance(v, u)
        )

    @given(node_indices, node_indices, node_indices)
    @settings(max_examples=60, deadline=None)
    def test_triangle_inequality(self, a, b, c):
        u, v, w = _NODES[a], _NODES[b], _NODES[c]
        assert _MODEL.routing.distance(u, w) <= (
            _MODEL.routing.distance(u, v)
            + _MODEL.routing.distance(v, w)
            + 1e-9
        )


class TestBrokerProperties:
    @pytest.fixture(scope="class")
    def broker(self, small_topology, small_table, nine_mode_density):
        return PubSubBroker.preprocess(
            small_topology,
            small_table,
            ForgyKMeansClustering(),
            num_groups=5,
            density=nine_mode_density,
            cells_per_dim=5,
            max_cells=40,
        )

    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=150),
    )
    @settings(
        max_examples=25,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_record_invariants_for_any_policy(
        self, broker, small_events, threshold, offset
    ):
        from repro.core import DeliveryMethod, Event

        points, publishers = small_events
        i = offset % len(points)
        event = Event.create(i, int(publishers[i]), points[i])
        record = broker.with_policy(ThresholdPolicy(threshold)).publish(
            event
        )
        if record.method is DeliveryMethod.NOT_SENT:
            assert record.match.is_empty
            return
        # The reference envelope always holds.
        assert record.ideal_cost <= record.unicast_cost + 1e-9
        assert record.ideal_cost <= record.scheme_cost + 1e-9
        if record.method is DeliveryMethod.UNICAST:
            assert record.scheme_cost == pytest.approx(
                record.unicast_cost
            )
        q = record.decision.group
        if q > 0:
            members = set(broker.partition.group(q).members)
            assert set(record.match.subscribers) <= members

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_improvement_bounded_above(
        self, broker, small_events, threshold
    ):
        points, publishers = small_events
        tally, _ = broker.with_policy(ThresholdPolicy(threshold)).run(
            points[:60], publishers[:60]
        )
        assert tally.improvement_percent <= 100.0 + 1e-9

    @given(st.floats(min_value=0.0, max_value=1.0))
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_matching_policy_invariant(
        self, broker, small_events, threshold
    ):
        """Which subscribers match is a pure function of the event."""
        points, publishers = small_events
        _, records = broker.with_policy(ThresholdPolicy(threshold)).run(
            points[:30], publishers[:30], collect_records=True
        )
        _, baseline = broker.with_policy(ThresholdPolicy(0.5)).run(
            points[:30], publishers[:30], collect_records=True
        )
        assert [r.match.subscribers for r in records] == [
            r.match.subscribers for r in baseline
        ]
