"""Failover chaos scenarios: the replication guarantees, end to end."""

import pytest

from repro.faults import (
    BrokerKill,
    FailoverChaosSimulation,
    build_failover_plan,
)
from repro.faults.verifier import build_chaos_testbed
from repro.replication import ShippingConfig
from repro.workload import PublicationGenerator

EVENTS = 120
INTER_ARRIVAL = 2.0


def _run(scenario, seed=2003, shipping=None, **kwargs):
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=200, dynamic=True
    )
    plan, primary, standbys = build_failover_plan(
        broker.topology,
        seed=seed,
        scenario=scenario,
        horizon=EVENTS * INTER_ARRIVAL,
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(EVENTS)
    simulation = FailoverChaosSimulation(
        broker, plan, standbys, primary=primary, shipping=shipping, **kwargs
    )
    return simulation, simulation.run(
        points, publishers, inter_arrival=INTER_ARRIVAL
    )


@pytest.fixture(scope="module")
def kill_run():
    return _run("kill")


class TestKillScenario:
    def test_takeover_happens(self, kill_run):
        _, report = kill_run
        assert report.replication.failovers == 1
        assert report.replication.final_epoch == 1
        assert len(report.replication.takeover_digests) == 1

    def test_outcome_ledger_balances(self, kill_run):
        _, report = kill_run
        f = report.failover
        assert f.published == EVENTS
        assert (
            f.delivered_events + f.shed_events + f.expired_events == EVENTS
        )
        assert f.accounted

    def test_no_duplicate_deliveries_across_the_takeover(self, kill_run):
        _, report = kill_run
        assert report.duplicate_deliveries == 0

    def test_fencing_probe_fired(self, kill_run):
        _, report = kill_run
        f = report.failover
        assert f.probe_rejections == 1
        assert f.probe_admissions == 1
        assert report.replication.fenced_writes >= 1

    def test_killed_primary_rejects_writes_forever(self, kill_run):
        simulation, _ = kill_run
        old = simulation.plan.broker_kills[0].node
        assert not simulation.group.write_allowed(old)
        assert simulation.group.write_allowed(simulation.group.primary)

    def test_inflight_rehanded_to_the_new_primary(self, kill_run):
        _, report = kill_run
        assert report.failover.wiped_inflight > 0
        assert report.failover.redelivered > 0

    def test_transport_redirects_point_at_the_successor(self, kill_run):
        simulation, _ = kill_run
        old = simulation.plan.broker_kills[0].node
        assert simulation.transport.directory is simulation.group.directory
        assert (
            simulation.transport.directory.resolve(old)
            == simulation.group.primary
        )


class TestPartitionScenario:
    def test_zombie_primary_is_fenced_not_resurrected(self):
        _, report = _run("partition")
        assert report.replication.failovers == 1
        # The healed zombie's stale traffic bounced off higher epochs.
        assert report.replication.stale_rejections >= 1
        assert report.replication.fenced_writes >= 1
        assert report.failover.accounted
        assert report.duplicate_deliveries == 0


class TestCatchupScenario:
    def test_lagging_standby_takes_over_via_anti_entropy(self):
        _, report = _run(
            "catchup",
            shipping=ShippingConfig(batch_ops=8, retain_ops=32,
                                    catchup_lag=24),
        )
        assert report.replication.failovers == 1
        assert report.shipping.catchups >= 1
        assert report.failover.accounted
        assert report.duplicate_deliveries == 0


class TestHarnessContracts:
    def test_requires_a_churn_capable_broker(self):
        broker, _ = build_chaos_testbed(seed=7, subscriptions=50)
        plan, primary, standbys = build_failover_plan(
            broker.topology, seed=7
        )
        with pytest.raises(TypeError, match="churn-capable"):
            FailoverChaosSimulation(broker, plan, standbys, primary=primary)

    def test_needs_a_primary_or_a_kill(self):
        broker, _ = build_chaos_testbed(seed=7, subscriptions=50,
                                        dynamic=True)
        _, _, standbys = build_failover_plan(broker.topology, seed=7)
        from repro.faults import FaultPlan

        with pytest.raises(ValueError, match="primary"):
            FailoverChaosSimulation(broker, FaultPlan(), standbys)

    def test_double_accounting_is_loud(self):
        broker, _ = build_chaos_testbed(seed=7, subscriptions=50,
                                        dynamic=True)
        plan, primary, standbys = build_failover_plan(
            broker.topology, seed=7
        )
        simulation = FailoverChaosSimulation(
            broker, plan, standbys, primary=primary
        )
        simulation._finish(0, "delivered")
        with pytest.raises(RuntimeError, match="accounted twice"):
            simulation._finish(0, "shed")

    def test_plan_builder_validates_scenario(self):
        broker, _ = build_chaos_testbed(seed=7, subscriptions=50)
        with pytest.raises(ValueError, match="scenario"):
            build_failover_plan(broker.topology, scenario="meteor")

    def test_broker_kill_validation(self):
        with pytest.raises(ValueError):
            BrokerKill(node=3, at=-1.0)
        kill = BrokerKill(node=3, at=10.0)
        assert not kill.active(9.999)
        assert kill.active(10.0)
