"""Epoch fencing: admission rules, directory resolution."""

import pytest

from repro.replication import EpochDirectory, EpochState, ReplicaRole


class TestEpochState:
    def test_negative_epoch_rejected(self):
        with pytest.raises(ValueError):
            EpochState(node=1, epoch=-1)

    def test_admit_equal_and_higher(self):
        state = EpochState(node=1, epoch=2)
        assert state.admit(2)
        assert state.admit(5)
        assert state.epoch == 5
        assert state.stale_rejected == 0

    def test_admit_lower_is_stale(self):
        state = EpochState(node=1, epoch=3)
        assert not state.admit(2)
        assert state.stale_rejected == 1
        assert state.epoch == 3  # unchanged

    def test_higher_epoch_fences_a_primary(self):
        state = EpochState(node=1, epoch=0, role=ReplicaRole.PRIMARY)
        assert state.is_primary
        assert state.admit(1)
        assert state.role is ReplicaRole.FENCED
        assert state.epoch == 1
        assert not state.is_primary

    def test_higher_epoch_does_not_fence_a_standby(self):
        state = EpochState(node=1, role=ReplicaRole.STANDBY)
        state.adopt(2)
        assert state.role is ReplicaRole.STANDBY

    def test_adopt_ignores_old_epochs(self):
        state = EpochState(node=1, epoch=4, role=ReplicaRole.PRIMARY)
        state.adopt(3)
        assert state.epoch == 4
        assert state.role is ReplicaRole.PRIMARY

    def test_only_the_current_primary_admits_writes(self):
        primary = EpochState(node=1, epoch=1, role=ReplicaRole.PRIMARY)
        assert primary.admit_write(1)
        assert primary.writes_rejected == 0

    def test_fenced_ex_primary_rejects_writes(self):
        zombie = EpochState(node=1, epoch=0, role=ReplicaRole.PRIMARY)
        zombie.adopt(1)  # somebody took over
        assert not zombie.admit_write(1)
        assert zombie.writes_rejected == 1

    def test_stale_primary_rejects_post_epoch_writes(self):
        # A partitioned zombie that has not even learned the new epoch
        # yet still rejects: the write's epoch outranks its own.
        zombie = EpochState(node=1, epoch=0, role=ReplicaRole.PRIMARY)
        assert not zombie.admit_write(1)
        assert zombie.writes_rejected == 1

    def test_dead_replica_is_not_alive(self):
        state = EpochState(node=1, role=ReplicaRole.DEAD)
        assert not state.alive
        assert not state.admit_write(0)


class TestEpochDirectory:
    def test_unknown_nodes_resolve_to_themselves(self):
        directory = EpochDirectory()
        assert directory.resolve(7) == 7
        assert not directory.redirects(7)

    def test_advance_and_resolve(self):
        directory = EpochDirectory()
        directory.advance(4, 9, epoch=1)
        assert directory.resolve(4) == 9
        assert directory.redirects(4)
        assert directory.resolve(9) == 9

    def test_chained_takeovers_follow_to_the_live_end(self):
        directory = EpochDirectory()
        directory.advance(4, 9, epoch=1)
        directory.advance(9, 8, epoch=2)
        assert directory.resolve(4) == 8
        assert directory.resolve(9) == 8
        assert directory.entries() == ((4, 9), (9, 8))

    def test_epoch_must_advance(self):
        directory = EpochDirectory()
        directory.advance(4, 9, epoch=1)
        with pytest.raises(ValueError):
            directory.advance(9, 8, epoch=1)

    def test_self_succession_rejected(self):
        directory = EpochDirectory()
        with pytest.raises(ValueError):
            directory.advance(4, 4, epoch=1)
