"""The WAL shipping protocol: batches, acks, catch-up, backpressure."""

import pytest

from repro.durability import MemoryWAL, RecordKind
from repro.durability.snapshot import MemorySnapshotStore
from repro.overload.breaker import BreakerBoard, BreakerConfig
from repro.replication import (
    EpochState,
    LogShipper,
    ReplicaRole,
    ShippingConfig,
    StandbyReplica,
)


def _standby(node=9, epoch=0):
    state = EpochState(node=node, epoch=epoch, role=ReplicaRole.STANDBY)
    return StandbyReplica(state, MemoryWAL(), MemorySnapshotStore())


class _Rig:
    """A primary WAL + shipper wired to in-memory standby replicas.

    ``send`` captures every payload; :meth:`deliver` hands the captured
    traffic to the replicas and routes acks back — with full control
    over which messages get lost.
    """

    def __init__(self, standbys=(9,), config=None, breakers=None):
        self.wal = MemoryWAL()
        self.snapshots = MemorySnapshotStore()
        self.epoch = EpochState(node=4, role=ReplicaRole.PRIMARY)
        self.replicas = {node: _standby(node) for node in standbys}
        self.outbox = []
        self.shipper = LogShipper(
            self.epoch,
            list(standbys),
            send=lambda standby, payload: self.outbox.append(
                (standby, payload)
            ),
            wal=self.wal,
            snapshots=self.snapshots,
            config=config,
            breakers=breakers,
        )

    def journal(self, count, start=0):
        """Append ``count`` records to the primary WAL and tap them."""
        for i in range(start, start + count):
            body = {"seq": i, "targets": [i + 1], "t": 0.0}
            lsn = self.wal.append(RecordKind.PUBLISH, dict(body))
            self.shipper.record(lsn, RecordKind.PUBLISH, dict(body))

    def deliver(self, drop=()):
        """Process the outbox; payloads at indexes in ``drop`` are lost."""
        traffic, self.outbox = self.outbox, []
        for index, (standby, payload) in enumerate(traffic):
            if index in drop:
                continue
            reply = self.replicas[standby].receive(payload)
            if reply is not None and reply["type"] == "ack":
                self.shipper.ack(
                    reply["node"], reply["applied"], reply["end_lsn"], 0.0
                )


class TestConfigValidation:
    def test_retain_must_cover_a_batch(self):
        with pytest.raises(ValueError):
            ShippingConfig(batch_ops=16, retain_ops=8)

    def test_positive_knobs(self):
        with pytest.raises(ValueError):
            ShippingConfig(batch_ops=0)
        with pytest.raises(ValueError):
            ShippingConfig(flush_interval=0.0)
        with pytest.raises(ValueError):
            ShippingConfig(catchup_lag=0)
        with pytest.raises(ValueError):
            ShippingConfig(failure_after=0)


class TestIncrementalShipping:
    def test_shipped_wal_is_byte_identical(self):
        rig = _Rig()
        rig.journal(12)
        rig.shipper.flush(0.0)
        rig.deliver()
        assert rig.replicas[9].wal.copy_out() == rig.wal.copy_out()
        assert rig.shipper.lag(9) == 0

    def test_lost_batch_is_covered_by_the_next_flush(self):
        rig = _Rig()
        rig.journal(5)
        rig.shipper.flush(0.0)
        rig.deliver(drop={0})  # batch never arrives
        rig.journal(5, start=5)
        rig.shipper.flush(1.0)
        rig.deliver()
        assert rig.replicas[9].applied_index == 10
        assert rig.replicas[9].wal.copy_out() == rig.wal.copy_out()

    def test_duplicate_batch_applies_only_the_overlap(self):
        rig = _Rig()
        rig.journal(4)
        rig.shipper.flush(0.0)
        traffic = list(rig.outbox)
        rig.deliver()
        # Replay the identical batch (network duplication).
        for standby, payload in traffic:
            rig.replicas[standby].receive(payload)
        assert rig.replicas[9].applied_index == 4
        assert rig.replicas[9].wal.copy_out() == rig.wal.copy_out()

    def test_gap_batch_refused_and_acked_at_current_position(self):
        replica = _standby()
        reply = replica.receive_batch(epoch=0, start_index=7, ops=[])
        assert reply["type"] == "ack"
        assert reply["applied"] == 0
        assert replica.applied_index == 0

    def test_slowest_standby_gets_the_full_suffix(self):
        rig = _Rig(standbys=(9, 8))
        rig.journal(6)
        rig.shipper.flush(0.0)
        # 9's batch arrives, 8's is lost.
        rig.deliver(drop={1})
        assert rig.shipper.lag(9) == 0
        assert rig.shipper.lag(8) == 6
        rig.shipper.flush(1.0)
        rig.deliver()
        assert rig.replicas[8].wal.copy_out() == rig.wal.copy_out()

    def test_due_tracks_batch_threshold(self):
        rig = _Rig(config=ShippingConfig(batch_ops=4, retain_ops=16))
        rig.journal(3)
        assert not rig.shipper.due
        rig.journal(1, start=3)
        assert rig.shipper.due


class TestCatchUp:
    def test_trimmed_laggard_falls_onto_anti_entropy(self):
        rig = _Rig(config=ShippingConfig(batch_ops=2, retain_ops=4))
        rig.journal(10)
        rig.shipper.flush(0.0)  # batch lost; flush trims to retain_ops
        rig.deliver(drop={0})
        rig.shipper.flush(1.0)  # ack (0) now below the buffer base
        assert rig.outbox[0][1]["type"] == "catchup"
        rig.deliver()
        assert rig.replicas[9].catchups_applied == 1
        assert rig.replicas[9].applied_index == 10
        assert rig.replicas[9].wal.copy_out() == rig.wal.copy_out()
        assert rig.shipper.stats.catchups == 1
        assert rig.shipper.stats.trimmed_ops > 0

    def test_excessive_lag_prefers_catchup_over_huge_batch(self):
        rig = _Rig(config=ShippingConfig(batch_ops=2, retain_ops=64,
                                         catchup_lag=8))
        rig.journal(20)
        rig.shipper.flush(0.0)
        assert rig.outbox[0][1]["type"] == "catchup"

    def test_stale_catchup_does_not_rewind(self):
        rig = _Rig()
        rig.journal(6)
        rig.shipper.flush(0.0)
        stale = rig.shipper.wal.copy_out()
        rig.deliver()
        # A delayed duplicate catch-up from before the acks.
        reply = rig.replicas[9].receive_catchup(
            epoch=0, start_index=2, base_lsn=stale[0], data=stale[1],
            snapshot_payload=None,
        )
        assert reply["applied"] == 6
        assert rig.replicas[9].applied_index == 6


class TestEpochHandling:
    def test_stale_epoch_batch_is_fenced(self):
        replica = _standby(epoch=2)
        reply = replica.receive_batch(epoch=1, start_index=0, ops=[])
        assert reply["type"] == "fence"
        assert reply["epoch"] == 2

    def test_newer_epoch_batch_requests_resync(self):
        # A takeover re-bases the op stream at index 0; an incremental
        # batch from the new primary cannot be applied against the old
        # stream's applied_index.
        replica = _standby(epoch=0)
        reply = replica.receive_batch(epoch=1, start_index=0, ops=[])
        assert reply["type"] == "resync"
        assert replica.epoch.epoch == 1  # adopted, but stream unbased

    def test_catchup_rebases_onto_the_new_stream(self):
        rig = _Rig()
        rig.journal(3)
        rig.shipper.flush(0.0)
        rig.deliver()
        replica = rig.replicas[9]
        assert replica.applied_index == 3
        # New primary at epoch 1 ships its whole WAL from stream 0.
        new_wal = MemoryWAL()
        lsns = [
            new_wal.append(RecordKind.PUBLISH, {"seq": i, "t": 0.0})
            for i in range(2)
        ]
        assert lsns
        base_lsn, data = new_wal.copy_out()
        reply = replica.receive_catchup(
            epoch=1, start_index=2, base_lsn=base_lsn, data=data,
            snapshot_payload=None,
        )
        assert reply["type"] == "ack"
        assert replica.stream_epoch == 1
        assert replica.applied_index == 2
        assert replica.wal.copy_out() == new_wal.copy_out()

    def test_diverged_replica_wal_is_loud(self):
        replica = _standby()
        replica.wal.append(RecordKind.PUBLISH, {"seq": 99, "t": 0.0})
        with pytest.raises(RuntimeError, match="diverged"):
            replica.receive_batch(
                epoch=0,
                start_index=0,
                ops=[("append", 0, int(RecordKind.PUBLISH), {"seq": 0})],
            )


class TestBackpressure:
    def test_no_progress_flushes_trip_the_breaker(self):
        breakers = BreakerBoard(
            BreakerConfig(failure_threshold=1, reset_timeout=1000.0)
        )
        rig = _Rig(
            config=ShippingConfig(batch_ops=1, retain_ops=8,
                                  failure_after=1),
            breakers=breakers,
        )
        rig.journal(2)
        rig.shipper.flush(0.0)  # sends, no ack ever comes back
        assert rig.shipper.stats.breaker_failures == 1
        assert 9 in breakers.open_targets()
        rig.shipper.flush(1.0)  # breaker open: skipped entirely
        assert rig.shipper.stats.backpressure_skips == 1

    def test_ack_progress_resets_the_failure_streak(self):
        breakers = BreakerBoard(
            BreakerConfig(failure_threshold=2, reset_timeout=1000.0)
        )
        rig = _Rig(
            config=ShippingConfig(batch_ops=1, retain_ops=8,
                                  failure_after=2),
            breakers=breakers,
        )
        rig.journal(1)
        rig.shipper.flush(0.0)
        rig.deliver()  # ack lands: progress
        assert rig.shipper.stats.breaker_failures == 0
        assert not breakers.open_targets()
