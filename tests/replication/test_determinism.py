"""Failover determinism: same seed, same takeover, same state.

Three witnesses:

- **byte-identical standby WALs** — shipping reproduces the primary's
  log exactly, so every standby holds the same bytes;
- **identical takeover digests** — two seeded runs suspect, promote
  and recover at the same instants with the same state fingerprint;
- **equal post-failover matching** — the promoted broker answers
  every match query exactly like a broker that never failed.
"""

import numpy as np

from repro.core import Event
from repro.faults import FailoverChaosSimulation, build_failover_plan
from repro.faults.verifier import build_chaos_testbed
from repro.replication import ReplicatedBrokerGroup
from repro.simulation import DiscreteEventSimulator
from repro.workload import PublicationGenerator

EVENTS = 100
INTER_ARRIVAL = 2.0


def _seeded_run(seed=2003):
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=200, dynamic=True
    )
    plan, primary, standbys = build_failover_plan(
        broker.topology,
        seed=seed,
        scenario="kill",
        horizon=EVENTS * INTER_ARRIVAL,
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(EVENTS)
    simulation = FailoverChaosSimulation(
        broker, plan, standbys, primary=primary
    )
    report = simulation.run(points, publishers, inter_arrival=INTER_ARRIVAL)
    return broker, density, report


class TestShippingDeterminism:
    def test_standby_wals_are_byte_identical(self):
        # A loss-free synchronous group: after a full flush, every
        # standby's physical WAL equals the primary's, byte for byte.
        broker, _ = build_chaos_testbed(
            seed=11, subscriptions=100, dynamic=True
        )
        primary = broker.topology.all_transit_nodes()[0]
        standbys = broker.topology.replica_candidates(primary, 2)
        group = ReplicatedBrokerGroup(
            broker, primary, standbys, DiscreteEventSimulator()
        )
        group.journal.checkpoint()
        for sequence in range(40):
            group.journal.log_publish(sequence, 1, [2, 3])
            group.journal.log_delivery(sequence, 2)
        group.shipper.flush(0.0)
        reference = group.wals[primary].copy_out()
        assert reference[1]  # non-empty log
        for standby in standbys:
            assert group.wals[standby].copy_out() == reference

    def test_replicated_snapshots_share_the_digest(self):
        broker, _ = build_chaos_testbed(
            seed=11, subscriptions=100, dynamic=True
        )
        primary = broker.topology.all_transit_nodes()[0]
        standbys = broker.topology.replica_candidates(primary, 2)
        group = ReplicatedBrokerGroup(
            broker, primary, standbys, DiscreteEventSimulator()
        )
        group.journal.checkpoint()
        reference = group.stores[primary].latest()
        assert reference is not None
        for standby in standbys:
            shipped = group.stores[standby].latest()
            assert shipped is not None
            assert shipped.digest() == reference.digest()


class TestTakeoverDeterminism:
    def test_repeated_runs_produce_identical_takeover_digests(self):
        _, _, first = _seeded_run(seed=2003)
        _, _, second = _seeded_run(seed=2003)
        assert first.replication.failovers == 1
        assert (
            first.replication.takeover_digests
            == second.replication.takeover_digests
        )
        assert (
            first.replication.failover_durations
            == second.replication.failover_durations
        )
        assert first.delivered == second.delivered
        assert first.finished_at == second.finished_at

    def test_different_seeds_change_the_timeline(self):
        _, _, first = _seeded_run(seed=2003)
        _, _, second = _seeded_run(seed=2004)
        assert first.finished_at != second.finished_at


class TestPostFailoverMatching:
    def test_promoted_broker_matches_like_a_never_failed_one(self):
        broker, density, report = _seeded_run(seed=2003)
        assert report.replication.failovers == 1
        # The same seeds rebuild the identical testbed, untouched by
        # any failure: the reference answers.
        pristine, _ = build_chaos_testbed(
            seed=2003, subscriptions=200, dynamic=True
        )
        probes = density.sample(np.random.default_rng(99), 50)
        for sequence, point in enumerate(probes):
            event = Event.create(sequence, 1, point)
            recovered = broker.engine.match(event)
            reference = pristine.engine.match(event)
            assert recovered.subscribers == reference.subscribers
            assert recovered.subscription_ids == reference.subscription_ids
            assert broker.partition.locate(event.point) == (
                pristine.partition.locate(event.point)
            )
