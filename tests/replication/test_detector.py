"""The deterministic heartbeat failure detector."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.replication import FailureDetector, HeartbeatConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestConfig:
    def test_defaults_are_sane(self):
        config = HeartbeatConfig()
        assert config.timeout > config.interval

    def test_interval_must_be_positive(self):
        with pytest.raises(
            ValueError, match=r"interval must be positive \(got 0.0\)"
        ):
            HeartbeatConfig(interval=0.0)

    def test_timeout_must_exceed_interval(self):
        with pytest.raises(
            ValueError,
            match=r"timeout must exceed the heartbeat interval.*"
            r"\(got timeout=10.0 vs interval=10.0\)",
        ):
            HeartbeatConfig(interval=10.0, timeout=10.0)

    def test_misuse_survives_python_O(self):
        """The guards are ValueError raises, not asserts: they must
        still fire under ``python -O`` (which strips asserts)."""
        probe = (
            "from repro.replication import HeartbeatConfig\n"
            "assert False\n"  # canary: -O must strip this line
            "for attempt in ("
            "lambda: HeartbeatConfig(interval=0.0),"
            "lambda: HeartbeatConfig(interval=10.0, timeout=10.0),"
            "lambda: HeartbeatConfig(interval=10.0, timeout=5.0),"
            "):\n"
            "    try:\n"
            "        attempt()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    else:\n"
            "        raise SystemExit('guard missing under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", probe],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout


class TestDetector:
    def test_quiet_peer_becomes_suspected_exactly_past_timeout(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        assert not detector.check(80.0)  # silence == timeout: not yet
        assert detector.check(80.001)
        assert detector.suspected

    def test_any_traffic_resets_the_clock(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        detector.heard(50.0)
        assert not detector.check(100.0)
        assert detector.check(131.0)

    def test_heard_is_monotonic(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        detector.heard(60.0)
        detector.heard(10.0)  # a delayed straggler must not rewind
        assert detector.last_heard == 60.0

    def test_hearing_clears_suspicion(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        assert detector.check(200.0)
        detector.heard(200.0)
        assert not detector.suspected
        assert detector.silence_deadline == 280.0
