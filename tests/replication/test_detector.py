"""The deterministic heartbeat failure detector."""

import pytest

from repro.replication import FailureDetector, HeartbeatConfig


class TestConfig:
    def test_defaults_are_sane(self):
        config = HeartbeatConfig()
        assert config.timeout > config.interval

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(interval=0.0)

    def test_timeout_must_exceed_interval(self):
        with pytest.raises(ValueError):
            HeartbeatConfig(interval=10.0, timeout=10.0)


class TestDetector:
    def test_quiet_peer_becomes_suspected_exactly_past_timeout(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        assert not detector.check(80.0)  # silence == timeout: not yet
        assert detector.check(80.001)
        assert detector.suspected

    def test_any_traffic_resets_the_clock(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        detector.heard(50.0)
        assert not detector.check(100.0)
        assert detector.check(131.0)

    def test_heard_is_monotonic(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        detector.heard(60.0)
        detector.heard(10.0)  # a delayed straggler must not rewind
        assert detector.last_heard == 60.0

    def test_hearing_clears_suspicion(self):
        detector = FailureDetector(HeartbeatConfig(25.0, 80.0), now=0.0)
        assert detector.check(200.0)
        detector.heard(200.0)
        assert not detector.suspected
        assert detector.silence_deadline == 280.0
