"""Slow-consumer shedding vs session cursors (the satellite interaction).

The overload layer's :class:`~repro.overload.shed.BoundedQueue` may
shed a queued delivery under ttl-priority pressure — but the event is
*retained* and the session's obligation survives, so the catch-up
replayer must make every shed event reappear, exactly once.
"""

from __future__ import annotations

from repro.faults import build_session_chaos


def run_with_shed_trace(**overrides):
    simulation, points, publishers, times = build_session_chaos(
        "slow-consumer", seed=2003, events=120, **overrides
    )
    shed_sequences = []
    original = simulation._shed_retained

    def tracing_shed(sequence):
        if simulation.victim.is_outstanding(sequence):
            shed_sequences.append(sequence)
        original(sequence)

    simulation._shed_retained = tracing_shed
    report = simulation.run(points, publishers, times)
    return simulation, report, shed_sequences


def test_shed_but_retained_events_reappear_exactly_once():
    simulation, report, shed = run_with_shed_trace()
    assert shed, "scenario produced no shedding; tighten the queue"
    assert report.shed_retained == len(shed)
    victim_id = simulation.victim.session_id
    delivered = simulation.delivered_seqs[victim_id]
    dlq = {
        entry.sequence
        for entry in simulation.dlq.entries()
        if entry.session_id == victim_id
    }
    for sequence in shed:
        # Shed from the outbound queue, yet it reached a terminal
        # bucket — replay re-derived it from the retained log.
        assert sequence in delivered or sequence in dlq
    # And reappearance is not duplication.
    assert report.duplicates == 0
    assert report.at_least_once


def test_shedding_never_advances_the_cursor_early():
    # A shed delivery must keep pinning the cursor until it settles:
    # the cursor's final position equals the head only because every
    # obligation (shed ones included) eventually settled.
    simulation, report, shed = run_with_shed_trace()
    victim = simulation.victim
    assert not victim.outstanding
    assert victim.cursor == simulation.log.head
    # Every shed sequence is in the victim's settled done-set.
    assert set(shed) <= victim.done


def test_roomier_queue_sheds_less():
    _sim_tight, report_tight, shed_tight = run_with_shed_trace()
    _sim_roomy, report_roomy, shed_roomy = run_with_shed_trace(
        slow_queue_capacity=64, slow_service_time=2.0, slow_ttl=200.0
    )
    assert len(shed_roomy) < len(shed_tight)
    # Both configurations keep the guarantee regardless.
    assert report_tight.at_least_once
    assert report_roomy.at_least_once
