"""Session lifecycle, cursor arithmetic, journaling, and recovery."""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.core.event import Event
from repro.core.matching import MatchResult
from repro.durability import (
    BrokerJournal,
    MemorySnapshotStore,
    MemoryWAL,
    RecordKind,
    recover,
)
from repro.sessions import (
    RetainedEventLog,
    SessionManager,
    SessionState,
    SubscriberSession,
)


def ev(sequence):
    return Event.create(sequence, publisher=50, coords=(0.5, 0.5))


def match(*sids):
    return MatchResult(
        subscription_ids=tuple(sids), subscribers=tuple(sids)
    )


class Clock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now


def make_manager(clock=None, journal=None, lease=100.0):
    clock = clock or Clock()
    log = RetainedEventLog(clock=clock)
    return SessionManager(
        log, journal=journal, clock=clock, default_lease=lease
    )


class TestValidation:
    def test_lease_must_be_positive(self):
        with pytest.raises(ValueError, match="lease must be positive"):
            SubscriberSession("s", 1, [0], lease=0.0)
        with pytest.raises(ValueError, match="default_lease must be positive"):
            SessionManager(RetainedEventLog(), default_lease=-1.0)

    def test_duplicate_registration_rejected(self):
        manager = make_manager()
        manager.register("s", 1, [0])
        with pytest.raises(ValueError, match="already registered"):
            manager.register("s", 2, [1])

    def test_unknown_session_lookups_raise(self):
        manager = make_manager()
        with pytest.raises(ValueError, match="unknown session"):
            manager.get("nope")


class TestCursorArithmetic:
    def test_cursor_advances_only_on_settlement(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        assert session.cursor == manager.log.head == 0
        manager.on_publish(ev(0), match(0))
        manager.on_publish(ev(1), match(0))
        # Charged but unsettled: the cursor pins at the first obligation.
        assert session.cursor == 0
        assert session.lag > 0
        manager.ack("s", 0)
        assert session.cursor > 0
        manager.ack("s", 1)
        assert session.cursor == manager.log.head
        assert session.lag == 0

    def test_out_of_order_settlement_never_skips_an_obligation(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        lsns = []
        for seq in range(3):
            lsn, _, _ = manager.on_publish(ev(seq), match(0))
            lsns.append(lsn)
        manager.ack("s", 2)
        manager.ack("s", 1)
        # Event 0 is still owed: the cursor cannot pass its LSN.
        assert session.cursor == lsns[0]
        manager.ack("s", 0)
        assert session.cursor == manager.log.head

    def test_redundant_ack_is_a_noop_not_an_error(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        manager.on_publish(ev(0), match(0))
        assert manager.ack("s", 0) is True
        assert manager.ack("s", 0) is False
        assert manager.ack("s", 99) is False
        assert session.delivered == 1

    def test_idle_cursor_rides_the_frontier_past_unmatched_events(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        manager.on_publish(ev(0), match(7))  # matches someone else
        assert session.cursor == manager.log.head
        assert session.low_water == manager.log.head

    def test_discard_settles_without_counting_a_delivery(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        manager.on_publish(ev(0), match(0))
        assert manager.discard("s", 0) is True
        assert session.delivered == 0
        assert session.deadlettered == 1
        assert session.cursor == manager.log.head

    def test_charges_go_only_to_matching_durable_sessions(self):
        manager = make_manager()
        hit = manager.register("hit", 1, [0, 1])
        miss = manager.register("miss", 2, [5])
        ghost = manager.register("ghost", 3, [0])
        ghost.durable = False
        _lsn, charged, live = manager.on_publish(ev(0), match(0))
        assert charged == [hit]
        assert live == [hit]
        assert not miss.outstanding and not ghost.outstanding

    def test_catching_up_sessions_are_charged_but_not_live(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        session.state = SessionState.CATCHING_UP
        _lsn, charged, live = manager.on_publish(ev(0), match(0))
        assert charged == [session]
        assert live == []


class TestLifecycle:
    def test_detach_is_idempotent_and_stamps_the_lease_clock(self):
        clock = Clock(10.0)
        manager = make_manager(clock=clock, lease=50.0)
        manager.register("s", 1, [0])
        session = manager.detach("s")
        assert session.state is SessionState.DETACHED
        assert session.detached_at == 10.0
        assert session.lease_deadline() == 60.0
        clock.now = 20.0
        assert manager.detach("s").detached_at == 10.0  # unchanged

    def test_resume_rewinds_the_replay_position_to_the_cursor(self):
        manager = make_manager()
        session = manager.register("s", 1, [0])
        for seq in range(3):
            manager.on_publish(ev(seq), match(0))
        manager.detach("s")
        session.replay_pos = manager.log.head  # scribble
        manager.resume("s")
        assert session.state is SessionState.CATCHING_UP
        assert session.detached_at is None
        assert session.replay_pos == session.cursor == 0

    def test_lease_expiry_demotes_and_surrenders_obligations(self):
        clock = Clock()
        manager = make_manager(clock=clock, lease=30.0)
        session = manager.register("s", 1, [0])
        keeper = manager.register("keeper", 2, [0])
        for seq in range(2):
            manager.on_publish(ev(seq), match(0))
        clock.now = 5.0
        manager.detach("s")
        # Before the deadline: nothing happens.
        assert manager.expire_leases(30.0) == []
        demoted = manager.expire_leases(35.0)
        assert [(s.session_id, seqs) for s, seqs in demoted] == [
            ("s", [0, 1])
        ]
        assert session.durable is False
        assert not session.outstanding
        assert session.cursor == manager.log.head
        assert manager.lease_expirations == 1
        # The demoted session no longer holds retention; the keeper does.
        assert manager.low_water() == keeper.low_water == 0
        # Attached or still-leased sessions are never demoted twice.
        assert manager.expire_leases(1000.0) == []


class TestJournalingAndRecovery:
    def make_journaled(self, clock):
        wal = MemoryWAL(clock=clock)
        store = MemorySnapshotStore()
        broker = SimpleNamespace()  # checkpoint() is never called here
        journal = BrokerJournal(broker, wal, store, checkpoint_every=10_000)
        manager = make_manager(clock=clock, journal=journal, lease=40.0)
        return manager, wal, store

    def test_lifecycle_and_cursors_replay_from_the_wal(self):
        clock = Clock()
        manager, wal, store = self.make_journaled(clock)
        manager.register("a", 1, [0, 3])
        manager.register("b", 2, [1])
        for seq in range(2):
            manager.on_publish(ev(seq), match(0))
        manager.ack("a", 0)
        manager.ack("a", 1)
        clock.now = 7.0
        manager.detach("b")
        state = recover(wal, store)
        assert sorted(state.sessions) == ["a", "b"]
        a, b = state.sessions["a"], state.sessions["b"]
        assert a["sids"] == [0, 3]
        assert a["cursor"] == manager.get("a").cursor
        assert a["state"] == "live"
        assert b["state"] == "detached"
        assert b["detached_at"] == 7.0
        assert b["durable"] is True

    def test_expiry_and_resume_fold_into_recovered_state(self):
        clock = Clock()
        manager, wal, store = self.make_journaled(clock)
        manager.register("gone", 1, [0])
        manager.register("back", 2, [0])
        manager.detach("gone")
        manager.detach("back")
        clock.now = 50.0
        manager.resume("back")
        manager.expire_leases(clock.now)  # lease 40 < 50: "gone" demotes
        state = recover(wal, store)
        assert state.sessions["gone"]["durable"] is False
        assert state.sessions["back"]["state"] == "live"
        assert "detached_at" not in state.sessions["back"]

    def test_restore_round_trip_comes_back_detached(self):
        clock = Clock(9.0)
        manager = make_manager(clock=clock)
        manager.register("a", 1, [0])
        manager.on_publish(ev(0), match(0))
        manager.ack("a", 0)
        manager.detach("a")
        snapshot = manager.to_state()

        restored = SessionManager(manager.log, clock=clock)
        restored.restore(snapshot)
        session = restored.get("a")
        assert session.state is SessionState.DETACHED
        assert session.cursor == manager.get("a").cursor
        assert session.subscription_ids == frozenset([0])
        # Obligations are deliberately not restored: replay re-derives
        # them from [cursor, head).
        assert not session.outstanding
        assert restored.to_state() == snapshot

    def test_recovered_cursor_is_monotone_across_records(self):
        clock = Clock()
        manager, wal, store = self.make_journaled(clock)
        manager.register("a", 1, [0])
        manager.on_publish(ev(0), match(0))
        manager.ack("a", 0)
        cursor = manager.get("a").cursor
        # A stale duplicate CURSOR record (e.g. replayed by a shipper)
        # must not rewind the recovered cursor.
        wal.append(RecordKind.CURSOR, {"id": "a", "cursor": 0})
        state = recover(wal, store)
        assert state.sessions["a"]["cursor"] == cursor


class TestBrokerIntegration:
    def test_attach_sessions_charges_on_publish_and_snapshots(self):
        from repro.faults.verifier import build_chaos_testbed
        from repro.workload import PublicationGenerator

        broker, density = build_chaos_testbed(seed=11, subscriptions=120)
        manager = make_manager()
        # Anchor a session at whichever node holds subscription 0.
        subscriber = int(broker.table[0].subscriber)
        sids = [
            sid
            for sid in range(len(broker.table))
            if int(broker.table[sid].subscriber) == subscriber
        ]
        session = manager.register("sess", subscriber, sids)
        broker.attach_sessions(manager)

        points, publishers = PublicationGenerator(
            density, broker.topology.all_stub_nodes(), seed=13
        ).generate(40)
        charged = 0
        for seq in range(len(points)):
            event = Event.create(seq, int(publishers[seq]), points[seq])
            matched = set(broker.engine.match(event).subscription_ids)
            broker.publish(event)
            if matched & session.subscription_ids:
                charged += 1
        assert charged > 0
        assert len(session.outstanding) == charged
        assert manager.log.retained() == len(points)
        state = broker.durable_state()
        assert state["sessions"] == manager.to_state()
