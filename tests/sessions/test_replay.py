"""Catch-up replay: convergence, skip sets, flow control, re-charging."""

from __future__ import annotations

import pytest

from repro.core.event import Event
from repro.core.matching import MatchResult
from repro.overload import TokenBucket
from repro.sessions import (
    CatchupReplayer,
    RetainedEventLog,
    SessionManager,
    SessionState,
)
from repro.simulation import DiscreteEventSimulator

HOME = 500


def ev(sequence):
    return Event.create(sequence, publisher=50, coords=(0.5, 0.5))


def match(*sids):
    return MatchResult(
        subscription_ids=tuple(sids), subscribers=tuple(sids)
    )


class LoopbackTransport:
    """Delivers every publish instantly and acks it on the manager."""

    def __init__(self, simulator, latency=0.5):
        self.simulator = simulator
        self.latency = latency
        self.manager = None
        self.session_of = {}  # target node -> session id
        self.sent = []
        self.dropped = set()  # sequences that vanish in flight

    def publish(self, key, source, targets, **_kwargs):
        self.sent.append((key, tuple(targets)))
        for target in targets:
            if key in self.dropped:
                continue
            session_id = self.session_of[target]
            self.simulator.schedule(
                self.latency,
                lambda k=key, s=session_id: self.manager.ack(s, k),
            )


def make_rig(bucket=None, batch=8, pump_interval=2.0, rematch=None):
    simulator = DiscreteEventSimulator()
    log = RetainedEventLog(clock=lambda: simulator.now)
    manager = SessionManager(log, clock=lambda: simulator.now)
    transport = LoopbackTransport(simulator)
    transport.manager = manager
    replayer = CatchupReplayer(
        manager,
        transport,
        HOME,
        simulator,
        rematch=rematch or (lambda event: {0}),
        bucket=bucket,
        batch=batch,
        pump_interval=pump_interval,
    )
    return simulator, manager, transport, replayer


def charge_backlog(manager, session, count, sids=(0,)):
    for seq in range(count):
        manager.on_publish(ev(seq), match(*sids))
    assert len(session.outstanding) == count


class TestConvergence:
    def test_replays_the_gap_then_marks_live(self):
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 5)
        manager.detach("s")
        manager.resume("s")
        replayer.start(session)
        simulator.run()
        assert [key for key, _ in transport.sent] == [0, 1, 2, 3, 4]
        assert session.state is SessionState.LIVE
        assert session.cursor == manager.log.head
        assert replayer.convergences == 1
        assert replayer.replay_sends == 5
        assert replayer.active == 0

    def test_start_is_idempotent(self):
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 3)
        manager.resume("s")
        replayer.start(session)
        replayer.start(session)
        replayer.start(session)
        simulator.run()
        assert replayer.replay_sends == 3
        assert replayer.convergences == 1

    def test_settled_events_are_skipped(self):
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 4)
        manager.ack("s", 1)  # delivered live before the crash
        manager.resume("s")
        replayer.start(session)
        simulator.run()
        assert [key for key, _ in transport.sent] == [0, 2, 3]
        assert session.state is SessionState.LIVE

    def test_rematch_filters_to_current_subscriptions(self):
        # The session only holds sid 5; retained events re-matching to
        # other subscriptions are passed over, not delivered.
        simulator, manager, transport, replayer = make_rig(
            rematch=lambda event: {5} if event.sequence % 2 else {9}
        )
        session = manager.register("s", 1, [5])
        transport.session_of[1] = "s"
        for seq in range(4):
            manager.on_publish(ev(seq), match(5) if seq % 2 else match(9))
        manager.resume("s")
        replayer.start(session)
        simulator.run()
        assert [key for key, _ in transport.sent] == [1, 3]
        assert session.state is SessionState.LIVE
        assert session.cursor == manager.log.head


class TestFlowControl:
    def test_token_bucket_paces_the_backlog(self):
        bucket = TokenBucket(1.0, 1.0)
        simulator, manager, transport, replayer = make_rig(
            bucket=bucket, batch=8
        )
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 5)
        manager.resume("s")
        replayer.start(session)
        finished = simulator.run()
        assert replayer.replay_sends == 5
        assert replayer.throttled >= 4
        # One token per time unit: five sends cannot finish before t=4.
        assert finished >= 4.0
        assert session.state is SessionState.LIVE

    def test_unbudgeted_replay_drains_in_batches(self):
        simulator, manager, transport, replayer = make_rig(
            batch=2, pump_interval=3.0
        )
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 6)
        manager.resume("s")
        replayer.start(session)
        finished = simulator.run()
        assert replayer.replay_sends == 6
        assert replayer.throttled == 0
        # Three batches of two, pump_interval apart: t=0, 3, 6 (+ final
        # empty read at 9).
        assert finished >= 6.0


class TestLifecycleInteraction:
    def test_pump_stops_when_the_session_detaches_again(self):
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 3)
        manager.resume("s")
        replayer.start(session)
        manager.detach("s")  # flaps away before the pump fires
        simulator.run()
        assert transport.sent == []
        assert replayer.convergences == 0
        assert replayer.active == 0
        assert session.state is SessionState.DETACHED

    def test_pump_stops_for_lease_expired_sessions(self):
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        charge_backlog(manager, session, 3)
        manager.resume("s")
        replayer.start(session)
        session.durable = False
        simulator.run()
        assert transport.sent == []
        assert replayer.active == 0

    def test_post_recovery_replay_recharges_obligations(self):
        # After a broker restart the cursor table is recovered but the
        # outstanding map is empty; replay must re-charge each gap
        # event so settlement advances the cursor past it.
        simulator, manager, transport, replayer = make_rig()
        session = manager.register("s", 1, [0])
        transport.session_of[1] = "s"
        for seq in range(3):
            manager.on_publish(ev(seq), match(0))
        # Simulate recovery: obligations lost, cursor kept.
        session.outstanding.clear()
        session._lsn_by_seq.clear()
        session.done.clear()
        manager.detach("s")
        manager.resume("s")
        replayer.start(session)
        simulator.run()
        assert [key for key, _ in transport.sent] == [0, 1, 2]
        assert session.state is SessionState.LIVE
        assert session.cursor == manager.log.head


def test_constructor_validation():
    simulator = DiscreteEventSimulator()
    log = RetainedEventLog(clock=lambda: simulator.now)
    manager = SessionManager(log)
    with pytest.raises(ValueError, match="batch must be >= 1"):
        CatchupReplayer(
            manager, None, HOME, simulator, rematch=lambda e: set(), batch=0
        )
    with pytest.raises(ValueError, match="pump_interval must be positive"):
        CatchupReplayer(
            manager,
            None,
            HOME,
            simulator,
            rematch=lambda e: set(),
            pump_interval=0.0,
        )
