"""Dead-letter quarantine: reason codes, inspection, redrive."""

from __future__ import annotations

from repro.faults.reliable import FailureReason
from repro.sessions import DeadLetterQueue


def test_quarantine_extracts_structured_reason_code():
    dlq = DeadLetterQueue(clock=lambda: 42.0)
    entry = dlq.quarantine(
        7,
        "sess-3",
        3,
        FailureReason("rejected by receiver (2 nacks)", FailureReason.NACK),
    )
    assert entry.sequence == 7
    assert entry.session_id == "sess-3"
    assert entry.subscriber == 3
    assert entry.reason_code == "nack"
    assert "rejected" in entry.reason
    assert entry.quarantined_at == 42.0
    assert entry.attempts == 0
    assert len(dlq) == 1


def test_plain_string_reason_defaults_to_timeout_code():
    dlq = DeadLetterQueue()
    entry = dlq.quarantine(0, "s", 1, "gave up")
    assert entry.reason_code == "timeout"


def test_by_reason_counts_per_code():
    dlq = DeadLetterQueue()
    dlq.quarantine(0, "a", 1, FailureReason("x", FailureReason.TIMEOUT))
    dlq.quarantine(1, "a", 1, FailureReason("x", FailureReason.NACK))
    dlq.quarantine(2, "b", 2, FailureReason("x", FailureReason.NACK))
    assert dlq.by_reason() == {"nack": 2, "timeout": 1}


def test_entries_returns_a_copy_in_quarantine_order():
    dlq = DeadLetterQueue()
    dlq.quarantine(5, "a", 1, "late")
    dlq.quarantine(3, "a", 1, "late")
    entries = dlq.entries()
    assert [e.sequence for e in entries] == [5, 3]
    entries.clear()
    assert len(dlq) == 2


def test_redrive_removes_successes_and_requeues_failures():
    dlq = DeadLetterQueue()
    for seq in range(4):
        dlq.quarantine(seq, "a", 1, "late")
    # Even sequences redeliver, odd ones stay poisoned.
    succeeded = dlq.redrive(lambda entry: entry.sequence % 2 == 0)
    assert [e.sequence for e in succeeded] == [0, 2]
    assert dlq.redriven == 2
    remaining = dlq.entries()
    assert [e.sequence for e in remaining] == [1, 3]
    assert all(e.attempts == 1 for e in remaining)
    # A second pass that fixes everything drains the queue.
    assert len(dlq.redrive(lambda entry: True)) == 2
    assert len(dlq) == 0
