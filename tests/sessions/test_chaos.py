"""The session chaos harness: the ledger must close under every abuse.

Each scenario fixture runs once per module; every test then interrogates
the same report, so the whole file costs four harness runs (plus two
small ones for determinism).
"""

from __future__ import annotations

import pytest

from repro.faults import SESSION_SCENARIOS, build_session_chaos

EVENTS = 120
SEED = 2003


def run_scenario(scenario, seed=SEED, events=EVENTS, **overrides):
    simulation, points, publishers, times = build_session_chaos(
        scenario, seed=seed, events=events, **overrides
    )
    report = simulation.run(points, publishers, times)
    return simulation, report


@pytest.fixture(scope="module", params=SESSION_SCENARIOS)
def scenario_run(request):
    return request.param, *run_scenario(request.param)


def victim_terminal_seqs(simulation):
    """Sequences the victim session saw settle (delivered or DLQ'd)."""
    victim_id = simulation.victim.session_id
    dlq = {
        entry.sequence
        for entry in simulation.dlq.entries()
        if entry.session_id == victim_id
    }
    return simulation.delivered_seqs[victim_id] | dlq, dlq


class TestLedger:
    def test_every_obligation_lands_in_exactly_one_bucket(self, scenario_run):
        _scenario, _sim, report = scenario_run
        assert report.accounted, (
            f"unsettled={report.unsettled} "
            f"{report.delivered}+{report.deadlettered}"
            f"+{report.expired_ephemeral} != {report.matched}"
        )
        assert (
            report.delivered + report.deadlettered + report.expired_ephemeral
            == report.matched
        )

    def test_no_application_level_duplicates(self, scenario_run):
        _scenario, _sim, report = scenario_run
        assert report.duplicates == 0
        assert report.at_least_once

    def test_ghost_session_expires_by_lease(self, scenario_run):
        _scenario, simulation, report = scenario_run
        assert report.lease_expirations >= 1
        ghost = simulation.ghost
        assert not ghost.durable
        # Everything the ghost was owed at expiry became "expired".
        expired = {
            seq
            for (seq, sid), outcome in simulation.outcomes.items()
            if sid == ghost.session_id and outcome == "expired"
        }
        assert report.expired_ephemeral >= len(expired) > 0

    def test_control_sessions_see_their_full_matched_sets(self, scenario_run):
        # Sessions the scenario never touches must end exactly parity:
        # delivered ∪ dead-lettered == matched, per session.
        _scenario, simulation, _report = scenario_run
        skip = {
            simulation.victim.session_id,
            simulation.ghost.session_id,
        }
        for session_id, matched in simulation.matched_seqs.items():
            if session_id in skip:
                continue
            dlq = {
                entry.sequence
                for entry in simulation.dlq.entries()
                if entry.session_id == session_id
            }
            assert simulation.delivered_seqs[session_id] | dlq == matched


class TestCrash:
    @pytest.fixture(scope="class")
    def crash(self):
        return run_scenario("crash")

    def test_victim_catches_up_to_a_never_crashed_subscriber(self, crash):
        simulation, report = crash
        terminal, _dlq = victim_terminal_seqs(simulation)
        # The post-resume delivery set equals the full matched set: the
        # crash is invisible in what the subscriber ultimately saw.
        assert terminal == simulation.matched_seqs[
            simulation.victim.session_id
        ]
        assert report.replay_sends >= 1
        assert report.convergences >= 1

    def test_victim_cursor_reaches_the_head(self, crash):
        simulation, _report = crash
        assert simulation.victim.durable
        assert not simulation.victim.outstanding
        assert simulation.victim.cursor == simulation.log.head

    def test_detach_cancels_inflight_deliveries(self, crash):
        _simulation, report = crash
        assert report.cancelled >= 1


class TestFlap:
    def test_three_flaps_heal_with_zero_duplicates(self):
        simulation, report = run_scenario("flap")
        assert report.at_least_once
        assert report.demotions + report.convergences >= 3
        terminal, _ = victim_terminal_seqs(simulation)
        assert terminal == simulation.matched_seqs[
            simulation.victim.session_id
        ]


class TestSlowConsumer:
    def test_shed_events_reappear_via_replay(self):
        simulation, report = run_scenario("slow-consumer")
        assert report.shed_retained >= 1
        assert report.at_least_once
        terminal, _ = victim_terminal_seqs(simulation)
        assert terminal == simulation.matched_seqs[
            simulation.victim.session_id
        ]


class TestPoison:
    def test_poison_events_dead_letter_with_nack_reason(self):
        simulation, report = run_scenario("poison")
        assert report.at_least_once
        assert report.dlq_by_reason.get("nack", 0) >= 1
        victim_id = simulation.victim.session_id
        nacked = {
            entry.sequence
            for entry in simulation.dlq.entries()
            if entry.session_id == victim_id
            and entry.reason_code == "nack"
        }
        # Every poison event the victim was charged ends in the DLQ,
        # never in the delivered set.
        poison_charged = (
            simulation._poison & simulation.matched_seqs[victim_id]
        )
        assert poison_charged
        assert poison_charged <= nacked
        assert not poison_charged & simulation.delivered_seqs[victim_id]

    def test_dlq_entries_are_redrivable(self):
        simulation, _report = run_scenario("poison")
        before = len(simulation.dlq)
        assert before >= 1
        simulation._poison.clear()  # operator fixed the consumer
        succeeded = simulation.dlq.redrive(lambda entry: True)
        assert len(succeeded) == before
        assert len(simulation.dlq) == 0


class TestDeterminism:
    def test_same_seed_same_digest(self):
        _sim_a, report_a = run_scenario("crash")
        _sim_b, report_b = run_scenario("crash")
        assert report_a.digest == report_b.digest
        assert report_a.delivered == report_b.delivered
        assert report_a.dlq_by_reason == report_b.dlq_by_reason

    def test_different_seed_different_digest(self):
        _sim_a, report_a = run_scenario("poison", events=80)
        _sim_b, report_b = run_scenario("poison", events=80, seed=SEED + 1)
        assert report_a.digest != report_b.digest


class TestValidation:
    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError, match="unknown session scenario"):
            run_scenario("meteor-strike")

    def test_report_surface(self):
        _simulation, report = run_scenario("crash", events=60)
        rows = dict(report.summary_rows())
        assert rows["scenario"] == "crash"
        assert rows["ledger accounted"] == "yes"
        assert rows["at-least-once"] == "yes"
        assert "digest" in rows
        assert report.retained_events >= 0
