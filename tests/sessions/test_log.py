"""The retained event log: LSN reads, retention bounds, torn tails."""

from __future__ import annotations

import pytest

from repro.core.event import Event
from repro.durability import FileWAL, MemoryWAL, RecordKind
from repro.sessions import RetainedEventLog, RetentionPolicy


def ev(sequence, point=(0.25, 0.75), deadline=None):
    return Event.create(sequence, publisher=99, coords=point, deadline=deadline)


class Clock:
    def __init__(self, now=0.0):
        self.now = float(now)

    def __call__(self):
        return self.now


class TestAppendRead:
    def test_round_trip_preserves_event_fields(self):
        clock = Clock(3.5)
        log = RetainedEventLog(clock=clock)
        lsn = log.append(ev(7, point=(0.1, 0.9), deadline=12.0))
        (retained,) = log.read(log.base)
        assert retained.lsn == lsn
        assert retained.end_lsn == log.head
        assert retained.sequence == 7
        assert retained.publisher == 99
        assert retained.point == (0.1, 0.9)
        assert retained.time == 3.5
        assert retained.deadline == 12.0

    def test_missing_deadline_decodes_to_none(self):
        log = RetainedEventLog(clock=Clock())
        log.append(ev(0))
        assert log.read(log.base)[0].deadline is None

    def test_read_seeks_and_bounds(self):
        log = RetainedEventLog(clock=Clock())
        lsns = [log.append(ev(i)) for i in range(5)]
        # From an interior LSN: that record and everything after.
        assert [e.sequence for e in log.read(lsns[2])] == [2, 3, 4]
        # max_events truncates the batch, not the log.
        assert [e.sequence for e in log.read(lsns[0], max_events=2)] == [0, 1]
        # At the head: the gap is closed.
        assert log.read(log.head) == []

    def test_non_event_records_are_skipped(self):
        wal = MemoryWAL(clock=Clock())
        log = RetainedEventLog(wal=wal)
        log.append(ev(0))
        wal.append(RecordKind.CURSOR, {"id": "sess-1", "cursor": 0})
        log.append(ev(1))
        assert [e.sequence for e in log.read(log.base)] == [0, 1]
        assert log.retained() == 2

    def test_file_backed_log_survives_reopen(self, tmp_path):
        path = tmp_path / "retained.wal"
        log = RetainedEventLog(wal=FileWAL(path, clock=Clock(1.0)))
        lsns = [log.append(ev(i)) for i in range(3)]
        reopened = RetainedEventLog(wal=FileWAL(path, clock=Clock(2.0)))
        assert [e.lsn for e in reopened.read(reopened.base)] == lsns


class TestRetention:
    def test_count_bound_keeps_newest(self):
        clock = Clock()
        log = RetainedEventLog(
            clock=clock, policy=RetentionPolicy(max_events=2)
        )
        for i in range(5):
            log.append(ev(i))
        head_before = log.head
        dropped = log.enforce_retention(clock.now)
        assert dropped > 0
        assert log.retained() == 2
        assert [e.sequence for e in log.read(log.base)] == [3, 4]
        # Truncation moves the base, never the head: LSNs are stable.
        assert log.head == head_before

    def test_age_bound_drops_stale_events(self):
        clock = Clock(0.0)
        log = RetainedEventLog(
            clock=clock, policy=RetentionPolicy(max_age=10.0)
        )
        log.append(ev(0))
        clock.now = 5.0
        log.append(ev(1))
        clock.now = 14.0  # event 0 is 14 old, event 1 is 9 old
        log.enforce_retention(clock.now)
        assert [e.sequence for e in log.read(log.base)] == [1]

    def test_low_water_caps_every_bound(self):
        clock = Clock()
        log = RetainedEventLog(
            clock=clock, policy=RetentionPolicy(max_events=1)
        )
        lsns = [log.append(ev(i)) for i in range(4)]
        log.enforce_retention(clock.now, cursor_low_water=lsns[1])
        # The count bound wanted to keep only event 3; the cursor at
        # lsns[1] wins, and the record *at* the low-water LSN survives.
        assert [e.sequence for e in log.read(log.base)] == [1, 2, 3]
        assert log.base == lsns[1]

    def test_truncate_at_exact_low_water_keeps_that_record(self):
        clock = Clock()
        log = RetainedEventLog(
            clock=clock, policy=RetentionPolicy(max_events=1)
        )
        lsns = [log.append(ev(i)) for i in range(3)]
        log.enforce_retention(clock.now, cursor_low_water=lsns[2])
        (survivor,) = log.read(log.base)
        assert survivor.lsn == lsns[2]
        assert survivor.sequence == 2

    def test_low_water_below_base_is_a_noop(self):
        clock = Clock()
        log = RetainedEventLog(
            clock=clock, policy=RetentionPolicy(max_events=1)
        )
        for i in range(3):
            log.append(ev(i))
        log.enforce_retention(clock.now)
        base = log.base
        # A stale (already-truncated-past) cursor cannot un-truncate.
        assert log.enforce_retention(clock.now, cursor_low_water=0) == 0
        assert log.base == base

    def test_unbounded_policy_never_truncates(self):
        clock = Clock()
        log = RetainedEventLog(clock=clock)
        for i in range(10):
            log.append(ev(i))
        assert log.enforce_retention(clock.now) == 0
        assert log.retained() == 10

    def test_policy_validation(self):
        with pytest.raises(ValueError, match="max_events must be >= 1"):
            RetentionPolicy(max_events=0)
        with pytest.raises(ValueError, match="max_age must be positive"):
            RetentionPolicy(max_age=0.0)


class TestRecovery:
    def test_torn_tail_is_repaired_not_served(self):
        wal = MemoryWAL(clock=Clock())
        log = RetainedEventLog(wal=wal)
        for i in range(3):
            log.append(ev(i))
        wal.tear_tail(5)
        removed = log.recover()
        assert removed > 0
        assert [e.sequence for e in log.read(log.base)] == [0, 1]
        # The repaired log accepts appends again.
        log.append(ev(9))
        assert [e.sequence for e in log.read(log.base)] == [0, 1, 9]

    def test_recover_on_clean_log_is_free(self):
        log = RetainedEventLog(clock=Clock())
        log.append(ev(0))
        assert log.recover() == 0
        assert log.retained() == 1
