"""Rebalancer: live migration, journaled recovery, overload proposals."""

import pytest

from repro.core import Event
from repro.durability import MemoryWAL
from repro.durability.wal import RecordKind
from repro.faults.verifier import build_chaos_testbed
from repro.overload import BrokerHealth
from repro.sharding import (
    MigrationPhase,
    Rebalancer,
    ShardMap,
    ShardRouter,
)
from repro.workload import PublicationGenerator


@pytest.fixture(scope="module")
def testbed():
    broker, density = build_chaos_testbed(
        seed=19, subscriptions=200, num_groups=9
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=23
    ).generate(250)
    return broker, points, publishers


def _fresh(broker):
    router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
    wal = MemoryWAL()
    return router, Rebalancer(router, wal=wal), wal


def _assert_parity(broker, router, points, publishers):
    for sequence in range(len(points)):
        event = Event.create(
            sequence, int(publishers[sequence]), points[sequence]
        )
        routed = router.route(event)
        reference = broker.engine.match(event)
        assert routed.match.subscription_ids == tuple(
            sorted(int(i) for i in reference.subscription_ids)
        )


class TestMigration:
    def test_full_migration_preserves_parity(self, testbed):
        broker, points, publishers = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.migrate(q, 1)
        assert ticket.phase is MigrationPhase.DONE
        assert router.map.owner_of_subset(q) == 1
        assert router.map.epoch == 1
        assert rebalancer.completed == 1
        _assert_parity(broker, router, points, publishers)

    def test_journal_records_all_three_phases(self, testbed):
        broker, _, _ = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        rebalancer.migrate(q, 2)
        kinds = [record.kind for record in wal.scan().records]
        assert kinds == [
            RecordKind.MIGRATE_BEGIN,
            RecordKind.MIGRATE_CUTOVER,
            RecordKind.MIGRATE_DONE,
        ]

    def test_handoff_digest_matches_snapshot(self, testbed):
        broker, _, _ = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.migrate(q, 1)
        begin = wal.scan().records[0].body
        assert begin["digest"] == ticket.handoff_digest
        assert tuple(int(x) for x in begin["ids"]) == ticket.moved_ids

    def test_abort_before_cutover_rolls_back(self, testbed):
        broker, points, publishers = testbed
        router, rebalancer, _ = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.begin(q, 1)
        assert router.map.owner_of_subset(q) == 0  # not yet cut over
        rebalancer.abort(ticket)
        assert ticket.phase is MigrationPhase.ABORTED
        assert router.map.owner_of_subset(q) == 0
        assert router.map.epoch == 0
        assert rebalancer.aborted == 1
        _assert_parity(broker, router, points, publishers)

    def test_abort_after_cutover_refused(self, testbed):
        broker, _, _ = testbed
        router, rebalancer, _ = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.begin(q, 1)
        rebalancer.cutover(ticket)
        with pytest.raises(ValueError):
            rebalancer.abort(ticket)

    def test_concurrent_migration_of_same_subset_refused(self, testbed):
        broker, _, _ = testbed
        _, rebalancer, _ = _fresh(broker)
        q = rebalancer.map.subsets_of(0)[0]
        rebalancer.begin(q, 1)
        with pytest.raises(ValueError, match="already in progress"):
            rebalancer.begin(q, 2)


class TestRecovery:
    def test_cutover_without_done_rolls_forward(self, testbed):
        broker, points, publishers = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.begin(q, 1)
        rebalancer.cutover(ticket)
        # Crash before finish: a fresh rebalancer over the same journal
        # and router must complete the cleanup, not undo the cutover.
        recovered = Rebalancer(router, wal=wal)
        summary = recovered.recover()
        assert summary.rolled_forward == (ticket.migration_id,)
        assert summary.rolled_back == ()
        assert router.map.owner_of_subset(q) == 1
        _assert_parity(broker, router, points, publishers)

    def test_begin_without_cutover_rolls_back(self, testbed):
        broker, points, publishers = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        ticket = rebalancer.begin(q, 1)
        recovered = Rebalancer(router, wal=wal)
        summary = recovered.recover()
        assert summary.rolled_forward == ()
        assert summary.rolled_back == (ticket.migration_id,)
        assert router.map.owner_of_subset(q) == 0
        _assert_parity(broker, router, points, publishers)

    def test_completed_migrations_are_left_alone(self, testbed):
        broker, _, _ = testbed
        router, rebalancer, wal = _fresh(broker)
        q = router.map.subsets_of(0)[0]
        rebalancer.migrate(q, 1)
        summary = Rebalancer(router, wal=wal).recover()
        assert summary.rolled_forward == ()
        assert summary.rolled_back == ()
        assert router.map.owner_of_subset(q) == 1


class TestProposals:
    def test_propose_moves_heaviest_subset_to_lightest_shard(self, testbed):
        broker, _, _ = testbed
        router, rebalancer, _ = _fresh(broker)
        pick = rebalancer.propose(0)
        assert pick is not None
        q, dest = pick
        assert q in router.map.subsets_of(0)
        assert dest != 0
        loads = router.map.shard_loads()
        others = {s: loads[s] for s in range(4) if s != 0}
        assert loads[dest] == min(others.values())

    def test_propose_respects_exclusions(self, testbed):
        broker, _, _ = testbed
        _, rebalancer, _ = _fresh(broker)
        pick = rebalancer.propose(0, exclude={1, 2})
        assert pick is not None
        assert pick[1] == 3

    def test_propose_from_health_targets_overloaded_shard(self, testbed):
        broker, _, _ = testbed
        _, rebalancer, _ = _fresh(broker)
        health = {
            0: BrokerHealth.HEALTHY,
            1: BrokerHealth.OVERLOADED,
            2: BrokerHealth.DEGRADED,
            3: BrokerHealth.HEALTHY,
        }
        pick = rebalancer.propose_from_health(health)
        assert pick is not None
        q, dest = pick
        assert q in rebalancer.map.subsets_of(1)
        # DEGRADED shards are not valid destinations either.
        assert dest in (0, 3)

    def test_all_healthy_proposes_nothing(self, testbed):
        broker, _, _ = testbed
        _, rebalancer, _ = _fresh(broker)
        health = {s: BrokerHealth.HEALTHY for s in range(4)}
        assert rebalancer.propose_from_health(health) is None
