"""Sharded chaos: the scale-out guarantees, end to end.

Every scenario must keep the outcome ledger balanced
(``delivered + shed + expired == published``) with zero duplicate
deliveries, route every serviced event to exactly the MatchResult a
single unsharded broker computes (digest-pinned), and explain every
missing delivery by a physically-severed target.
"""

import pytest

from repro.faults import (
    ShardedChaosSimulation,
    build_sharded_plan,
    unsharded_match_digest,
)
from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ShardMap
from repro.workload import PublicationGenerator

EVENTS = 200
SHARDS = 4


def _build(seed=29):
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=200, num_groups=9
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(EVENTS)
    return broker, points, publishers


def _run(scenario, seed=29, shards=SHARDS, migrations=2):
    broker, points, publishers = _build(seed)
    shard_map = ShardMap.plan(broker.partition, shards)
    plan, homes, planned = build_sharded_plan(
        broker.topology,
        shard_map,
        seed=seed,
        scenario=scenario,
        horizon=float(EVENTS),
        migrations=migrations,
    )
    simulation = ShardedChaosSimulation(
        broker,
        plan,
        num_shards=shards,
        shard_homes=homes,
        migrations=planned,
    )
    report = simulation.run(points, publishers)
    return broker, points, simulation, report


@pytest.fixture(scope="module")
def clean_run():
    return _run("clean")


@pytest.fixture(scope="module")
def kill_run():
    return _run("shard-kill")


@pytest.fixture(scope="module")
def crash_run():
    return _run("migration-crash")


def _assert_invariants(broker, points, simulation, report):
    sharded = report.sharded
    assert sharded.accounted, (
        sharded.delivered_events,
        sharded.shed_events,
        sharded.expired_events,
        sharded.published,
    )
    assert report.duplicate_deliveries == 0
    assert sharded.unexplained_misses == 0
    assert sharded.match_parity
    assert sharded.match_digest == unsharded_match_digest(
        broker, points, simulation.serviced_sequences
    )


class TestCleanScenario:
    def test_invariants(self, clean_run):
        _assert_invariants(*clean_run)

    def test_exactly_once_without_kills(self, clean_run):
        _, _, _, report = clean_run
        assert report.exactly_once
        assert report.sharded.stranded_misses == 0

    def test_live_migrations_completed(self, clean_run):
        _, _, simulation, report = clean_run
        assert report.sharded.migrations_completed == 2
        assert report.final_epoch == 2
        assert simulation.rebalancer.aborted == 0

    def test_every_shard_served_traffic(self, clean_run):
        _, _, _, report = clean_run
        assert set(report.routed_per_shard) == set(range(SHARDS))
        assert sum(report.routed_per_shard.values()) >= EVENTS

    def test_deterministic_across_identical_runs(self, clean_run):
        _, _, _, first = clean_run
        _, _, _, second = _run("clean")
        assert first.sharded.match_digest == second.sharded.match_digest
        assert first.sharded == second.sharded
        assert first.routed_per_shard == second.routed_per_shard


class TestShardKillScenario:
    def test_invariants(self, kill_run):
        _assert_invariants(*kill_run)

    def test_kill_triggers_rebalance(self, kill_run):
        _, _, simulation, report = kill_run
        sharded = report.sharded
        assert sharded.shard_kills >= 1
        assert sharded.rebalances >= 1
        # Every subset the dead shards owned now lives on a survivor.
        for dead in simulation._dead:
            assert simulation.map.subsets_of(dead) == []

    def test_inflight_rehand_happened(self, kill_run):
        _, _, _, report = kill_run
        assert report.sharded.wiped_inflight > 0
        assert report.sharded.redelivered > 0

    def test_survivors_inherit_traffic(self, kill_run):
        _, _, simulation, report = kill_run
        live = set(range(SHARDS)) - simulation._dead
        assert live
        assert all(report.routed_per_shard[s] > 0 for s in live)


class TestMigrationCrashScenario:
    def test_invariants(self, crash_run):
        _assert_invariants(*crash_run)

    def test_crash_mid_copy_resolves_the_migration(self, crash_run):
        _, _, simulation, report = crash_run
        sharded = report.sharded
        assert sharded.shard_kills >= 1
        # The journaled protocol resolved the interrupted migration —
        # rolled forward onto the surviving destination (or aborted if
        # the destination died too), never left in limbo.
        assert sharded.migrations_completed + sharded.migrations_aborted >= 1
        assert not simulation.rebalancer._active

    def test_epoch_advanced(self, crash_run):
        _, _, _, report = crash_run
        assert report.final_epoch >= 1


class TestHarnessGuards:
    def test_double_accounting_raises(self):
        broker, points, publishers = _build()
        shard_map = ShardMap.plan(broker.partition, SHARDS)
        plan, homes, _ = build_sharded_plan(
            broker.topology, shard_map, scenario="clean", horizon=100.0
        )
        simulation = ShardedChaosSimulation(
            broker, plan, num_shards=SHARDS, shard_homes=homes
        )
        simulation._finish(0, "delivered")
        with pytest.raises(RuntimeError, match="accounted twice"):
            simulation._finish(0, "shed")

    def test_too_many_shards_for_topology_raises(self):
        broker, _, _ = _build()
        plan, _, _ = build_sharded_plan(
            broker.topology,
            ShardMap.plan(broker.partition, 2),
            scenario="clean",
        )
        with pytest.raises(ValueError, match="transit nodes"):
            ShardedChaosSimulation(broker, plan, num_shards=999)

    def test_scenario_validated(self):
        broker, _, _ = _build()
        with pytest.raises(ValueError, match="scenario must be"):
            build_sharded_plan(
                broker.topology,
                ShardMap.plan(broker.partition, 2),
                scenario="nope",
            )

    def test_single_shard_degenerates_to_unsharded(self):
        broker, points, simulation, report = (None, None, None, None)
        broker, points, publishers = _build()
        shard_map = ShardMap.plan(broker.partition, 1)
        plan, homes, planned = build_sharded_plan(
            broker.topology,
            shard_map,
            scenario="clean",
            horizon=float(EVENTS),
        )
        simulation = ShardedChaosSimulation(
            broker, plan, num_shards=1, shard_homes=homes, migrations=planned
        )
        report = simulation.run(points, publishers)
        assert planned == []  # nowhere to migrate with one shard
        assert report.sharded.accounted
        assert report.sharded.match_parity
        assert report.routed_per_shard == {0: EVENTS}
