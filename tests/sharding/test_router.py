"""ShardRouter: routing, scatter, and exact match parity per shard."""

import numpy as np
import pytest

from repro.core import Event
from repro.geometry import Rectangle
from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ShardMap, ShardRouter
from repro.workload import PublicationGenerator


@pytest.fixture(scope="module")
def testbed():
    broker, density = build_chaos_testbed(
        seed=13, subscriptions=250, num_groups=9
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=17
    ).generate(400)
    return broker, points, publishers


@pytest.fixture()
def router(testbed):
    broker, _, _ = testbed
    return ShardRouter(broker, ShardMap.plan(broker.partition, 4))


def _assert_parity(broker, router, points, publishers):
    for sequence in range(len(points)):
        event = Event.create(
            sequence, int(publishers[sequence]), points[sequence]
        )
        routed = router.route(event)
        reference = broker.engine.match(event)
        assert routed.match.subscription_ids == tuple(
            sorted(int(i) for i in reference.subscription_ids)
        )
        assert routed.match.subscribers == tuple(reference.subscribers)


class TestRouting:
    def test_match_parity_with_unsharded_broker(self, testbed, router):
        broker, points, publishers = testbed
        _assert_parity(broker, router, points, publishers)

    def test_resolve_is_pure(self, testbed, router):
        broker, points, _ = testbed
        first = [router.resolve(p) for p in points]
        second = [router.resolve(p) for p in points]
        assert first == second

    def test_subset_events_route_to_subset_owner(self, testbed, router):
        broker, points, _ = testbed
        for point in points[:200]:
            q, shard = router.resolve(point)
            if q > 0:
                assert shard == router.map.owner_of_subset(q)

    def test_out_of_frame_point_routes_deterministically(self, router):
        grid = router.partition.grid
        outside = grid.frame_hi + 3.0
        q, shard = router.resolve(outside)
        assert q == 0
        assert 0 <= shard < router.map.num_shards
        assert router.resolve(outside) == (q, shard)


class TestScatter:
    def test_every_shard_sees_its_subscriptions_once(self, testbed, router):
        broker, _, _ = testbed
        total = sum(len(router.shards[k]) for k in router.shards)
        assert total == router.scattered
        for shard in router.shards.values():
            ids = shard.subscription_ids
            assert len(ids) == len(set(ids))

    def test_frame_escaping_rectangle_scatters_everywhere(self, router):
        grid = router.partition.grid
        ndim = grid.ndim
        lows = np.asarray(grid.frame_lo, dtype=np.float64) - 1.0
        highs = np.asarray(grid.frame_hi, dtype=np.float64)
        rect = Rectangle(lows, highs)
        assert router.cells_of_rectangle(rect) is None
        assert router.shards_of_rectangle(rect) == list(
            range(router.map.num_shards)
        )
        infinite = Rectangle.full(ndim)
        assert router.shards_of_rectangle(infinite) == list(
            range(router.map.num_shards)
        )

    def test_empty_rectangle_scatters_nowhere(self, router):
        ndim = router.partition.grid.ndim
        lo = np.full(ndim, 5.0)
        hi = np.full(ndim, 5.0)
        rect = Rectangle(lo, hi)
        assert router.cells_of_rectangle(rect) == []
        assert router.shards_of_rectangle(rect) == []


class TestIdempotency:
    def test_mark_down_twice_is_a_noop(self, testbed):
        broker, points, publishers = testbed
        router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
        first = router.mark_down(2)
        scattered = router.scattered
        sizes = {k: len(router.shards[k]) for k in router.shards}
        # Second call: no re-scatter, no double-counting, no churn.
        assert router.mark_down(2) == 0
        assert router.scattered == scattered
        assert {k: len(router.shards[k]) for k in router.shards} == sizes
        assert first >= 0
        _assert_parity(broker, router, points, publishers)

    def test_refresh_shard_twice_finds_nothing_stale(self, testbed):
        broker, _, _ = testbed
        router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
        q = router.map.subsets_of(0)[0]
        router.map.migrate(q, (router.map.owner_of_subset(q) + 1) % 4)
        first = router.refresh_shard(0)
        assert router.refresh_shard(0) == 0
        assert first >= 0

    def test_mutation_hooks_fire_once_per_change(self, testbed):
        broker, _, _ = testbed
        router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
        shard = router.shards[0]
        registered, withdrawn = [], []
        shard.on_register = lambda gid, sub, rect: registered.append(gid)
        shard.on_withdraw = lambda gid: withdrawn.append(gid)
        subscription = broker.table[shard.subscription_ids[0]]
        # Duplicate registration is deduped and must not re-fire.
        assert not shard.register(subscription)
        assert registered == []
        gid = int(subscription.subscription_id)
        assert shard.withdraw([gid, gid]) == 1
        assert withdrawn == [gid]
        assert shard.register(subscription)
        assert registered == [gid]


class TestMapChanges:
    def test_parity_survives_migration(self, testbed):
        broker, points, publishers = testbed
        router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
        q = router.map.subsets_of(0)[0]
        dest = (router.map.owner_of_subset(q) + 1) % 4
        router.map.migrate(q, dest)
        # The new owner must pick up the subset's subscriptions, the
        # old owner must drop the ones it no longer needs.
        for subscription in router.subscriptions_of_subset(q):
            router.scatter(subscription)
        router.refresh_shard(0)
        _assert_parity(broker, router, points, publishers)

    def test_parity_survives_shard_death(self, testbed):
        broker, points, publishers = testbed
        router = ShardRouter(broker, ShardMap.plan(broker.partition, 4))
        victim = 3
        # Move the victim's subsets off first (the rebalancer's job),
        # then mark it down so catchall cells redistribute.
        for q in router.map.subsets_of(victim):
            router.map.migrate(q, 0)
            for subscription in router.subscriptions_of_subset(q):
                router.scatter(subscription)
        router.mark_down(victim)
        for point in points:
            _, shard = router.resolve(point)
            assert shard != victim
        _assert_parity(broker, router, points, publishers)
