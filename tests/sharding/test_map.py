"""ShardMap and the consistent-hash ring: planning, misuse, persistence."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ConsistentHashRing, ShardMap

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def partition():
    broker, _ = build_chaos_testbed(seed=11, subscriptions=200, num_groups=9)
    return broker.partition


class TestConsistentHashRing:
    def test_owner_is_deterministic(self):
        a = ConsistentHashRing(range(4))
        b = ConsistentHashRing(range(4))
        keys = [ConsistentHashRing.cell_key((i, j)) for i in range(20) for j in range(20)]
        assert [a.owner(k) for k in keys] == [b.owner(k) for k in keys]

    def test_all_shards_get_cells(self):
        ring = ConsistentHashRing(range(4))
        owners = {
            ring.owner(ConsistentHashRing.cell_key((i, j)))
            for i in range(30)
            for j in range(30)
        }
        assert owners == {0, 1, 2, 3}

    def test_exclusion_moves_only_dead_shard_cells(self):
        ring = ConsistentHashRing(range(4))
        keys = [ConsistentHashRing.cell_key((i, j)) for i in range(25) for j in range(25)]
        before = {k: ring.owner(k) for k in keys}
        after = {k: ring.owner(k, exclude=(2,)) for k in keys}
        for key in keys:
            if before[key] != 2:
                assert after[key] == before[key]
            else:
                assert after[key] != 2

    def test_all_excluded_raises(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(ValueError):
            ring.owner("cell:0,0", exclude=(0, 1))

    def test_empty_shards_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashRing([])

    def test_bad_virtual_nodes_raises(self):
        with pytest.raises(ValueError):
            ConsistentHashRing(range(2), virtual_nodes=0)

    def test_all_excluded_message_names_the_ring(self):
        ring = ConsistentHashRing(range(2))
        with pytest.raises(
            ValueError,
            match=r"every shard on the ring is excluded "
            r"\(got exclude covering all of \[0, 1\]\)",
        ):
            ring.owner("cell:0,0", exclude=(0, 1))

    def test_single_shard_ring_owns_everything(self):
        ring = ConsistentHashRing([3])
        keys = [
            ConsistentHashRing.cell_key((i, j))
            for i in range(15)
            for j in range(15)
        ]
        assert {ring.owner(k) for k in keys} == {3}
        with pytest.raises(ValueError, match="every shard"):
            ring.owner(keys[0], exclude=(3,))

    def test_exclude_then_restore_round_trips_ownership(self):
        ring = ConsistentHashRing(range(4))
        keys = [
            ConsistentHashRing.cell_key((i, j))
            for i in range(25)
            for j in range(25)
        ]
        before = {k: ring.owner(k) for k in keys}
        # Kill shard 2, then bring it back: ownership must round-trip
        # exactly — the ring holds no state about past exclusions.
        during = {k: ring.owner(k, exclude=(2,)) for k in keys}
        after = {k: ring.owner(k) for k in keys}
        assert after == before
        assert any(before[k] == 2 and during[k] != 2 for k in keys)

    def test_ring_misuse_survives_python_O(self):
        probe = (
            "from repro.sharding import ConsistentHashRing\n"
            "assert False\n"  # canary: -O must strip this line
            "for attempt in ("
            "lambda: ConsistentHashRing([]),"
            "lambda: ConsistentHashRing(range(2), virtual_nodes=0),"
            "lambda: ConsistentHashRing(range(2)).owner("
            "'cell:0,0', exclude=(0, 1)),"
            "):\n"
            "    try:\n"
            "        attempt()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    else:\n"
            "        raise SystemExit('guard missing under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", probe],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout


class TestPlan:
    def test_plan_covers_every_subset_once(self, partition):
        shard_map = ShardMap.plan(partition, 4)
        seen = []
        for shard in range(4):
            seen.extend(shard_map.subsets_of(shard))
        assert sorted(seen) == sorted(g.q for g in partition.groups)

    def test_plan_is_pure(self, partition):
        a = ShardMap.plan(partition, 4)
        b = ShardMap.plan(partition, 4)
        assert a.to_state() == b.to_state()

    def test_plan_balances_load(self, partition):
        shard_map = ShardMap.plan(partition, 4)
        # Greedy bin-pack: no shard carries more than ~2x the mean.
        assert 1.0 <= shard_map.imbalance() < 2.0

    def test_single_shard_owns_everything(self, partition):
        shard_map = ShardMap.plan(partition, 1)
        assert shard_map.subsets_of(0) == sorted(
            g.q for g in partition.groups
        )
        assert shard_map.imbalance() == 1.0


class TestMisuse:
    """Uniform ValueError messages (the -O test below proves they are
    real raises, not assert statements stripped by optimization)."""

    def test_zero_shards(self):
        with pytest.raises(ValueError, match=r"num_shards must be >= 1 \(got 0\)"):
            ShardMap(0)

    def test_negative_shards(self):
        with pytest.raises(ValueError, match=r"num_shards must be >= 1 \(got -3\)"):
            ShardMap(-3)

    def test_assign_catchall(self):
        with pytest.raises(ValueError, match="catchall S_0 is owned cell-wise"):
            ShardMap(2).assign(0, 1)

    def test_assign_twice(self):
        shard_map = ShardMap(2)
        shard_map.assign(1, 0)
        with pytest.raises(
            ValueError, match="subset 1 already assigned to shard 0"
        ):
            shard_map.assign(1, 1)

    def test_assign_out_of_range(self):
        with pytest.raises(ValueError, match=r"shard 5 out of range 0\.\.1"):
            ShardMap(2).assign(1, 5)

    def test_migrate_to_current_owner(self):
        shard_map = ShardMap(2)
        shard_map.assign(3, 1)
        with pytest.raises(
            ValueError, match="subset 3 already lives on shard 1"
        ):
            shard_map.migrate(3, 1)

    def test_unassigned_subset(self):
        with pytest.raises(
            ValueError, match="subset 9 is not assigned to any shard"
        ):
            ShardMap(2).owner_of_subset(9)

    def test_misuse_survives_python_O(self):
        """The guards are ValueError raises, not asserts: they must
        still fire under ``python -O`` (which strips asserts)."""
        probe = (
            "from repro.sharding import ShardMap\n"
            "assert False\n"  # canary: -O must strip this line
            "for attempt in ("
            "lambda: ShardMap(0),"
            "lambda: ShardMap(2).assign(0, 1),"
            "lambda: ShardMap(2).assign(1, 5),"
            "):\n"
            "    try:\n"
            "        attempt()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    else:\n"
            "        raise SystemExit('guard missing under -O')\n"
            "m = ShardMap(2); m.assign(1, 0)\n"
            "try:\n"
            "    m.assign(1, 1)\n"
            "except ValueError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('double-assign guard missing under -O')\n"
            "try:\n"
            "    m.migrate(1, 0)\n"
            "except ValueError:\n"
            "    pass\n"
            "else:\n"
            "    raise SystemExit('self-migrate guard missing under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", probe],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout


class TestMigrationAndState:
    def test_migrate_bumps_epoch(self):
        shard_map = ShardMap(3)
        shard_map.assign(1, 0, load=5.0)
        assert shard_map.epoch == 0
        assert shard_map.migrate(1, 2) == 1
        assert shard_map.owner_of_subset(1) == 2
        assert shard_map.migrations == 1
        assert shard_map.load_of_subset(1) == 5.0

    def test_state_round_trip(self, partition):
        shard_map = ShardMap.plan(partition, 4)
        shard_map.migrate(shard_map.subsets_of(0)[0], 1)
        restored = ShardMap.restore(shard_map.to_state())
        assert restored.to_state() == shard_map.to_state()
        assert restored.epoch == shard_map.epoch
        # Ring ownership is part of the restored identity too.
        for i in range(10):
            assert restored.owner_of_cell((i, i)) == shard_map.owner_of_cell(
                (i, i)
            )
