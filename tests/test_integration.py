"""Whole-system integration tests, including the README quickstart."""

import numpy as np
import pytest

from repro import (
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    PairwiseGroupingClustering,
    PublicationGenerator,
    PubSubBroker,
    StockSubscriptionGenerator,
    SubscriptionTable,
    ThresholdPolicy,
    TransitStubGenerator,
    TransitStubParams,
    publication_distribution,
)
from repro.core import DeliveryMethod


class TestQuickstartFlow:
    """The exact flow shown in the package docstring / README."""

    def test_readme_quickstart(self):
        topology = TransitStubGenerator(
            TransitStubParams(
                transit_blocks=3,
                transit_nodes_per_block=2,
                stubs_per_transit_node=1,
                nodes_per_stub=8,
            ),
            seed=7,
        ).generate()
        placed = StockSubscriptionGenerator(topology, seed=7).generate(200)
        table = SubscriptionTable.from_placed(placed)
        density = publication_distribution(modes=9)
        broker = PubSubBroker.preprocess(
            topology,
            table,
            ForgyKMeansClustering(),
            num_groups=6,
            density=density,
            policy=ThresholdPolicy(threshold=0.15),
        )
        points, publishers = PublicationGenerator(
            density, topology.all_stub_nodes(), seed=7
        ).generate(300)
        tally, _ = broker.run(points, publishers)
        assert tally.messages == 300
        assert np.isfinite(tally.improvement_percent)


class TestCrossAlgorithmConsistency:
    @pytest.fixture(scope="class")
    def setup(self, small_topology, small_table, nine_mode_density):
        return small_topology, small_table, nine_mode_density

    def test_all_algorithms_yield_working_brokers(
        self, setup, small_events
    ):
        topology, table, density = setup
        points, publishers = small_events
        for algorithm in (
            ForgyKMeansClustering(),
            PairwiseGroupingClustering(),
            MinimumSpanningTreeClustering(),
        ):
            broker = PubSubBroker.preprocess(
                topology,
                table,
                algorithm,
                num_groups=5,
                density=density,
                cells_per_dim=5,
                max_cells=40,
            )
            tally, records = broker.run(
                points, publishers, collect_records=True
            )
            assert tally.messages == len(points)
            # The scheme never loses to naive unicast at the record
            # level for unicast decisions.
            for record in records:
                if record.method is DeliveryMethod.UNICAST:
                    assert record.scheme_cost == pytest.approx(
                        record.unicast_cost
                    )

    def test_same_matching_regardless_of_clustering(
        self, setup, small_events
    ):
        """Clustering affects delivery, never who is matched."""
        topology, table, density = setup
        points, publishers = small_events
        matched_sets = []
        for algorithm in (
            ForgyKMeansClustering(),
            MinimumSpanningTreeClustering(),
        ):
            broker = PubSubBroker.preprocess(
                topology,
                table,
                algorithm,
                num_groups=5,
                density=density,
                cells_per_dim=5,
                max_cells=40,
            )
            _, records = broker.run(
                points[:50], publishers[:50], collect_records=True
            )
            matched_sets.append(
                [r.match.subscription_ids for r in records]
            )
        assert matched_sets[0] == matched_sets[1]


class TestRunnerCli:
    def test_small_campaign_runs(self, capsys):
        from repro.experiments.runner import main

        assert main(["--small"]) == 0
        output = capsys.readouterr().out
        assert "Figure 3" in output
        assert "Figure 6" in output
        assert "Matching comparison" in output

    def test_small_campaign_with_extensions(self, capsys):
        from repro.experiments.runner import main

        assert main(["--small", "--extensions"]) == 0
        output = capsys.readouterr().out
        assert "packet-level transport" in output
        assert "replication across seeds" in output
        assert "shapes hold on every replicate: True" in output
