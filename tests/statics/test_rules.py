"""Per-rule fixtures: one snippet that triggers, one near-miss that must not.

Every rule is exercised through :func:`repro.statics.lint_source` on a
minimal inline module, so these tests pin down the exact *shape* each
rule flags — and, just as importantly, the neighbouring shapes it must
leave alone (seeded generators, typed excepts, Literal-style strings).
"""

import pytest

from repro.statics import lint_source


def codes(source, path="src/repro/core/example.py", rules=None):
    """Rule codes of active findings for an inline module."""
    from repro.statics import rules_by_code

    selected = rules_by_code(rules) if rules else None
    active, _ = lint_source(source, path, selected)
    return [finding.rule for finding in active]


class TestDET01WallClock:
    def test_time_time_triggers(self):
        source = "import time\nstamp = time.time()\n"
        assert codes(source, rules=["DET01"]) == ["DET01"]

    def test_from_import_alias_triggers(self):
        source = "from time import monotonic as mono\nt = mono()\n"
        assert codes(source, rules=["DET01"]) == ["DET01"]

    def test_datetime_now_triggers(self):
        source = "from datetime import datetime\nd = datetime.now()\n"
        assert codes(source, rules=["DET01"]) == ["DET01"]

    def test_perf_counter_is_a_near_miss(self):
        # Benchmark timing is measurement, not simulation logic.
        source = "import time\nelapsed = time.perf_counter()\n"
        assert codes(source, rules=["DET01"]) == []

    def test_injected_clock_modules_are_exempt(self):
        source = "import time\nclock = time.time()\n"
        assert codes(source, path="src/repro/telemetry/base.py") == []

    def test_unrelated_attribute_chain_is_a_near_miss(self):
        source = "sim = object()\nnow = sim.time()\n"
        assert codes(source, rules=["DET01"]) == []


class TestDET02UnseededRandomness:
    def test_module_level_random_triggers(self):
        source = "import random\nx = random.random()\n"
        assert codes(source, rules=["DET02"]) == ["DET02"]

    def test_unseeded_random_instance_triggers(self):
        source = "import random\nrng = random.Random()\n"
        assert codes(source, rules=["DET02"]) == ["DET02"]

    def test_seeded_random_instance_is_a_near_miss(self):
        source = "import random\nrng = random.Random(7)\n"
        assert codes(source, rules=["DET02"]) == []

    def test_unseeded_default_rng_triggers(self):
        source = "import numpy as np\nrng = np.random.default_rng()\n"
        assert codes(source, rules=["DET02"]) == ["DET02"]

    def test_seeded_default_rng_is_a_near_miss(self):
        source = "import numpy as np\nrng = np.random.default_rng(2003)\n"
        assert codes(source, rules=["DET02"]) == []

    def test_seed_keyword_is_a_near_miss(self):
        source = "import numpy as np\nrng = np.random.default_rng(seed=3)\n"
        assert codes(source, rules=["DET02"]) == []

    def test_legacy_numpy_global_triggers(self):
        source = "import numpy as np\nx = np.random.rand(3)\n"
        assert codes(source, rules=["DET02"]) == ["DET02"]

    def test_method_on_local_generator_is_a_near_miss(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(1)\n"
            "x = rng.random(4)\n"
        )
        assert codes(source, rules=["DET02"]) == []


class TestDET03UnorderedIteration:
    def test_for_over_set_call_triggers(self):
        source = "for item in set([3, 1, 2]):\n    print(item)\n"
        assert codes(source, rules=["DET03"]) == ["DET03"]

    def test_for_over_set_literal_triggers(self):
        source = "for item in {3, 1, 2}:\n    print(item)\n"
        assert codes(source, rules=["DET03"]) == ["DET03"]

    def test_comprehension_over_keys_view_triggers(self):
        source = "d = {}\nout = [k for k in d.keys()]\n"
        assert codes(source, rules=["DET03"]) == ["DET03"]

    def test_list_of_set_difference_triggers(self):
        source = "b = {2}\nout = list(set([1, 2]) - b)\n"
        assert codes(source, rules=["DET03"]) == ["DET03"]

    def test_arithmetic_on_names_is_a_near_miss(self):
        # a - b over plain names could be numbers; only a recognizable
        # set expression on either side makes the difference flaggable.
        source = "a = 1\nb = 2\nout = list(range(a - b))\n"
        assert codes(source, rules=["DET03"]) == []

    def test_join_over_set_triggers(self):
        source = "names = {'b', 'a'}\ntext = ', '.join(names | set())\n"
        assert codes(source, rules=["DET03"]) == ["DET03"]

    def test_sorted_wrap_is_a_near_miss(self):
        source = "for item in sorted(set([3, 1, 2])):\n    print(item)\n"
        assert codes(source, rules=["DET03"]) == []

    def test_dict_iteration_is_a_near_miss(self):
        # Plain dict iteration is insertion-ordered: allowed.
        source = "d = {}\nfor key in d:\n    print(key)\n"
        assert codes(source, rules=["DET03"]) == []

    def test_ordered_marker_suppresses(self):
        source = (
            "singleton = {0}\n"
            "for item in singleton:  # repro: ordered\n"
            "    print(item)\n"
        )
        assert codes(source, rules=["DET03"]) == []

    def test_membership_test_is_a_near_miss(self):
        source = "flag = 3 in {1, 2, 3}\n"
        assert codes(source, rules=["DET03"]) == []


class TestASSERT01AssertValidation:
    def test_assert_in_library_code_triggers(self):
        source = "def f(x):\n    assert x > 0\n    return x\n"
        assert codes(source, rules=["ASSERT01"]) == ["ASSERT01"]

    def test_tests_are_exempt(self):
        source = "def test_f():\n    assert 1 + 1 == 2\n"
        assert codes(source, path="tests/test_math.py") == []
        assert codes(source, path="tests/faults/test_x.py") == []

    def test_raise_is_the_near_miss(self):
        source = (
            "def f(x):\n"
            "    if x <= 0:\n"
            "        raise ValueError(f'x must be positive, got {x}')\n"
            "    return x\n"
        )
        assert codes(source, rules=["ASSERT01"]) == []


class TestANN01QuotedAnnotation:
    def test_quoted_return_annotation_triggers(self):
        source = "class A:\n    def clone(self) -> \"A\":\n        return self\n"
        assert codes(source, rules=["ANN01"]) == ["ANN01"]

    def test_quoted_parameter_annotation_triggers(self):
        source = "def f(other: \"Widget\") -> None:\n    pass\n"
        assert codes(source, rules=["ANN01"]) == ["ANN01"]

    def test_quoted_variable_annotation_triggers(self):
        source = "size: \"int\" = 3\n"
        assert codes(source, rules=["ANN01"]) == ["ANN01"]

    def test_future_import_style_is_the_near_miss(self):
        source = (
            "from __future__ import annotations\n"
            "class A:\n"
            "    def clone(self) -> A:\n"
            "        return self\n"
        )
        assert codes(source, rules=["ANN01"]) == []

    def test_string_inside_subscript_is_not_flagged(self):
        # Literal['a'] keeps its strings: only whole-quoted annotations
        # are the hazard this rule polices.
        source = (
            "from typing import Literal\n"
            "def f(mode: Literal['r', 'w']) -> None:\n"
            "    pass\n"
        )
        assert codes(source, rules=["ANN01"]) == []

    def test_applies_to_tests_too(self):
        source = "def helper(x: \"int\") -> None:\n    pass\n"
        assert codes(source, path="tests/test_helper.py") == ["ANN01"]


class TestERR01EmptyErrorMessage:
    def test_argless_call_triggers(self):
        source = "raise ValueError()\n"
        assert codes(source, rules=["ERR01"]) == ["ERR01"]

    def test_bare_class_raise_triggers(self):
        source = "raise RuntimeError\n"
        assert codes(source, rules=["ERR01"]) == ["ERR01"]

    def test_empty_string_triggers(self):
        source = "raise ValueError('')\n"
        assert codes(source, rules=["ERR01"]) == ["ERR01"]

    def test_whitespace_message_triggers(self):
        source = "raise RuntimeError('   ')\n"
        assert codes(source, rules=["ERR01"]) == ["ERR01"]

    def test_real_message_is_the_near_miss(self):
        source = "raise ValueError('threshold must be in [0, 1]')\n"
        assert codes(source, rules=["ERR01"]) == []

    def test_fstring_message_is_a_near_miss(self):
        source = "x = 3\nraise ValueError(f'bad x: {x}')\n"
        assert codes(source, rules=["ERR01"]) == []

    def test_other_exception_types_are_not_policed(self):
        source = "raise KeyError()\n"
        assert codes(source, rules=["ERR01"]) == []


class TestIO01NonAtomicWrite:
    DURABLE = "src/repro/durability/store.py"

    def test_raw_open_write_triggers(self):
        source = "with open('x.json', 'w') as f:\n    f.write('{}')\n"
        assert codes(source, path=self.DURABLE) == ["IO01"]

    def test_path_write_text_triggers(self):
        source = (
            "from pathlib import Path\n"
            "Path('x.json').write_text('{}')\n"
        )
        assert codes(source, path=self.DURABLE) == ["IO01"]

    def test_fdopen_write_triggers(self):
        source = "import os\nh = os.fdopen(3, 'wb')\n"
        assert codes(source, path=self.DURABLE) == ["IO01"]

    def test_read_open_is_a_near_miss(self):
        source = "with open('x.json') as f:\n    data = f.read()\n"
        assert codes(source, path=self.DURABLE) == []

    def test_read_mode_path_open_is_a_near_miss(self):
        source = (
            "from pathlib import Path\n"
            "with Path('x').open('rb') as f:\n"
            "    data = f.read()\n"
        )
        assert codes(source, path=self.DURABLE) == []

    def test_atomic_helper_is_the_sanctioned_route(self):
        source = (
            "from repro.io import atomic_write_text\n"
            "atomic_write_text('x.json', '{}')\n"
        )
        assert codes(source, path=self.DURABLE) == []

    def test_other_packages_are_out_of_scope(self):
        source = "with open('plot.csv', 'w') as f:\n    f.write('a,b')\n"
        assert codes(source, path="src/repro/experiments/export.py") == []

    @pytest.mark.parametrize(
        "subdir", ["durability", "sessions", "replication"]
    )
    def test_all_durable_subtrees_are_in_scope(self, subdir):
        source = "open('x', 'a').write('1')\n"
        path = f"src/repro/{subdir}/thing.py"
        assert "IO01" in codes(source, path=path)


class TestEXC01SwallowedException:
    def test_bare_except_triggers(self):
        source = (
            "try:\n    risky()\n"
            "except:\n    pass\n"
        )
        assert codes(source, rules=["EXC01"]) == ["EXC01"]

    def test_swallowed_broad_except_triggers(self):
        source = (
            "try:\n    recover()\n"
            "except Exception:\n    pass\n"
        )
        assert codes(source, rules=["EXC01"]) == ["EXC01"]

    def test_typed_narrow_swallow_is_a_near_miss(self):
        # The fsync_dir idiom: catching the one expected error is fine.
        source = (
            "import os\n"
            "try:\n    os.fsync(3)\n"
            "except OSError:\n    pass\n"
        )
        assert codes(source, rules=["EXC01"]) == []

    def test_broad_except_that_acts_is_a_near_miss(self):
        source = (
            "try:\n    takeover()\n"
            "except Exception:\n"
            "    log('takeover failed')\n"
            "    raise\n"
        )
        assert codes(source, rules=["EXC01"]) == []


class TestRuleMetadata:
    def test_every_rule_documents_itself(self):
        from repro.statics import ALL_RULES

        seen = set()
        for cls in ALL_RULES:
            code, invariant, rationale, hint = cls.describe()
            assert code and invariant and rationale and hint
            assert code not in seen
            seen.add(code)
        assert len(seen) == 8

    def test_unknown_rule_code_is_rejected_loudly(self):
        from repro.statics import rules_by_code

        with pytest.raises(ValueError, match="unknown lint rule"):
            rules_by_code(["DET99"])

    def test_rule_selection_is_case_insensitive(self):
        from repro.statics import rules_by_code

        (rule,) = rules_by_code(["det01"])
        assert rule.code == "DET01"
