"""The actual gate: the shipped tree lints clean, violations fail loudly.

This is the acceptance criterion as a regression test — ``repro lint
src`` must exit 0 on this tree with the checked-in (empty) baseline,
and seeding a known violation into a scratch file must exit 1 naming
the rule code.  If a future change reintroduces a wall-clock read or a
quoted annotation anywhere under ``src/``, this test fails before CI
does.
"""

from pathlib import Path

from repro.statics import Baseline, lint_paths, render_json, render_text

REPO_ROOT = Path(__file__).resolve().parents[2]


class TestShippedTreeIsClean:
    def test_src_lints_clean_with_checked_in_baseline(self):
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        result = lint_paths([str(REPO_ROOT / "src")], baseline=baseline)
        assert result.errors == []
        offending = [f.location() for f in result.findings]
        assert offending == [], f"lint gate broken: {offending}"

    def test_checked_in_baseline_is_empty(self):
        # The tree was scrubbed when the gate landed; nobody gets to
        # quietly grandfather new debt without touching this test.
        baseline = Baseline.load(REPO_ROOT / "lint-baseline.json")
        assert len(baseline) == 0

    def test_suppressions_are_rare_and_justified(self):
        # Exactly one sanctioned '# repro: noqa': the WAL's append-only
        # framing write.  Growing this number is a design decision,
        # not a convenience.
        result = lint_paths([str(REPO_ROOT / "src")])
        locations = sorted(f.location() for f in result.suppressed)
        assert len(locations) == 1
        assert "durability/wal.py" in locations[0]

    def test_tests_have_no_quoted_annotations(self):
        result = lint_paths([str(REPO_ROOT / "tests")], rules=["ANN01"])
        assert [f.location() for f in result.findings] == []


class TestSeededViolationFails:
    def seed(self, tmp_path, body):
        scratch = tmp_path / "src" / "repro" / "core"
        scratch.mkdir(parents=True, exist_ok=True)
        (scratch / "scratch.py").write_text(body)
        return lint_paths([str(tmp_path)])

    def test_wall_clock_violation_names_det01(self, tmp_path):
        result = self.seed(
            tmp_path, "import time\nstamp = time.time()\n"
        )
        assert result.exit_code == 1
        assert [f.rule for f in result.findings] == ["DET01"]
        assert "DET01" in render_text(result)
        assert '"DET01"' in render_json(result)

    def test_assert_violation_names_assert01(self, tmp_path):
        result = self.seed(tmp_path, "def f(x):\n    assert x\n")
        assert result.exit_code == 1
        assert [f.rule for f in result.findings] == ["ASSERT01"]

    def test_reports_are_deterministic(self, tmp_path):
        body = (
            "import time\n"
            "import random\n"
            "a = time.time()\n"
            "b = random.random()\n"
        )
        first = render_json(self.seed(tmp_path, body))
        second = render_json(self.seed(tmp_path, body))
        assert first == second
