"""DET-rule payoff: same seed, byte-identical chaos statistics.

The DET01/DET02 lint rules exist so this property can never silently
regress: two chaos runs built from the same seed must produce the
same report down to the last byte of its JSON encoding — no wall
clock, no ambient entropy, no hash-order wobble anywhere in the
pipeline.  The workload samplers' no-argument fallback (the one
DET02 finding this PR fixed) is pinned separately.
"""

import dataclasses
import json

import numpy as np
import pytest

from repro.core import ThresholdPolicy
from repro.faults import ChaosSimulation
from repro.faults.verifier import build_chaos_plan, build_chaos_testbed
from repro.workload import (
    PublicationGenerator,
    SubscriberPlacement,
    ZipfSampler,
)
from repro.workload.pareto import ParetoSampler


def chaos_stats_json(seed):
    """One small chaos run, encoded as canonical JSON."""
    broker, density = build_chaos_testbed(seed=seed, subscriptions=120)
    broker = broker.with_policy(ThresholdPolicy(0.15))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(80)
    plan = build_chaos_plan(
        broker.topology,
        seed=seed,
        loss=0.08,
        crashes=1,
        crash_length=60.0,
        horizon=300.0,
    )
    report = ChaosSimulation(broker, plan, reliable=True).run(
        points, publishers
    )
    payload = {
        "summary": [
            [name, repr(value)] for name, value in report.summary_rows()
        ],
        "latency": dataclasses.asdict(report.latency),
        "fault_stats": dataclasses.asdict(report.fault_stats),
        "finished_at": report.finished_at,
    }
    return json.dumps(payload, sort_keys=True)


class TestChaosDeterminism:
    def test_same_seed_runs_are_byte_identical(self):
        first = chaos_stats_json(2003)
        second = chaos_stats_json(2003)
        assert first.encode("utf-8") == second.encode("utf-8")

    def test_different_seeds_actually_differ(self):
        # Guards against the trivial way to pass the test above.
        assert chaos_stats_json(2003) != chaos_stats_json(2004)


class TestSamplerFallbackSeeding:
    """The DET02 fix: no-argument samplers are deterministic now."""

    def test_pareto_default_is_reproducible(self):
        a = ParetoSampler(2.0, 1.5).sample(64)
        b = ParetoSampler(2.0, 1.5).sample(64)
        np.testing.assert_array_equal(a, b)

    def test_zipf_default_is_reproducible(self):
        a = ZipfSampler(16).sample(64)
        b = ZipfSampler(16).sample(64)
        np.testing.assert_array_equal(a, b)

    def test_explicit_seed_changes_the_stream(self):
        a = ParetoSampler(2.0, 1.5, seed=0).sample(64)
        b = ParetoSampler(2.0, 1.5, seed=1).sample(64)
        assert not np.array_equal(a, b)

    def test_placement_default_is_reproducible(self, paper_topology):
        a = SubscriberPlacement(paper_topology).place(32)
        b = SubscriberPlacement(paper_topology).place(32)
        assert a == b

    def test_injected_rng_still_wins(self):
        # Two samplers sharing one injected generator draw from the
        # same advancing stream — the seed fallback must not shadow it.
        shared = np.random.default_rng(7)
        s1 = ParetoSampler(2.0, 1.0, rng=shared)
        s2 = ParetoSampler(2.0, 1.0, rng=shared)
        assert not np.array_equal(s1.sample(4), s2.sample(4))
