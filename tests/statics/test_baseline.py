"""Baseline round-trips: grandfather, persist, reload, decay."""

import json

import pytest

from repro.statics import Baseline, lint_paths, lint_source


def findings_for(source, path="src/repro/core/x.py"):
    active, _ = lint_source(source, path)
    return active


class TestPartition:
    def test_baselined_findings_do_not_fail_the_gate(self):
        source = "import time\nstamp = time.time()\n"
        findings = findings_for(source)
        baseline = Baseline.from_findings(findings)
        fresh, grandfathered = baseline.partition(findings)
        assert fresh == []
        assert grandfathered == findings

    def test_new_findings_still_fail(self):
        old = findings_for("import time\nstamp = time.time()\n")
        baseline = Baseline.from_findings(old)
        new = findings_for(
            "import time\nstamp = time.time()\nagain = time.time()\n"
        )
        fresh, grandfathered = baseline.partition(new)
        # Identical snippets share a fingerprint: the baseline budget
        # (one entry) excuses exactly one of the two occurrences.
        assert len(grandfathered) == 1
        assert len(fresh) == 1

    def test_multiset_budget_counts_duplicates(self):
        # Two identical offending lines → identical fingerprints; a
        # baseline holding both must excuse both, not just one.
        source = "import time\nx = time.time()\nx = time.time()\n"
        findings = findings_for(source)
        assert len(findings) == 2
        assert findings[0].fingerprint == findings[1].fingerprint
        baseline = Baseline.from_findings(findings)
        fresh, grandfathered = baseline.partition(findings)
        assert fresh == []
        assert len(grandfathered) == 2

    def test_line_drift_survives(self):
        before = "import time\nstamp = time.time()\n"
        baseline = Baseline.from_findings(findings_for(before))
        after = (
            "import time\n"
            "# three new lines\n"
            "# of commentary\n"
            "# above the violation\n"
            "stamp = time.time()\n"
        )
        fresh, grandfathered = baseline.partition(findings_for(after))
        assert fresh == []
        assert len(grandfathered) == 1

    def test_edited_violation_decays_out(self):
        before = "import time\nstamp = time.time()\n"
        baseline = Baseline.from_findings(findings_for(before))
        after = "import time\nwhen = time.time()\n"  # the line changed
        fresh, grandfathered = baseline.partition(findings_for(after))
        assert len(fresh) == 1
        assert grandfathered == []


class TestPersistence:
    def test_dump_load_round_trip(self, tmp_path):
        source = "import time\nimport random\n"
        source += "pair = (time.time(), random.random())\n"
        findings = findings_for(source)
        assert len(findings) == 2
        baseline = Baseline.from_findings(findings)
        path = tmp_path / "lint-baseline.json"
        baseline.dump(path)
        reloaded = Baseline.load(path)
        assert reloaded.to_dict() == baseline.to_dict()
        fresh, _ = reloaded.partition(findings)
        assert fresh == []

    def test_dump_is_deterministic_and_diff_friendly(self, tmp_path):
        source = "import time\nstamp = time.time()\n"
        baseline = Baseline.from_findings(findings_for(source))
        a, b = tmp_path / "a.json", tmp_path / "b.json"
        baseline.dump(a)
        baseline.dump(b)
        assert a.read_bytes() == b.read_bytes()
        payload = json.loads(a.read_text())
        assert payload["version"] == 1
        assert payload["entries"][0]["rule"] == "DET01"

    def test_missing_file_is_an_empty_baseline(self, tmp_path):
        baseline = Baseline.load(tmp_path / "absent.json")
        assert len(baseline) == 0

    def test_unsupported_version_is_loud(self, tmp_path):
        path = tmp_path / "future.json"
        path.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError, match="unsupported baseline version"):
            Baseline.load(path)


class TestEndToEnd:
    def test_lint_paths_with_baseline_goes_green(self, tmp_path):
        sick = tmp_path / "src" / "repro" / "core"
        sick.mkdir(parents=True)
        (sick / "legacy.py").write_text(
            "import time\nstamp = time.time()\n"
        )
        dirty = lint_paths([str(tmp_path)])
        assert dirty.exit_code == 1
        baseline = Baseline.from_findings(dirty.findings)
        clean = lint_paths([str(tmp_path)], baseline=baseline)
        assert clean.exit_code == 0
        assert len(clean.baselined) == 1
