"""Engine behaviour: suppression, discovery, ordering, error handling."""

import pytest

from repro.statics import lint_paths, lint_source
from repro.statics.engine import discover_files


class TestNoqaSuppression:
    def test_bare_noqa_suppresses_everything_on_the_line(self):
        source = "import time\nstamp = time.time()  # repro: noqa\n"
        active, suppressed = lint_source(source, "src/repro/core/x.py")
        assert active == []
        assert [f.rule for f in suppressed] == ["DET01"]

    def test_coded_noqa_suppresses_only_that_rule(self):
        source = (
            "import time\n"
            "import random\n"
            "pair = (time.time(), random.random())  # repro: noqa DET01\n"
        )
        active, suppressed = lint_source(source, "src/repro/core/x.py")
        assert [f.rule for f in active] == ["DET02"]
        assert [f.rule for f in suppressed] == ["DET01"]

    def test_comma_separated_codes(self):
        source = (
            "import time\n"
            "import random\n"
            "pair = (time.time(), random.random())"
            "  # repro: noqa DET01,DET02\n"
        )
        active, suppressed = lint_source(source, "src/repro/core/x.py")
        assert active == []
        assert len(suppressed) == 2

    def test_noqa_with_justification_dash(self):
        source = (
            "def f(handle):\n"
            "    with handle.open('ab') as h:"
            "  # repro: noqa IO01 - append framing is the primitive\n"
            "        h.write(b'x')\n"
        )
        active, suppressed = lint_source(
            source, "src/repro/durability/x.py"
        )
        assert active == []
        assert [f.rule for f in suppressed] == ["IO01"]

    def test_wrong_code_does_not_suppress(self):
        source = "import time\nstamp = time.time()  # repro: noqa DET02\n"
        active, _ = lint_source(source, "src/repro/core/x.py")
        assert [f.rule for f in active] == ["DET01"]

    def test_noqa_on_a_different_line_does_not_leak(self):
        source = (
            "import time\n"
            "ok = 1  # repro: noqa\n"
            "stamp = time.time()\n"
        )
        active, _ = lint_source(source, "src/repro/core/x.py")
        assert [f.rule for f in active] == ["DET01"]


class TestFindingShape:
    def test_findings_carry_location_and_hint(self):
        source = "import time\n\nstamp = time.time()\n"
        active, _ = lint_source(source, "src/repro/core/x.py")
        (finding,) = active
        assert finding.line == 3
        assert finding.col >= 1
        assert finding.path == "src/repro/core/x.py"
        assert "clock" in finding.hint
        assert finding.location() == "src/repro/core/x.py:3:9"

    def test_findings_sorted_by_position(self):
        source = (
            "import time\n"
            "import random\n"
            "b = random.random()\n"
            "a = time.time()\n"
        )
        active, _ = lint_source(source, "src/repro/core/x.py")
        assert [f.line for f in active] == [3, 4]

    def test_fingerprint_ignores_line_number(self):
        before = "import time\nstamp = time.time()\n"
        after = "import time\n# a comment pushed it down\nstamp = time.time()\n"
        (f1,), _ = lint_source(before, "src/repro/core/x.py")
        (f2,), _ = lint_source(after, "src/repro/core/x.py")
        assert f1.line != f2.line
        assert f1.fingerprint == f2.fingerprint

    def test_fingerprint_depends_on_path_and_rule(self):
        source = "import time\nstamp = time.time()\n"
        (f1,), _ = lint_source(source, "src/repro/core/x.py")
        (f2,), _ = lint_source(source, "src/repro/core/y.py")
        assert f1.fingerprint != f2.fingerprint


class TestDiscovery:
    def test_skips_pycache_and_sorts(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "b.py").write_text("x = 1\n")
        (tmp_path / "pkg" / "a.py").write_text("y = 2\n")
        cache = tmp_path / "pkg" / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-311.py").write_text("z = 3\n")
        files = discover_files([str(tmp_path)])
        assert [f.name for f in files] == ["a.py", "b.py"]

    def test_single_file_target(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        assert discover_files([str(target)]) == [target]

    def test_missing_target_is_loud(self):
        with pytest.raises(ValueError, match="does not exist"):
            discover_files(["no/such/dir"])

    def test_duplicate_targets_deduplicate(self, tmp_path):
        target = tmp_path / "one.py"
        target.write_text("x = 1\n")
        files = discover_files([str(target), str(tmp_path)])
        assert files == [target]


class TestLintPaths:
    def test_syntax_error_is_reported_not_raised(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        result = lint_paths([str(tmp_path)])
        assert result.findings == []
        assert len(result.errors) == 1
        assert "bad.py" in result.errors[0]
        assert result.exit_code == 1

    def test_clean_tree_exits_zero(self, tmp_path):
        good = tmp_path / "good.py"
        good.write_text("from __future__ import annotations\n\nx: int = 1\n")
        result = lint_paths([str(tmp_path)])
        assert result.exit_code == 0
        assert result.files == 1

    def test_rule_filter_restricts(self, tmp_path):
        source = "import time\nimport random\n"
        source += "pair = (time.time(), random.random())\n"
        sick = tmp_path / "src" / "repro" / "core"
        sick.mkdir(parents=True)
        (sick / "sick.py").write_text(source)
        both = lint_paths([str(tmp_path)])
        only = lint_paths([str(tmp_path)], rules=["DET02"])
        assert {f.rule for f in both.findings} == {"DET01", "DET02"}
        assert {f.rule for f in only.findings} == {"DET02"}
