"""Unit tests for the bounded ingress queue and its shedding policies."""

import pytest

from repro.overload import SHED_POLICIES, BoundedQueue


class TestValidation:
    def test_capacity_message(self):
        with pytest.raises(ValueError) as excinfo:
            BoundedQueue(0)
        assert str(excinfo.value) == (
            "BoundedQueue: capacity must be >= 1 (got 0)"
        )

    def test_unknown_policy(self):
        with pytest.raises(ValueError, match="unknown policy"):
            BoundedQueue(4, "drop-random")

    def test_known_policies_construct(self):
        for policy in SHED_POLICIES:
            assert BoundedQueue(4, policy).policy == policy


class TestDropNewest:
    def test_full_queue_sheds_the_arrival(self):
        queue = BoundedQueue(2, "drop-newest")
        assert queue.offer("a", 0.0) == []
        assert queue.offer("b", 1.0) == []
        assert queue.offer("c", 2.0) == ["c"]
        assert queue.depth == 2
        assert queue.stats.shed == 1

    def test_fifo_order_preserved(self):
        queue = BoundedQueue(3)
        for name in "abc":
            queue.offer(name, 0.0)
        assert queue.poll(1.0) == ("a", [])
        assert queue.poll(1.0) == ("b", [])
        assert queue.poll(1.0) == ("c", [])
        assert queue.poll(1.0) == (None, [])


class TestDropOldest:
    def test_full_queue_evicts_the_head(self):
        queue = BoundedQueue(2, "drop-oldest")
        queue.offer("a", 0.0)
        queue.offer("b", 1.0)
        assert queue.offer("c", 2.0) == ["a"]
        assert queue.poll(3.0) == ("b", [])
        assert queue.poll(3.0) == ("c", [])


class TestTtlPriority:
    def test_expired_entries_purged_before_eviction(self):
        queue = BoundedQueue(2, "ttl-priority")
        queue.offer("stale", 0.0, deadline=1.0)
        queue.offer("fresh", 0.0, deadline=100.0)
        # At t=5 "stale" is past its deadline: purged, not evicted.
        assert queue.offer("new", 5.0, deadline=100.0) == []
        assert queue.expired_in_last_offer() == ["stale"]
        assert queue.stats.expired == 1
        assert queue.depth == 2

    def test_evicts_nearest_deadline_when_sooner_than_arrival(self):
        queue = BoundedQueue(2, "ttl-priority")
        queue.offer("soon", 0.0, deadline=10.0)
        queue.offer("later", 0.0, deadline=50.0)
        assert queue.offer("new", 1.0, deadline=30.0) == ["soon"]

    def test_sheds_arrival_when_its_deadline_is_nearest(self):
        queue = BoundedQueue(2, "ttl-priority")
        queue.offer("a", 0.0, deadline=40.0)
        queue.offer("b", 0.0, deadline=50.0)
        assert queue.offer("new", 1.0, deadline=5.0) == ["new"]

    def test_deadline_free_entries_never_evicted(self):
        queue = BoundedQueue(2, "ttl-priority")
        queue.offer("a", 0.0)
        queue.offer("b", 0.0)
        assert queue.offer("new", 1.0, deadline=5.0) == ["new"]


class TestCapacityInvariant:
    @pytest.mark.parametrize("policy", SHED_POLICIES)
    def test_depth_never_exceeds_capacity(self, policy):
        queue = BoundedQueue(5, policy)
        for i in range(50):
            queue.offer(i, float(i), deadline=float(i) + 7.0)
            assert queue.depth <= 5
        assert queue.stats.peak_depth <= 5

    def test_every_offer_is_accounted(self):
        # admitted + shed == offered, and every admitted entry either
        # polls out, expires, or remains queued.
        queue = BoundedQueue(4, "drop-oldest")
        shed = []
        for i in range(20):
            shed.extend(queue.offer(i, float(i), deadline=float(i) + 3.0))
        stats = queue.stats
        # drop-oldest always admits the arrival; each shed is an eviction.
        assert stats.admitted == stats.offered
        assert stats.shed == len(shed)
        polled, expired = [], []
        while True:
            payload, late = queue.poll(25.0)
            expired.extend(late)
            if payload is None:
                break
            polled.append(payload)
        assert len(polled) + len(expired) + len(shed) == 20


class TestPollAndSignals:
    def test_poll_skips_expired_entries(self):
        queue = BoundedQueue(4)
        queue.offer("a", 0.0, deadline=1.0)
        queue.offer("b", 0.0, deadline=100.0)
        payload, expired = queue.poll(10.0)
        assert payload == "b"
        assert expired == ["a"]

    def test_head_wait_and_fill_fraction(self):
        queue = BoundedQueue(4)
        assert queue.head_wait(5.0) == 0.0
        queue.offer("a", 2.0)
        queue.offer("b", 3.0)
        assert queue.head_wait(5.0) == 3.0
        assert queue.fill_fraction == 0.5

    def test_expired_at_exact_deadline(self):
        queue = BoundedQueue(2)
        queue.offer("a", 0.0, deadline=4.0)
        assert queue.poll(4.0) == (None, ["a"])
