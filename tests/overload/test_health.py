"""Unit tests for the health state machine's hysteresis."""

import pytest

from repro.overload import BrokerHealth, HealthMonitor, HealthThresholds


THRESHOLDS = HealthThresholds(
    degrade_high=0.6,
    degrade_low=0.3,
    overload_high=0.9,
    overload_low=0.6,
    min_dwell=10.0,
)


@pytest.fixture()
def monitor():
    return HealthMonitor(THRESHOLDS)


class TestValidation:
    def test_ordering_enforced(self):
        with pytest.raises(ValueError, match="degrade_low < degrade_high"):
            HealthThresholds(degrade_low=0.7, degrade_high=0.6)
        with pytest.raises(ValueError, match="overload_low"):
            HealthThresholds(degrade_high=0.8, overload_low=0.7)
        with pytest.raises(ValueError, match="overload_high must be <= 1"):
            HealthThresholds(overload_high=1.5)
        with pytest.raises(ValueError, match="min_dwell"):
            HealthThresholds(min_dwell=-1.0)


class TestUpwardTransitions:
    def test_degrade_fires_immediately_at_high_water(self, monitor):
        assert monitor.observe(0.0, 0.59) is BrokerHealth.HEALTHY
        assert monitor.observe(0.1, 0.60) is BrokerHealth.DEGRADED

    def test_overload_fires_immediately(self, monitor):
        monitor.observe(0.0, 0.7)
        assert monitor.observe(0.1, 0.90) is BrokerHealth.OVERLOADED

    def test_healthy_can_jump_straight_to_overloaded(self, monitor):
        assert monitor.observe(0.0, 0.95) is BrokerHealth.OVERLOADED


class TestHysteresis:
    def test_downward_needs_low_water_not_just_below_high(self, monitor):
        monitor.observe(0.0, 0.7)  # DEGRADED
        # 0.5 is below degrade_high but above degrade_low: stay put,
        # however long it dwells.
        assert monitor.observe(50.0, 0.5) is BrokerHealth.DEGRADED

    def test_downward_needs_dwell_time(self, monitor):
        monitor.observe(0.0, 0.7)  # DEGRADED at t=0
        assert monitor.observe(5.0, 0.1) is BrokerHealth.DEGRADED
        assert monitor.observe(10.0, 0.1) is BrokerHealth.HEALTHY

    def test_no_flapping_at_the_boundary(self, monitor):
        # Oscillate around degrade_high after degrading: one
        # transition, not one per sample.
        monitor.observe(0.0, 0.65)
        for i in range(1, 50):
            monitor.observe(float(i) * 0.1, 0.55 if i % 2 else 0.65)
        assert len(monitor.transitions) == 1

    def test_overload_recovers_one_step_at_a_time(self, monitor):
        monitor.observe(0.0, 0.95)  # OVERLOADED
        assert monitor.observe(20.0, 0.0) is BrokerHealth.DEGRADED
        # Dwell restarts in DEGRADED before the final step down.
        assert monitor.observe(25.0, 0.0) is BrokerHealth.DEGRADED
        assert monitor.observe(30.0, 0.0) is BrokerHealth.HEALTHY
        assert [state for _, state in monitor.transitions] == [
            BrokerHealth.OVERLOADED,
            BrokerHealth.DEGRADED,
            BrokerHealth.HEALTHY,
        ]


class TestAccounting:
    def test_samples_count_per_state(self, monitor):
        for i in range(5):
            monitor.observe(float(i), 0.0)
        monitor.observe(6.0, 0.7)
        monitor.observe(7.0, 0.7)
        assert monitor.samples[BrokerHealth.HEALTHY] == 5
        assert monitor.samples[BrokerHealth.DEGRADED] == 2

    def test_flags(self, monitor):
        assert not monitor.degraded and not monitor.shedding
        monitor.observe(0.0, 0.7)
        assert monitor.degraded and not monitor.shedding
        monitor.observe(1.0, 0.95)
        assert monitor.degraded and monitor.shedding
