"""Unit tests for the circuit-breaker state machine."""

import pytest

from repro.overload import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    CircuitBreaker,
)


class TestValidation:
    def test_threshold_message(self):
        with pytest.raises(ValueError) as excinfo:
            BreakerConfig(failure_threshold=0)
        assert str(excinfo.value) == (
            "BreakerConfig: failure_threshold must be >= 1 (got 0)"
        )

    def test_reset_timeout_message(self):
        with pytest.raises(ValueError) as excinfo:
            BreakerConfig(reset_timeout=0.0)
        assert str(excinfo.value) == (
            "BreakerConfig: reset_timeout must be positive (got 0.0)"
        )


@pytest.fixture()
def breaker():
    return CircuitBreaker(BreakerConfig(failure_threshold=3, reset_timeout=50.0))


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures(self, breaker):
        assert not breaker.record_failure(1.0)
        assert not breaker.record_failure(2.0)
        assert breaker.record_failure(3.0)  # third strike opens
        assert breaker.state is BreakerState.OPEN

    def test_success_resets_the_failure_count(self, breaker):
        breaker.record_failure(1.0)
        breaker.record_failure(2.0)
        breaker.record_success(3.0)
        assert not breaker.record_failure(4.0)
        assert not breaker.record_failure(5.0)
        assert breaker.state is BreakerState.CLOSED

    def test_open_blocks_until_reset_timeout(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert not breaker.allow(10.0)
        assert not breaker.allow(52.9)
        assert breaker.allow(53.0)  # 3.0 + 50.0
        assert breaker.state is BreakerState.HALF_OPEN

    def test_half_open_admits_exactly_one_probe(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(60.0)
        assert not breaker.allow(60.0)  # probe already in flight
        assert not breaker.allow(61.0)

    def test_probe_success_closes(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(60.0)
        assert breaker.record_success(61.0)
        assert breaker.state is BreakerState.CLOSED
        assert breaker.allow(61.0)

    def test_probe_failure_rearms_the_timer(self, breaker):
        for t in (1.0, 2.0, 3.0):
            breaker.record_failure(t)
        assert breaker.allow(60.0)
        assert breaker.record_failure(61.0)  # probe died -> OPEN again
        assert breaker.state is BreakerState.OPEN
        assert not breaker.allow(100.0)
        assert breaker.allow(111.0)  # 61.0 + 50.0


class TestBreakerBoard:
    def test_targets_are_independent(self):
        board = BreakerBoard(BreakerConfig(failure_threshold=2))
        board.record_failure(7, 1.0)
        board.record_failure(7, 2.0)
        assert board.state(7) is BreakerState.OPEN
        assert board.state(8) is BreakerState.CLOSED
        assert board.allow(8, 3.0)
        assert not board.allow(7, 3.0)
        assert board.open_targets() == [7]

    def test_stats_and_transition_log(self):
        board = BreakerBoard(
            BreakerConfig(failure_threshold=1, reset_timeout=10.0)
        )
        board.record_failure(5, 1.0)    # open
        assert not board.allow(5, 2.0)  # short circuit
        assert board.allow(5, 12.0)     # probe
        board.record_success(5, 13.0)   # close
        assert board.stats.opens == 1
        assert board.stats.short_circuits == 1
        assert board.stats.probes == 1
        assert board.stats.closes == 1
        assert board.transitions == [
            (1.0, 5, "open"),
            (12.0, 5, "half_open"),
            (13.0, 5, "closed"),
        ]

    def test_deterministic_under_injected_clock(self):
        def run():
            board = BreakerBoard(
                BreakerConfig(failure_threshold=2, reset_timeout=5.0)
            )
            for t in range(20):
                now = float(t)
                if board.allow(3, now):
                    (board.record_failure if t % 3 else board.record_success)(
                        3, now
                    )
            return board.transitions, vars(board.stats)

        assert run() == run()
