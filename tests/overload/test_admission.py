"""Unit tests for token-bucket admission control."""

import pytest

from repro.overload import TokenBucket


class TestValidation:
    def test_rate_message(self):
        with pytest.raises(ValueError) as excinfo:
            TokenBucket(0.0, 4.0)
        assert str(excinfo.value) == (
            "TokenBucket: rate must be positive (got 0.0)"
        )

    def test_burst_message(self):
        with pytest.raises(ValueError) as excinfo:
            TokenBucket(1.0, 0.5)
        assert str(excinfo.value) == (
            "TokenBucket: burst must be >= 1 (got 0.5)"
        )


class TestBucket:
    def test_starts_full(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert bucket.tokens_at(0.0) == 3.0

    def test_burst_then_reject(self):
        bucket = TokenBucket(rate=1.0, burst=3.0)
        assert all(bucket.try_acquire(0.0) for _ in range(3))
        assert not bucket.try_acquire(0.0)
        assert bucket.stats.admitted == 3
        assert bucket.stats.rejected == 1

    def test_lazy_refill_is_exact(self):
        bucket = TokenBucket(rate=2.0, burst=10.0)
        for _ in range(10):
            bucket.try_acquire(0.0)
        assert bucket.tokens_at(0.0) == 0.0
        # 2 tokens/unit * 1.5 units = 3 tokens.
        assert bucket.tokens_at(1.5) == pytest.approx(3.0)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=5.0, burst=4.0)
        bucket.try_acquire(0.0)
        assert bucket.tokens_at(1000.0) == 4.0

    def test_sustained_rate_bounded_by_rate(self):
        # Offer 10 events/unit against a 2/unit budget: admissions
        # settle at the configured rate once the burst is spent.
        bucket = TokenBucket(rate=2.0, burst=5.0)
        admitted = sum(
            bucket.try_acquire(i * 0.1) for i in range(1, 201)
        )
        # 20 time units * 2/unit = 40 refilled + 5 initial burst.
        assert admitted <= 45
        assert admitted >= 40

    def test_multi_token_acquire(self):
        bucket = TokenBucket(rate=1.0, burst=4.0)
        assert bucket.try_acquire(0.0, tokens=4.0)
        assert not bucket.try_acquire(0.0, tokens=1.0)

    def test_time_never_flows_backwards_in_refill(self):
        bucket = TokenBucket(rate=1.0, burst=2.0)
        bucket.try_acquire(10.0)
        # An out-of-order (earlier) timestamp must not mint tokens.
        assert bucket.tokens_at(5.0) <= 2.0
