"""Directory-driven retry redirection (epoch-fenced targets)."""

from types import SimpleNamespace

import networkx as nx

from repro.faults import FaultInjector, FaultPlan, ReliableTransport, RetryConfig
from repro.faults.plan import BrokerCrash
from repro.network.routing import RoutingTable
from repro.replication import EpochDirectory
from repro.simulation import DiscreteEventSimulator
from repro.simulation.packet_network import PacketNetwork


def line_graph():
    g = nx.Graph()
    g.add_edge(0, 1, cost=1.0)
    g.add_edge(1, 2, cost=1.0)
    g.add_edge(1, 3, cost=1.0)
    return g


def make_stack(plan, directory=None):
    g = line_graph()
    simulator = DiscreteEventSimulator()
    injector = FaultInjector(plan)
    network = PacketNetwork(
        SimpleNamespace(graph=g),
        simulator,
        routing=RoutingTable(g),
        injector=injector,
    )
    deliveries = []
    give_ups = []
    transport = ReliableTransport(
        network,
        config=RetryConfig(
            ack_timeout=10.0, backoff=2.0, max_jitter=0.0, max_attempts=4
        ),
        seed=plan.seed + 1,
        detector=injector,
        graph=g,
        on_deliver=lambda target, key, time: deliveries.append(
            (key, target)
        ),
        on_give_up=lambda target, key, reason: give_ups.append(
            (key, target, reason)
        ),
        directory=directory,
    )
    return simulator, transport, deliveries, give_ups


class TestPublishResolution:
    def test_targets_resolve_through_the_directory_at_publish(self):
        directory = EpochDirectory()
        directory.advance(2, 3, epoch=1)
        sim, transport, deliveries, give_ups = make_stack(
            FaultPlan(), directory=directory
        )
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert deliveries == [(0, 3)]  # never even aimed at 2
        assert not give_ups
        assert transport.stats.redirected == 0

    def test_no_directory_means_no_redirection(self):
        sim, transport, deliveries, _ = make_stack(FaultPlan())
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert deliveries == [(0, 2)]


class TestRetryRedirection:
    def test_retry_to_a_fenced_node_migrates_to_its_successor(self):
        # Node 2 is down for good; the directory learns of its
        # successor (node 3) only after the first send is in flight.
        plan = FaultPlan(
            seed=5, crashes=(BrokerCrash(2, start=0.0, end=1e9),)
        )
        directory = EpochDirectory()
        sim, transport, deliveries, give_ups = make_stack(
            plan, directory=directory
        )
        transport.publish(0, source=0, targets=[2])
        # The takeover happens while the delivery is pending.
        sim.schedule(5.0, lambda: directory.advance(2, 3, epoch=1))
        sim.run()
        assert deliveries == [(0, 3)]
        assert not give_ups
        assert transport.stats.redirected == 1
        assert transport.stats.gave_up == 0

    def test_redirect_resets_the_retry_budget(self):
        # Burn attempts against the dead node first: with max_attempts
        # 4 nearly exhausted, a post-redirect delivery only succeeds
        # because the budget restarts at the successor.
        plan = FaultPlan(
            seed=5, crashes=(BrokerCrash(2, start=0.0, end=1e9),)
        )
        directory = EpochDirectory()
        sim, transport, deliveries, give_ups = make_stack(
            plan, directory=directory
        )
        transport.publish(0, source=0, targets=[2])
        sim.schedule(65.0, lambda: directory.advance(2, 3, epoch=1))
        sim.run()
        assert deliveries == [(0, 3)]
        assert not give_ups
        pending = transport._pending[(0, 3)]
        assert pending.acked
        assert pending.attempts <= 2

    def test_successor_already_tracked_drops_the_stale_slot(self):
        plan = FaultPlan(
            seed=5, crashes=(BrokerCrash(2, start=0.0, end=1e9),)
        )
        directory = EpochDirectory()
        sim, transport, deliveries, give_ups = make_stack(
            plan, directory=directory
        )
        # 3 is both a target in its own right and 2's successor.
        transport.publish(0, source=0, targets=[2, 3])
        sim.schedule(5.0, lambda: directory.advance(2, 3, epoch=1))
        sim.run()
        assert deliveries == [(0, 3)]  # exactly once, no duplicate
        assert not give_ups
        assert (0, 2) not in transport._pending

    def test_without_a_directory_the_dead_target_burns_out(self):
        plan = FaultPlan(
            seed=5, crashes=(BrokerCrash(2, start=0.0, end=1e9),)
        )
        sim, transport, deliveries, give_ups = make_stack(plan)
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert not deliveries
        assert give_ups == [(0, 2, "retry budget exhausted")]
