"""Unit tests for the deterministic fault plan / injector."""

import pytest

from repro.faults import FaultInjector, FaultPlan, FaultState
from repro.faults.plan import BrokerCrash, LinkFault, LinkOutage


class TestPlanValidation:
    def test_default_plan_is_disabled(self):
        plan = FaultPlan()
        assert not plan.enabled

    def test_any_fault_enables(self):
        assert FaultPlan(default_loss=0.1).enabled
        assert FaultPlan(default_duplicate=0.1).enabled
        assert FaultPlan(default_delay=1.0).enabled
        assert FaultPlan(link_faults=(LinkFault(0, 1, loss=0.5),)).enabled
        assert FaultPlan(outages=(LinkOutage(0, 1, 1.0, 2.0),)).enabled
        assert FaultPlan(crashes=(BrokerCrash(0, 1.0, 2.0),)).enabled

    def test_probabilities_validated(self):
        with pytest.raises(ValueError):
            FaultPlan(default_loss=1.5)
        with pytest.raises(ValueError):
            FaultPlan(default_duplicate=-0.1)
        with pytest.raises(ValueError):
            FaultPlan(default_delay=-1.0)
        with pytest.raises(ValueError):
            LinkFault(0, 1, loss=2.0)
        with pytest.raises(ValueError):
            LinkFault(0, 1, duplicate=-0.5)

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            LinkOutage(0, 1, start=5.0, end=5.0)
        with pytest.raises(ValueError):
            BrokerCrash(0, start=2.0, end=1.0)

    def test_uniform_loss_shortcut(self):
        plan = FaultPlan.uniform_loss(0.25, seed=7)
        assert plan.default_loss == 0.25
        assert plan.seed == 7


class TestWindowedFaults:
    def test_outage_window_is_half_open(self):
        injector = FaultInjector(
            FaultPlan(outages=(LinkOutage(3, 4, start=10.0, end=20.0),))
        )
        assert not injector.link_down(3, 4, 9.999)
        assert injector.link_down(3, 4, 10.0)
        assert injector.link_down(4, 3, 15.0)  # undirected
        assert not injector.link_down(3, 4, 20.0)  # restart instant

    def test_crash_window_is_half_open(self):
        injector = FaultInjector(
            FaultPlan(crashes=(BrokerCrash(7, start=5.0, end=8.0),))
        )
        assert not injector.node_down(7, 4.999)
        assert injector.node_down(7, 5.0)
        assert not injector.node_down(7, 8.0)
        assert not injector.node_down(6, 6.0)  # other nodes unaffected

    def test_transmission_fate_during_outage(self):
        injector = FaultInjector(
            FaultPlan(outages=(LinkOutage(0, 1, start=0.0, end=10.0),))
        )
        fate = injector.filter_transmission(0, 1, 5.0)
        assert fate.sent and fate.lost
        assert injector.stats.outage_drops == 1

    def test_crashed_sender_never_enters_link(self):
        injector = FaultInjector(
            FaultPlan(crashes=(BrokerCrash(0, start=0.0, end=10.0),))
        )
        fate = injector.filter_transmission(0, 1, 5.0)
        assert not fate.sent
        assert injector.stats.sender_down_drops == 1

    def test_crashed_receiver_blocks_arrival(self):
        injector = FaultInjector(
            FaultPlan(crashes=(BrokerCrash(9, start=0.0, end=10.0),))
        )
        assert injector.arrival_blocked(9, 5.0)
        assert not injector.arrival_blocked(9, 12.0)
        assert injector.stats.receiver_down_drops == 1


class TestFailureDetector:
    def test_state_at_reports_active_windows(self):
        injector = FaultInjector(
            FaultPlan(
                outages=(LinkOutage(1, 2, 10.0, 20.0),),
                crashes=(BrokerCrash(5, 15.0, 25.0),),
            )
        )
        early = injector.state_at(5.0)
        assert early.clear

        mid = injector.state_at(17.0)
        assert mid.link_dead(1, 2)
        assert mid.link_dead(2, 1)
        assert mid.node_dead(5)
        # Links touching a dead node count as dead.
        assert mid.link_dead(5, 6)

        late = injector.state_at(30.0)
        assert late.clear

    def test_permanently_lossy_link_reported_dead(self):
        injector = FaultInjector(
            FaultPlan(link_faults=(LinkFault(2, 3, loss=1.0),))
        )
        state = injector.state_at(0.0)
        assert state.link_dead(2, 3)
        # But a merely-lossy link is not dead.
        lossy = FaultInjector(
            FaultPlan(link_faults=(LinkFault(2, 3, loss=0.9),))
        )
        assert lossy.state_at(0.0).clear

    def test_none_state_is_neutral(self):
        state = FaultState.none()
        assert state.clear
        assert not state.node_dead(0)
        assert not state.link_dead(0, 1)


class TestProbabilisticStream:
    def test_same_seed_same_decisions(self):
        plan = FaultPlan(seed=42, default_loss=0.3, default_duplicate=0.2)
        a = FaultInjector(plan)
        b = FaultInjector(plan)
        fates_a = [a.filter_transmission(0, 1, float(t)) for t in range(200)]
        fates_b = [b.filter_transmission(0, 1, float(t)) for t in range(200)]
        assert fates_a == fates_b
        assert a.stats == b.stats
        assert a.stats.random_drops > 0
        assert a.stats.duplicates_injected > 0

    def test_reset_replays_the_stream(self):
        injector = FaultInjector(FaultPlan(seed=3, default_loss=0.5))
        first = [
            injector.filter_transmission(0, 1, 0.0) for _ in range(50)
        ]
        injector.reset()
        assert injector.stats.transmissions_seen == 0
        second = [
            injector.filter_transmission(0, 1, 0.0) for _ in range(50)
        ]
        assert first == second

    def test_certain_loss_needs_no_draw(self):
        injector = FaultInjector(
            FaultPlan(link_faults=(LinkFault(0, 1, loss=1.0),))
        )
        for _ in range(10):
            assert injector.filter_transmission(0, 1, 0.0).lost
        assert injector.stats.random_drops == 10

    def test_empty_plan_touches_nothing(self):
        injector = FaultInjector(FaultPlan())
        for t in range(100):
            fate = injector.filter_transmission(0, 1, float(t))
            assert fate.sent and not fate.lost
            assert fate.copies == 1 and fate.extra_delay == 0.0
        assert injector.stats.total_drops == 0
        assert injector.stats.duplicates_injected == 0
        assert injector.stats.delays_injected == 0

    def test_delay_injection_bounded(self):
        injector = FaultInjector(FaultPlan(seed=1, default_delay=2.5))
        for _ in range(50):
            fate = injector.filter_transmission(0, 1, 0.0)
            assert 0.0 <= fate.extra_delay < 2.5
        assert injector.stats.delays_injected == 50

    def test_per_link_fault_overrides_defaults(self):
        injector = FaultInjector(
            FaultPlan(
                seed=5,
                default_loss=0.0,
                link_faults=(LinkFault(0, 1, loss=1.0),),
            )
        )
        assert injector.filter_transmission(0, 1, 0.0).lost
        assert not injector.filter_transmission(2, 3, 0.0).lost


class TestValidationMessages:
    CASES = [
        (lambda: LinkFault(0, 1, loss=2.0),
         "LinkFault: loss must lie in [0, 1] (got 2.0)"),
        (lambda: LinkFault(0, 1, duplicate=-0.1),
         "LinkFault: duplicate must lie in [0, 1] (got -0.1)"),
        (lambda: LinkFault(0, 1, delay=-1.0),
         "LinkFault: delay must be non-negative (got -1.0)"),
        (lambda: LinkOutage(0, 1, 5.0, 5.0),
         "LinkOutage: window must satisfy start < end "
         "(got [5.0, 5.0): a zero-length window never activates)"),
        (lambda: BrokerCrash(0, 9.0, 2.0),
         "BrokerCrash: window must satisfy start < end "
         "(got [9.0, 2.0): the window is inverted)"),
        (lambda: FaultPlan(default_loss=1.5),
         "FaultPlan: default_loss must lie in [0, 1] (got 1.5)"),
        (lambda: FaultPlan(default_duplicate=1.5),
         "FaultPlan: default_duplicate must lie in [0, 1] (got 1.5)"),
        (lambda: FaultPlan(default_delay=-2.0),
         "FaultPlan: default_delay must be non-negative (got -2.0)"),
    ]

    def test_messages_name_type_and_got_value(self):
        for call, expected in self.CASES:
            with pytest.raises(ValueError) as excinfo:
                call()
            assert str(excinfo.value) == expected

    def test_validation_survives_python_O(self):
        # Duration/probability validation must hold even when asserts
        # are stripped by ``python -O``.
        import os
        import subprocess
        import sys

        program = (
            "from repro.faults.plan import (\n"
            "    BrokerCrash, FaultPlan, LinkFault, LinkOutage)\n"
            "assert False  # proves -O is active: this must not raise\n"
            "cases = [\n"
            "    (lambda: LinkFault(0, 1, loss=2.0), 'LinkFault:'),\n"
            "    (lambda: LinkFault(0, 1, delay=-1.0), 'LinkFault:'),\n"
            "    (lambda: LinkOutage(0, 1, 5.0, 5.0), 'LinkOutage:'),\n"
            "    (lambda: BrokerCrash(0, 9.0, 2.0), 'BrokerCrash:'),\n"
            "    (lambda: FaultPlan(default_loss=1.5), 'FaultPlan:'),\n"
            "    (lambda: FaultPlan(default_delay=-2.0), 'FaultPlan:'),\n"
            "]\n"
            "for call, prefix in cases:\n"
            "    try:\n"
            "        call()\n"
            "    except ValueError as error:\n"
            "        if not str(error).startswith(prefix):\n"
            "            raise SystemExit(f'wrong message: {error}')\n"
            "    else:\n"
            "        raise SystemExit('ValueError not raised under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", program],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"


class TestBrokerKills:
    def test_kill_is_permanent(self):
        from repro.faults.plan import BrokerKill

        injector = FaultInjector(
            FaultPlan(broker_kills=(BrokerKill(node=4, at=100.0),))
        )
        assert not injector.node_down(4, 99.999)
        assert injector.node_down(4, 100.0)
        assert injector.node_down(4, 1e9)  # never restarts
        assert injector.node_killed(4, 100.0)
        assert not injector.node_killed(4, 50.0)
        assert not injector.node_killed(5, 1e9)

    def test_earliest_kill_wins(self):
        from repro.faults.plan import BrokerKill

        injector = FaultInjector(
            FaultPlan(
                broker_kills=(
                    BrokerKill(node=4, at=200.0),
                    BrokerKill(node=4, at=50.0),
                )
            )
        )
        assert injector.node_down(4, 60.0)

    def test_killed_nodes_appear_in_the_fault_state(self):
        from repro.faults.plan import BrokerKill

        injector = FaultInjector(
            FaultPlan(broker_kills=(BrokerKill(node=4, at=10.0),))
        )
        assert 4 not in injector.state_at(9.0).dead_nodes
        state = injector.state_at(10.0)
        assert 4 in state.dead_nodes
        assert state.link_dead(4, 7)  # any incident link counts as dead

    def test_kills_enable_the_plan(self):
        from repro.faults.plan import BrokerKill

        assert FaultPlan(broker_kills=(BrokerKill(node=1, at=0.0),)).enabled

    def test_kill_validation(self):
        from repro.faults.plan import BrokerKill

        with pytest.raises(ValueError):
            BrokerKill(node=1, at=-0.5)
