"""Crash/outage window edges: half-open ``[start, end)``, validated loudly.

The crash-recovery harness schedules its crash callback at ``start``
and its recovery callback at ``end``; these tests pin the window
semantics those callbacks assume — down *at* ``start``, up again *at*
``end`` — and that zero-length/inverted windows are rejected even
under ``python -O``.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.faults import BrokerCrash, FaultInjector, FaultPlan, LinkOutage


class TestWindowEdges:
    def test_broker_crash_is_half_open(self):
        window = BrokerCrash(node=3, start=10.0, end=20.0)
        assert not window.active(10.0 - 1e-9)
        assert window.active(10.0)          # down exactly at start
        assert window.active(20.0 - 1e-9)   # still down just before end
        assert not window.active(20.0)      # up exactly at end
        assert not window.active(20.0 + 1e-9)

    def test_link_outage_is_half_open(self):
        window = LinkOutage(u=0, v=1, start=5.0, end=6.0)
        assert window.active(5.0)
        assert not window.active(6.0)

    def test_injector_node_down_at_edges(self):
        plan = FaultPlan(
            seed=1, crashes=(BrokerCrash(node=4, start=10.0, end=20.0),)
        )
        injector = FaultInjector(plan)
        assert not injector.node_down(4, 9.999)
        assert injector.node_down(4, 10.0)
        assert injector.node_down(4, 15.0)
        assert not injector.node_down(4, 20.0)
        assert not injector.node_down(5, 15.0)  # other nodes unaffected

    def test_adjacent_windows_leave_no_gap_and_no_overlap(self):
        plan = FaultPlan(
            seed=1,
            crashes=(
                BrokerCrash(node=4, start=10.0, end=20.0),
                BrokerCrash(node=4, start=20.0, end=30.0),
            ),
        )
        injector = FaultInjector(plan)
        # Back-to-back windows behave as one continuous outage: at the
        # shared edge exactly one window claims the instant.
        assert injector.node_down(4, 19.999)
        assert injector.node_down(4, 20.0)
        assert injector.node_down(4, 29.999)
        assert not injector.node_down(4, 30.0)


class TestWindowValidation:
    @pytest.mark.parametrize("cls, args", [
        (BrokerCrash, {"node": 0}),
        (LinkOutage, {"u": 0, "v": 1}),
    ])
    def test_zero_length_window_is_rejected(self, cls, args):
        with pytest.raises(ValueError, match="zero-length window"):
            cls(start=5.0, end=5.0, **args)

    @pytest.mark.parametrize("cls, args", [
        (BrokerCrash, {"node": 0}),
        (LinkOutage, {"u": 0, "v": 1}),
    ])
    def test_inverted_window_is_rejected(self, cls, args):
        with pytest.raises(ValueError, match="inverted"):
            cls(start=9.0, end=2.0, **args)

    def test_zero_length_rejection_survives_python_O(self):
        # The guard must be a plain raise, not an assert: ``python -O``
        # strips asserts, and a silently-accepted zero-length window
        # would make a crash schedule a recovery at the same instant.
        program = (
            "from repro.faults.plan import BrokerCrash, LinkOutage\n"
            "assert False  # proves -O is active: this must not raise\n"
            "for cls, kwargs in [\n"
            "    (BrokerCrash, {'node': 0}),\n"
            "    (LinkOutage, {'u': 0, 'v': 1}),\n"
            "]:\n"
            "    try:\n"
            "        cls(start=5.0, end=5.0, **kwargs)\n"
            "    except ValueError as error:\n"
            "        if 'zero-length window' not in str(error):\n"
            "            raise SystemExit(f'wrong message: {error}')\n"
            "    else:\n"
            "        raise SystemExit('ValueError not raised under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", program],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stdout + result.stderr
        assert result.stdout.strip() == "OK"
