"""Unit tests for the reliable ack/retry/dedup transport."""

from types import SimpleNamespace

import networkx as nx
import pytest

from repro.faults import (
    FailureReason,
    FaultInjector,
    FaultPlan,
    ReliableTransport,
    RetryConfig,
)
from repro.faults.plan import BrokerCrash, LinkFault
from repro.network.routing import RoutingTable
from repro.simulation import DiscreteEventSimulator
from repro.simulation.packet_network import PacketNetwork


def diamond_graph():
    """0 —1— 1 with a cheap (via 2) and an expensive (via 3) route to 4—5.

    Shortest path 0→5 is 0-1-2-4-5 (cost 4); killing link (2, 4)
    leaves the pricier 0-1-3-4-5 (cost 12) as the only survivor.
    """
    g = nx.Graph()
    g.add_edge(0, 1, cost=1.0)
    g.add_edge(1, 2, cost=1.0)
    g.add_edge(1, 3, cost=5.0)
    g.add_edge(2, 4, cost=1.0)
    g.add_edge(3, 4, cost=5.0)
    g.add_edge(4, 5, cost=1.0)
    return g


def make_stack(plan, config=None, hop_retries=0, graph=None, **transport_kwargs):
    """(simulator, network, transport, deliveries) over the diamond."""
    g = graph if graph is not None else diamond_graph()
    simulator = DiscreteEventSimulator()
    injector = FaultInjector(plan)
    network = PacketNetwork(
        SimpleNamespace(graph=g),
        simulator,
        routing=RoutingTable(g),
        injector=injector,
        hop_retries=hop_retries,
    )
    deliveries = []
    give_ups = []
    transport = ReliableTransport(
        network,
        config=config
        or RetryConfig(
            ack_timeout=30.0,
            backoff=2.0,
            max_jitter=0.5,
            max_attempts=5,
            reroute_after=2,
        ),
        seed=plan.seed + 1,
        detector=injector,
        graph=g,
        on_deliver=lambda target, key, time: deliveries.append(
            (key, target, time)
        ),
        on_give_up=lambda target, key, reason: give_ups.append(
            (key, target, reason)
        ),
        **transport_kwargs,
    )
    return simulator, network, transport, deliveries, give_ups


class TestHappyPath:
    def test_lossless_delivery_no_retries(self):
        sim, _net, transport, deliveries, give_ups = make_stack(FaultPlan())
        transport.publish(0, source=0, targets=[2, 5])
        sim.run()
        assert sorted(d[:2] for d in deliveries) == [(0, 2), (0, 5)]
        assert transport.stats.retries == 0
        assert transport.stats.acked == 2
        assert transport.unacked() == []
        assert not give_ups

    def test_self_delivery_needs_no_network(self):
        sim, net, transport, deliveries, _ = make_stack(FaultPlan())
        transport.publish(4, source=2, targets=[2])
        sim.run()
        assert deliveries == [(4, 2, 0.0)]
        assert net.log.transmissions == 0
        assert transport.stats.acked == 1


class TestLossyExactlyOnce:
    def test_retries_recover_random_loss(self):
        plan = FaultPlan(seed=8, default_loss=0.2)
        config = RetryConfig(
            ack_timeout=15.0, backoff=1.5, max_jitter=0.5, max_attempts=40
        )
        sim, _net, transport, deliveries, give_ups = make_stack(plan, config)
        for key in range(20):
            transport.publish(key, source=0, targets=[2, 5])
        sim.run()
        assert not give_ups
        assert transport.unacked() == []
        # Every (message, target) delivered to the app exactly once.
        assert sorted(d[:2] for d in deliveries) == sorted(
            (key, t) for key in range(20) for t in (2, 5)
        )
        assert transport.stats.retries > 0
        assert transport.stats.duplicates_suppressed > 0  # lost-ack retries

    def test_injected_duplication_is_suppressed(self):
        # Acceptance criterion: duplicate suppression exercised by a
        # test that injects duplication directly.
        plan = FaultPlan(seed=9, default_duplicate=1.0)
        sim, net, transport, deliveries, _ = make_stack(plan)
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert net.injector.stats.duplicates_injected > 0
        assert transport.stats.duplicates_suppressed > 0
        # ... but the application saw the message exactly once.
        assert [d[:2] for d in deliveries] == [(0, 5)]

    def test_rerun_is_bit_identical(self):
        plan = FaultPlan(seed=21, default_loss=0.25)

        def run_once():
            sim, net, transport, deliveries, give_ups = make_stack(
                plan,
                RetryConfig(
                    ack_timeout=10.0,
                    backoff=1.5,
                    max_jitter=0.5,
                    max_attempts=30,
                ),
            )
            for key in range(10):
                transport.publish(key, source=0, targets=[2, 4, 5])
            finished = sim.run()
            return (
                deliveries,
                give_ups,
                finished,
                net.log.transmissions,
                transport.stats,
            )

        assert run_once() == run_once()


class TestBudgetAndReroute:
    def test_budget_exhaustion_is_loud(self):
        # A permanently dead access link with no alternative: the
        # transport must give up after exactly max_attempts and say so.
        g = nx.Graph()
        g.add_edge(0, 1, cost=1.0)
        g.add_edge(1, 2, cost=1.0)
        plan = FaultPlan(seed=2, link_faults=(LinkFault(1, 2, loss=1.0),))
        sim, _net, transport, _deliveries, give_ups = make_stack(
            plan, graph=g
        )
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert give_ups == [(0, 2, "retry budget exhausted")]
        assert transport.failed() == [(0, 2)]
        assert transport.stats.gave_up == 1
        # max_attempts=5 data sends: 1 first pass + 4 retries.
        assert transport.stats.retries == 4

    def test_reroute_around_permanently_dead_link(self):
        # 100% loss on the cheap path: the failure detector reports the
        # link dead, and retries fall back to the surviving route.
        plan = FaultPlan(seed=3, link_faults=(LinkFault(2, 4, loss=1.0),))
        sim, _net, transport, deliveries, give_ups = make_stack(plan)
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert not give_ups
        assert [d[:2] for d in deliveries] == [(0, 5)]
        assert transport.stats.reroutes > 0

    def test_crash_window_then_restart_recovers(self):
        # Node 4 (the only junction before the subscriber) is down for
        # the first attempts; a retry after restart must succeed within
        # the budget, without any reroute being possible.
        plan = FaultPlan(seed=4, crashes=(BrokerCrash(4, 0.0, 25.0),))
        sim, _net, transport, deliveries, give_ups = make_stack(plan)
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert not give_ups
        assert [d[:2] for d in deliveries] == [(0, 5)]
        assert transport.stats.retries > 0
        delivered_at = deliveries[0][2]
        assert delivered_at >= 25.0  # only after the restart


class TestRetryConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryConfig(ack_timeout=0.0)
        with pytest.raises(ValueError):
            RetryConfig(backoff=0.5)
        with pytest.raises(ValueError):
            RetryConfig(max_jitter=-1.0)
        with pytest.raises(ValueError):
            RetryConfig(max_attempts=0)
        with pytest.raises(ValueError):
            RetryConfig(reroute_after=0)

    def test_backoff_schedule(self):
        config = RetryConfig(ack_timeout=10.0, backoff=2.0)
        assert config.timeout_for(1) == 10.0
        assert config.timeout_for(2) == 20.0
        assert config.timeout_for(3) == 40.0

    def test_for_network_scales_with_diameter(self):
        g = diamond_graph()
        sim = DiscreteEventSimulator()
        network = PacketNetwork(
            SimpleNamespace(graph=g), sim, routing=RoutingTable(g)
        )
        config = RetryConfig.for_network(network, max_attempts=9)
        assert config.ack_timeout > 2.0 * network.routing.diameter()
        assert config.max_attempts == 9

    def test_jitter_is_deterministic_and_bounded(self):
        g = diamond_graph()
        sim = DiscreteEventSimulator()
        network = PacketNetwork(
            SimpleNamespace(graph=g), sim, routing=RoutingTable(g)
        )
        a = ReliableTransport(network, seed=5)
        b = ReliableTransport(network, seed=5)
        for key in range(5):
            for attempt in range(1, 4):
                ja = a._jitter(key, 5, attempt)
                assert ja == b._jitter(key, 5, attempt)
                assert 0.0 <= ja < a.config.max_jitter
        c = ReliableTransport(network, seed=6)
        assert a._jitter(0, 5, 1) != c._jitter(0, 5, 1)


class TestFailureReasons:
    """Give-ups carry a structured reason code (the DLQ's input)."""

    def test_timeout_exhaustion_is_coded_timeout(self):
        g = nx.Graph()
        g.add_edge(0, 1, cost=1.0)
        g.add_edge(1, 2, cost=1.0)
        plan = FaultPlan(seed=2, link_faults=(LinkFault(1, 2, loss=1.0),))
        sim, _net, transport, _deliveries, give_ups = make_stack(
            plan, graph=g
        )
        transport.publish(0, source=0, targets=[2])
        sim.run()
        ((_key, _target, reason),) = give_ups
        assert isinstance(reason, FailureReason)
        assert reason.code == FailureReason.TIMEOUT == "timeout"
        # It still behaves as the plain string older consumers expect.
        assert reason == "retry budget exhausted"

    def test_nack_exhaustion_is_coded_nack(self):
        sim, _net, transport, deliveries, give_ups = make_stack(
            FaultPlan(), acceptor=lambda target, key, time: False
        )
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert deliveries == []
        ((_key, _target, reason),) = give_ups
        assert reason.code == FailureReason.NACK
        assert "nack" in str(reason)
        assert transport.stats.nacks_sent >= 1
        assert transport.stats.nacks_received >= 1

    def test_breaker_short_circuit_is_coded_breaker_open(self):
        from repro.overload import BreakerBoard

        breakers = BreakerBoard()
        for _ in range(3):  # default config: 3 strikes open the breaker
            breakers.record_failure(5, 0.0)
        sim, _net, transport, deliveries, give_ups = make_stack(
            FaultPlan(), breakers=breakers
        )
        transport.publish(0, source=0, targets=[2, 5])
        sim.run()
        # The open breaker fast-fails 5 without spending any attempts;
        # 2 is unaffected.
        assert [d[:2] for d in deliveries] == [(0, 2)]
        ((_key, target, reason),) = give_ups
        assert target == 5
        assert reason.code == FailureReason.BREAKER_OPEN
        assert transport.stats.short_circuited == 1

    def test_nacked_attempt_is_not_marked_seen(self):
        # A rejected delivery must stay deliverable: only the *offer*
        # was refused, so a later attempt the acceptor admits goes
        # through — rejecting via dedup would swallow it forever.
        offers = {"n": 0}

        def accept_second_offer(target, key, time):
            offers["n"] += 1
            return offers["n"] > 1

        sim, _net, transport, deliveries, give_ups = make_stack(
            FaultPlan(), acceptor=accept_second_offer
        )
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert not give_ups
        assert [d[:2] for d in deliveries] == [(0, 5)]
        assert transport.stats.nacks_sent == 1


class TestCancelTarget:
    def test_cancel_drops_pending_without_a_give_up(self):
        # A detached session's in-flight deliveries are withdrawn
        # silently: no give-up callback, no breaker feedback.
        g = nx.Graph()
        g.add_edge(0, 1, cost=1.0)
        g.add_edge(1, 2, cost=1.0)
        plan = FaultPlan(seed=2, link_faults=(LinkFault(1, 2, loss=1.0),))
        sim, _net, transport, deliveries, give_ups = make_stack(
            plan, graph=g
        )
        transport.publish(0, source=0, targets=[2])
        cancelled = transport.cancel_target(2)
        sim.run()
        assert cancelled == [0]
        assert transport.stats.cancelled == 1
        assert deliveries == []
        assert give_ups == []
        assert transport.unacked() == []

    def test_cancel_keeps_receiver_dedup_state(self):
        sim, _net, transport, deliveries, _give_ups = make_stack(FaultPlan())
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert [d[:2] for d in deliveries] == [(0, 2)]
        transport.cancel_target(2)
        # Re-sending the same key after a cancel is suppressed by the
        # surviving dedup state — acked, but never re-delivered.
        transport.publish(0, source=0, targets=[2])
        sim.run()
        assert [d[:2] for d in deliveries] == [(0, 2)]
        assert transport.stats.acked == 2
