"""Chaos harness + delivery-guarantee verifier tests.

Includes the PR's acceptance scenario: 500 events over a ~100-broker
topology with 10% link loss and two broker crash/restart windows,
exactly-once with the reliable protocol, demonstrable loss without it.
"""

from types import SimpleNamespace

import networkx as nx
import numpy as np
import pytest

from repro.core import Event, ThresholdPolicy
from repro.core.distribution import DeliveryMethod
from repro.faults import ChaosSimulation, FaultInjector, FaultPlan, FaultState
from repro.faults.verifier import (
    DeliveryLedger,
    build_chaos_plan,
    build_chaos_testbed,
)
from repro.network.routing import RoutingTable
from repro.simulation import DiscreteEventSimulator
from repro.simulation.packet_network import PacketNetwork
from repro.workload import PublicationGenerator


@pytest.fixture(scope="module")
def chaos_setup():
    """The acceptance testbed + workload, built once."""
    broker, density = build_chaos_testbed(seed=2003, subscriptions=300)
    broker = broker.with_policy(ThresholdPolicy(0.15))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=2012
    ).generate(500)
    plan = build_chaos_plan(
        broker.topology,
        seed=2003,
        loss=0.1,
        crashes=2,
        crash_length=150.0,
        horizon=500.0,
    )
    return broker, points, publishers, plan


class TestDeliveryLedger:
    def test_tracks_missing_and_duplicates(self):
        ledger = DeliveryLedger()
        ledger.expect(0, [5, 6], published_at=0.0)
        ledger.expect(1, [5], published_at=1.0)
        ledger.record(0, 5, 2.0)
        ledger.record(0, 5, 3.0)  # duplicate
        assert ledger.expected_total == 3
        assert ledger.delivered_distinct == 1
        assert ledger.duplicate_deliveries == 1
        assert ledger.latencies == [2.0]
        missing = ledger.missing("why")
        assert missing == [(0, 6, "why"), (1, 5, "why")]

    def test_fail_reasons_override_default(self):
        ledger = DeliveryLedger()
        ledger.expect(0, [7], published_at=0.0)
        ledger.fail_reasons[(0, 7)] = "retry budget exhausted"
        assert ledger.missing("default") == [
            (0, 7, "retry budget exhausted")
        ]


class TestAcceptanceScenario:
    def test_reliable_run_is_exactly_once(self, chaos_setup):
        broker, points, publishers, plan = chaos_setup
        report = ChaosSimulation(broker, plan, reliable=True).run(
            points, publishers
        )
        assert report.expected > 1000  # a real workload, not a no-op
        assert report.exactly_once
        assert report.delivered == report.expected
        assert report.duplicate_deliveries == 0
        assert not report.missing
        # Faults actually bit: drops happened and were recovered.
        assert report.fault_stats.random_drops > 0
        assert (
            report.fault_stats.sender_down_drops
            + report.fault_stats.receiver_down_drops
            > 0
        )
        assert report.link_retransmissions > 0
        assert report.reliability is not None
        assert report.reliability.retries > 0
        assert report.reliability.gave_up == 0

    def test_unreliable_run_demonstrably_loses(self, chaos_setup):
        broker, points, publishers, plan = chaos_setup
        report = ChaosSimulation(broker, plan, reliable=False).run(
            points, publishers
        )
        assert not report.exactly_once
        assert report.missing
        assert report.delivered_fraction < 1.0
        assert all(
            reason == "lost (no retransmission)"
            for _, _, reason in report.missing
        )

    def test_chaos_run_is_reproducible(self, chaos_setup):
        broker, points, publishers, plan = chaos_setup
        small_points, small_publishers = points[:80], publishers[:80]

        def run_once():
            report = ChaosSimulation(broker, plan, reliable=True).run(
                small_points, small_publishers
            )
            return (
                report.delivered,
                report.transmissions,
                report.link_retransmissions,
                report.finished_at,
                report.fault_stats,
                report.reliability,
            )

        assert run_once() == run_once()


class TestZeroCostWhenDisabled:
    def test_empty_plan_network_is_bit_identical_to_no_injector(self):
        # Same topology, same workload: an attached-but-empty injector
        # must reproduce the injector-free substrate exactly.
        g = nx.Graph()
        g.add_edge(0, 1, cost=1.5)
        g.add_edge(1, 2, cost=2.5)
        g.add_edge(1, 3, cost=3.0)
        g.add_edge(3, 4, cost=1.0)

        def run_network(injector):
            sim = DiscreteEventSimulator()
            net = PacketNetwork(
                SimpleNamespace(graph=g),
                sim,
                routing=RoutingTable(g),
                injector=injector,
            )
            arrivals = []
            for target in (2, 4):
                for _ in range(3):
                    net.send_unicast(
                        0,
                        target,
                        lambda n, t: arrivals.append((n, t)),
                    )
            net.send_multicast(0, [2, 3, 4], lambda n, t: arrivals.append((n, t)))
            finished = sim.run()
            return (
                arrivals,
                finished,
                net.log.transmissions,
                net.log.queueing_delay,
                net.log.max_link_queue,
                net.log.retransmissions,
            )

        baseline = run_network(None)
        with_empty = run_network(FaultInjector(FaultPlan()))
        assert baseline == with_empty

    def test_neutral_fault_state_reproduces_broker_costs(self, chaos_setup):
        # broker.publish(event, faults=FaultState.none()) must charge
        # bit-for-bit what the fault-free path charges.
        broker, points, publishers, _ = chaos_setup
        neutral = FaultState.none()
        for sequence in range(100):
            event = Event.create(
                sequence, int(publishers[sequence]), points[sequence]
            )
            plain = broker.publish(event)
            faulted = broker.publish(event, faults=neutral)
            assert plain.scheme_cost == faulted.scheme_cost
            assert plain.unicast_cost == faulted.unicast_cost
            assert plain.ideal_cost == faulted.ideal_cost
            assert faulted.repaired == ()
            if plain.method is not DeliveryMethod.NOT_SENT:
                assert faulted.undeliverable == ()


class TestDegradedDelivery:
    def test_dead_broker_forces_repair_and_extra_cost(self, chaos_setup):
        broker, points, publishers, _ = chaos_setup
        # Find a multicast event, kill a transit node on its tree.
        for sequence in range(len(points)):
            event = Event.create(
                sequence, int(publishers[sequence]), points[sequence]
            )
            record = broker.publish(event)
            if record.method is not DeliveryMethod.MULTICAST:
                continue
            q = broker.partition.locate(event.point)
            members = broker.partition.group(q).members
            tree = broker.costs.routing.tree_edges(event.publisher, members)
            transit = set(broker.topology.all_transit_nodes())
            on_tree = [
                n for e in tree for n in e if n in transit
            ]
            if not on_tree:
                continue
            state = FaultState(
                time=0.0,
                dead_nodes=frozenset({on_tree[0]}),
                dead_links=frozenset(),
            )
            degraded_record = broker.publish(event, faults=state)
            # Serving everyone around a dead relay can't be cheaper
            # than the healthy tree.
            assert degraded_record.scheme_cost >= record.scheme_cost or (
                degraded_record.undeliverable
            )
            return
        pytest.fail("no multicast event with a transit relay found")


class TestPlanBuilders:
    def test_build_chaos_plan_victims_are_transit(self, chaos_setup):
        broker, _, _, plan = chaos_setup
        transit = set(broker.topology.all_transit_nodes())
        assert len(plan.crashes) == 2
        for crash in plan.crashes:
            assert crash.node in transit
            assert 0.0 < crash.start < crash.end
        assert plan.default_loss == 0.1

    def test_build_chaos_plan_deterministic(self, chaos_setup):
        broker, _, _, plan = chaos_setup
        again = build_chaos_plan(
            broker.topology,
            seed=2003,
            loss=0.1,
            crashes=2,
            crash_length=150.0,
            horizon=500.0,
        )
        assert again == plan

    def test_too_many_crashes_rejected(self, chaos_setup):
        broker, _, _, _ = chaos_setup
        with pytest.raises(ValueError, match="cannot crash"):
            build_chaos_plan(broker.topology, crashes=10_000)

    def test_testbed_is_chaos_scale(self, chaos_setup):
        broker, _, _, _ = chaos_setup
        assert 80 <= broker.topology.num_nodes <= 150
