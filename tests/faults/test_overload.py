"""Acceptance tests for the overload-protection stack under chaos.

The issue's contract, verified end to end:

- the ingress queue never exceeds its configured capacity, however
  violent the seeded burst storm;
- every published event is accounted: ``delivered + shed + expired ==
  published`` (the per-event ledger closes);
- circuit breakers isolate a permanently-dead subscriber within its
  failure budget — retries stop, later sends short-circuit;
- an identical seeded scenario run twice produces a byte-identical
  report.
"""

import dataclasses

import pytest

from repro.analysis.report import format_table
from repro.core import Event, ThresholdPolicy
from repro.faults import (
    BrokerCrash,
    FaultPlan,
    OverloadChaosSimulation,
    RetryConfig,
    build_burst_storm_times,
    build_resubscribe_storm,
    build_slow_subscriber_plan,
)
from repro.faults.verifier import build_chaos_plan, build_chaos_testbed
from repro.overload import (
    BreakerConfig,
    HealthThresholds,
    OverloadConfig,
)
from repro.workload import PublicationGenerator


@pytest.fixture(scope="module")
def testbed():
    broker, density = build_chaos_testbed(seed=5, subscriptions=120)
    broker.policy = ThresholdPolicy(0.15)
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=14
    ).generate(150)
    return broker, points, publishers


def storm_config(**overrides):
    defaults = dict(
        queue_capacity=32,
        shed_policy="drop-newest",
        service_time=0.5,
    )
    defaults.update(overrides)
    return OverloadConfig(**defaults)


class TestBurstStorm:
    def run_storm(self, testbed, **config_overrides):
        broker, points, publishers = testbed
        plan = build_chaos_plan(
            broker.topology, seed=5, loss=0.05, crashes=1, horizon=200.0
        )
        simulation = OverloadChaosSimulation(
            broker, plan, config=storm_config(**config_overrides)
        )
        times = build_burst_storm_times(len(points))
        return simulation.run(points, publishers, times), simulation

    def test_queue_never_exceeds_capacity(self, testbed):
        report, _ = self.run_storm(testbed)
        assert report.within_capacity
        assert report.peak_queue_depth <= 32
        # The storm actually saturated the broker — otherwise the
        # invariant is vacuous.
        assert report.peak_queue_depth >= 16
        assert report.shed_events > 0

    def test_every_event_accounted(self, testbed):
        report, _ = self.run_storm(testbed)
        assert report.accounted
        assert (
            report.delivered_events
            + report.shed_events
            + report.expired_events
            == report.published
            == 150
        )
        # shed_reasons is itemised and sums to the shed bucket.
        assert sum(report.shed_reasons.values()) == report.shed_events

    def test_degraded_mode_engaged_under_load(self, testbed):
        report, _ = self.run_storm(testbed)
        states = [state for _, state in report.health_transitions]
        assert "degraded" in states or "overloaded" in states
        assert report.degraded_events > 0

    def test_byte_identical_reports_on_rerun(self, testbed):
        first, _ = self.run_storm(testbed)
        second, _ = self.run_storm(testbed)
        assert dataclasses.asdict(first) == dataclasses.asdict(second)
        assert format_table(
            ("metric", "value"), first.summary_rows()
        ) == format_table(("metric", "value"), second.summary_rows())

    def test_ttl_expires_events_stuck_in_queue(self, testbed):
        report, _ = self.run_storm(
            testbed,
            shed_policy="ttl-priority",
            ttl=10.0,
            service_time=2.0,
            queue_capacity=16,
        )
        assert report.accounted
        assert report.expired_events > 0

    def test_admission_control_rejects_sustained_excess(self, testbed):
        report, _ = self.run_storm(
            testbed, admission_rate=0.5, admission_burst=4.0
        )
        assert report.accounted
        assert report.admission_rejected > 0
        assert report.shed_reasons.get("admission", 0) > 0


class TestDeadSubscriberIsolation:
    def test_breaker_trips_within_failure_budget(self, testbed):
        broker, points, publishers = testbed
        # Pick a victim guaranteed to receive traffic: the subscriber
        # interested in the most events of this workload.
        interest = {}
        for sequence, point in enumerate(points):
            event = Event.create(sequence, 0, point)
            for node in broker.engine.match(event).subscribers:
                interest[node] = interest.get(node, 0) + 1
        victim = max(interest, key=lambda node: (interest[node], -node))
        plan = FaultPlan(
            seed=5, crashes=(BrokerCrash(node=victim, start=0.0, end=1e9),)
        )
        budget = 2
        simulation = OverloadChaosSimulation(
            broker,
            plan,
            config=OverloadConfig(
                queue_capacity=64,
                breakers=BreakerConfig(
                    failure_threshold=budget, reset_timeout=1e9
                ),
            ),
        )
        # A small retry budget so give-ups land while events still
        # flow, and arrivals spaced wider than one full retry cycle so
        # attempts at the victim resolve one at a time — otherwise
        # several are already in flight when the breaker trips and the
        # budget bound is unobservable.
        simulation.transport.config = RetryConfig.for_network(
            simulation.network, max_attempts=2
        )
        cycle = sum(
            simulation.transport.config.timeout_for(a) for a in (1, 2)
        )
        times = [i * (2.0 * cycle) for i in range(len(points))]
        report = simulation.run(points, publishers, times)

        assert report.accounted
        assert victim in report.open_targets
        reasons = [
            reason
            for (key, target), reason in simulation.ledger.fail_reasons.items()
            if target == victim
        ]
        exhausted = sum(r == "retry budget exhausted" for r in reasons)
        short_circuited = sum(
            r == "short-circuited (breaker open)" for r in reasons
        )
        # The breaker tripped after exactly its failure budget of
        # full-retry give-ups; everything later failed fast.
        assert exhausted == budget
        assert short_circuited > 0
        assert report.short_circuited == short_circuited

    def test_slow_subscriber_plan_is_deterministic(self, testbed):
        broker, _, _ = testbed
        first = build_slow_subscriber_plan(broker.topology, seed=9)
        second = build_slow_subscriber_plan(broker.topology, seed=9)
        assert first == second


class TestDegradedDeliveryStillSound:
    def test_no_missing_deliveries_without_faults(self, testbed):
        # Permanently-degraded broker, fault-free network: the group
        # flood must still reach every interested subscriber exactly
        # once (superset delivery + receiver-side filter).
        broker, points, publishers = testbed
        simulation = OverloadChaosSimulation(
            broker,
            FaultPlan(seed=3),
            config=OverloadConfig(
                queue_capacity=256,
                thresholds=HealthThresholds(
                    degrade_high=0.02,
                    degrade_low=0.01,
                    overload_low=0.98,
                    overload_high=0.99,
                    min_dwell=1e9,
                ),
            ),
        )
        # Arrivals slightly outpace the 1/0.5 service rate, so the
        # queue visibly fills, trips DEGRADED early (2% of 256 ≈ 6
        # entries), and never comes close to shedding.
        times = [i * 0.4 for i in range(len(points))]
        report = simulation.run(points, publishers, times)
        assert report.degraded_events > 0
        assert report.accounted
        assert report.missing == []
        assert report.duplicate_deliveries == 0


class TestResubscribeStorm:
    def test_churn_mid_storm_loses_nothing(self):
        broker, density = build_chaos_testbed(
            seed=7, subscriptions=100, dynamic=True
        )
        broker.policy = ThresholdPolicy(0.15)
        points, publishers = PublicationGenerator(
            density, broker.topology.all_stub_nodes(), seed=16
        ).generate(80)
        churn = build_resubscribe_storm(broker, at=20.0, count=40, seed=7)
        assert len(churn) == 40  # one unsubscribe+resubscribe pair each
        simulation = OverloadChaosSimulation(
            broker,
            FaultPlan(seed=7),
            config=OverloadConfig(queue_capacity=64),
        )
        times = [i * 0.75 for i in range(len(points))]
        report = simulation.run(points, publishers, times, churn=churn)
        assert report.accounted
        # The storm unsubscribes and immediately resubscribes the same
        # rectangles; ledger truth is sampled at publish time, so a
        # fault-free run still delivers every expected copy.
        assert report.missing == []
        assert report.duplicate_deliveries == 0
