"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def testbed_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "testbed.json"
    code = main(
        [
            "generate",
            "--seed", "7",
            "--subscriptions", "150",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_testbed(self, testbed_file):
        from repro import load_testbed

        topology, table = load_testbed(testbed_file)
        assert topology.num_nodes > 100
        assert len(table) == 150

    def test_output_message(self, testbed_file, capsys):
        main(
            [
                "generate",
                "--seed", "8",
                "--subscriptions", "10",
                "--out", str(testbed_file.parent / "other.json"),
            ]
        )
        out = capsys.readouterr().out
        assert "10 subscriptions" in out


class TestRun:
    def test_prints_tally(self, testbed_file, capsys):
        code = main(
            [
                "run",
                "--testbed", str(testbed_file),
                "--groups", "5",
                "--events", "100",
                "--threshold", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement over unicast" in out
        assert "multicasts" in out

    @pytest.mark.parametrize("algorithm", ["forgy", "kmeans", "pairwise", "mst"])
    def test_all_algorithms_accepted(self, testbed_file, algorithm, capsys):
        code = main(
            [
                "run",
                "--testbed", str(testbed_file),
                "--algorithm", algorithm,
                "--groups", "4",
                "--events", "50",
            ]
        )
        assert code == 0


class TestTune:
    def test_prints_per_group_table(self, testbed_file, capsys):
        code = main(
            [
                "tune",
                "--testbed", str(testbed_file),
                "--groups", "5",
                "--events", "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-group thresholds" in out
        assert "oracle bound" in out


class TestDot:
    def test_exports_renderable_dot(self, testbed_file, tmp_path, capsys):
        out = tmp_path / "topo.dot"
        code = main(
            ["dot", "--testbed", str(testbed_file), "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("graph topology {")
        assert "wrote" in capsys.readouterr().out

    def test_backbone_only(self, testbed_file, tmp_path):
        out = tmp_path / "backbone.dot"
        main(
            [
                "dot",
                "--testbed", str(testbed_file),
                "--out", str(out),
                "--backbone-only",
            ]
        )
        assert "stub " in out.read_text()


class TestChaos:
    def test_reliable_run_verifies_exactly_once(self, capsys):
        code = main(
            [
                "chaos",
                "--events", "120",
                "--subscriptions", "120",
                "--crashes", "1",
                "--crash-length", "40",
            ]
        )
        out = capsys.readouterr().out
        assert "exactly-once" in out
        assert "reliable" in out
        assert code == 0  # guarantee held

    def test_unreliable_run_reports_losses(self, capsys):
        code = main(
            [
                "chaos",
                "--events", "120",
                "--subscriptions", "120",
                "--crashes", "1",
                "--crash-length", "40",
                "--unreliable",
            ]
        )
        assert code == 0  # informational mode never fails the build
        out = capsys.readouterr().out
        assert "fire-and-forget" in out
        assert "lost (no retransmission)" in out


class TestStats:
    ARGS = [
        "--events", "60",
        "--subscriptions", "120",
        "--seed", "7",
        "--loss", "0.08",
        "--crashes", "1",
        "--crash-length", "30",
    ]

    def test_prints_pipeline_metrics(self, capsys):
        code = main(["stats", *self.ARGS])
        assert code == 0  # run stayed exactly-once
        out = capsys.readouterr().out
        assert "events/sec" in out
        assert "match latency p50 (us)" in out
        assert "match latency p95 (us)" in out
        assert "match latency p99 (us)" in out
        assert "multicasts" in out
        assert "unicasts" in out
        assert "retries" in out
        assert "duplicates suppressed" in out
        assert "link traffic:" in out
        assert "bytes" in out

    def test_exports_prometheus_and_jsonl(self, tmp_path, capsys):
        import json

        metrics_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "spans.jsonl"
        code = main(
            [
                "stats",
                *self.ARGS,
                "--metrics-out", str(metrics_path),
                "--trace-out", str(trace_path),
            ]
        )
        assert code == 0
        prom = metrics_path.read_text()
        assert "# TYPE broker_events counter" in prom
        assert "# TYPE broker_match_latency_us histogram" in prom
        lines = trace_path.read_text().strip().splitlines()
        names = {json.loads(line)["name"] for line in lines}
        assert {"event", "match", "route", "deliver"} <= names


class TestTrace:
    ARGS = [
        "--events", "60",
        "--subscriptions", "120",
        "--seed", "7",
        "--loss", "0.08",
        "--crashes", "1",
        "--crash-length", "30",
    ]

    def _first_delivered_event(self, capsys):
        # Find an event that actually routed (trace has >1 span).
        import json

        for candidate in range(10):
            code = main(["trace", "--event", str(candidate), *self.ARGS])
            out = capsys.readouterr().out
            if code == 0:
                spans = [json.loads(line) for line in out.splitlines()]
                if len(spans) > 1:
                    return candidate, spans
        pytest.fail("no routed event in the first 10")

    def test_emits_well_formed_span_tree(self, capsys):
        event, spans = self._first_delivered_event(capsys)
        seen = set()
        for span in spans:
            assert span["trace_id"] == event
            assert span["parent_id"] is None or span["parent_id"] in seen
            seen.add(span["span_id"])
        assert spans[0]["name"] == "event"
        assert spans[0]["parent_id"] is None

    def test_pretty_mode(self, capsys):
        event, _ = self._first_delivered_event(capsys)
        code = main(
            ["trace", "--event", str(event), "--pretty", *self.ARGS]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("event ")
        assert "\n  " in out  # children are indented

    def test_out_of_range_event_rejected(self, capsys):
        code = main(["trace", "--event", "999", *self.ARGS])
        assert code == 2
        assert "outside workload" in capsys.readouterr().err

    def test_deterministic_across_runs(self, capsys):
        event, first = self._first_delivered_event(capsys)
        main(["trace", "--event", str(event), *self.ARGS])
        second = capsys.readouterr().out
        import json

        assert [json.dumps(s, sort_keys=True, separators=(",", ":"))
                for s in first] == second.strip().splitlines()


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_modes_rejected(self, testbed_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--testbed", str(testbed_file),
                    "--modes", "7",
                ]
            )


class TestLint:
    """The `repro lint` verb: rules, formats, baseline lifecycle."""

    @pytest.fixture()
    def violation_tree(self, tmp_path):
        scratch = tmp_path / "src" / "repro" / "core"
        scratch.mkdir(parents=True)
        (scratch / "sick.py").write_text(
            "import time\n"
            "import random\n"
            "a = time.time()\n"
            "b = random.random()\n"
        )
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        (tmp_path / "ok.py").write_text(
            "from __future__ import annotations\n\nx: int = 1\n"
        )
        code = main(["lint", str(tmp_path), "--baseline", "skip"])
        assert code == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_violations_exit_one_and_name_the_rule(
        self, violation_tree, capsys
    ):
        code = main(["lint", str(violation_tree), "--baseline", "skip"])
        assert code == 1
        out = capsys.readouterr().out
        assert "DET01" in out and "DET02" in out
        assert "fix:" in out  # hints ride along

    def test_rule_flag_restricts(self, violation_tree, capsys):
        code = main(
            [
                "lint", str(violation_tree),
                "--rule", "DET02",
                "--baseline", "skip",
            ]
        )
        assert code == 1
        out = capsys.readouterr().out
        assert "DET02" in out and "DET01" not in out

    def test_unknown_rule_exits_two(self, violation_tree, capsys):
        code = main(
            ["lint", str(violation_tree), "--rule", "NOPE99"]
        )
        assert code == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_json_format_is_machine_readable(self, violation_tree, capsys):
        import json

        code = main(
            [
                "lint", str(violation_tree),
                "--format", "json",
                "--baseline", "skip",
            ]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["counts"]["per_rule"] == {"DET01": 1, "DET02": 1}
        rules = [f["rule"] for f in payload["findings"]]
        assert rules == ["DET01", "DET02"]
        assert all("fingerprint" in f for f in payload["findings"])

    def test_baseline_write_then_apply_round_trip(
        self, violation_tree, tmp_path, capsys
    ):
        baseline_file = tmp_path / "baseline.json"
        code = main(
            [
                "lint", str(violation_tree),
                "--baseline", "write",
                "--baseline-file", str(baseline_file),
            ]
        )
        assert code == 0
        assert "2 grandfathered" in capsys.readouterr().out
        # With the baseline applied the same tree goes green...
        code = main(
            [
                "lint", str(violation_tree),
                "--baseline-file", str(baseline_file),
            ]
        )
        assert code == 0
        assert "2 baselined" in capsys.readouterr().out
        # ...but a fresh violation still fails.
        sick = violation_tree / "src" / "repro" / "core" / "sick.py"
        sick.write_text(sick.read_text() + "c = time.monotonic()\n")
        code = main(
            [
                "lint", str(violation_tree),
                "--baseline-file", str(baseline_file),
            ]
        )
        assert code == 1

    def test_list_rules_prints_catalogue(self, capsys):
        code = main(["lint", "--list-rules"])
        assert code == 0
        out = capsys.readouterr().out
        for rule_code in (
            "DET01", "DET02", "DET03", "ASSERT01",
            "ANN01", "ERR01", "IO01", "EXC01",
        ):
            assert rule_code in out
        assert "why:" in out and "fix:" in out

    def test_missing_target_exits_two(self, capsys):
        code = main(["lint", "definitely/not/a/dir"])
        assert code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_repo_gate_via_cli(self, capsys):
        # The shipped tree, the checked-in baseline, exit 0: the same
        # invocation CI runs.
        import pathlib

        repo = pathlib.Path(__file__).resolve().parents[1]
        code = main(
            [
                "lint", str(repo / "src"),
                "--baseline-file", str(repo / "lint-baseline.json"),
            ]
        )
        assert code == 0
