"""Tests for the command-line interface."""

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def testbed_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "testbed.json"
    code = main(
        [
            "generate",
            "--seed", "7",
            "--subscriptions", "150",
            "--out", str(path),
        ]
    )
    assert code == 0
    return path


class TestGenerate:
    def test_writes_loadable_testbed(self, testbed_file):
        from repro import load_testbed

        topology, table = load_testbed(testbed_file)
        assert topology.num_nodes > 100
        assert len(table) == 150

    def test_output_message(self, testbed_file, capsys):
        main(
            [
                "generate",
                "--seed", "8",
                "--subscriptions", "10",
                "--out", str(testbed_file.parent / "other.json"),
            ]
        )
        out = capsys.readouterr().out
        assert "10 subscriptions" in out


class TestRun:
    def test_prints_tally(self, testbed_file, capsys):
        code = main(
            [
                "run",
                "--testbed", str(testbed_file),
                "--groups", "5",
                "--events", "100",
                "--threshold", "0.1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "improvement over unicast" in out
        assert "multicasts" in out

    @pytest.mark.parametrize("algorithm", ["forgy", "kmeans", "pairwise", "mst"])
    def test_all_algorithms_accepted(self, testbed_file, algorithm, capsys):
        code = main(
            [
                "run",
                "--testbed", str(testbed_file),
                "--algorithm", algorithm,
                "--groups", "4",
                "--events", "50",
            ]
        )
        assert code == 0


class TestTune:
    def test_prints_per_group_table(self, testbed_file, capsys):
        code = main(
            [
                "tune",
                "--testbed", str(testbed_file),
                "--groups", "5",
                "--events", "150",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "per-group thresholds" in out
        assert "oracle bound" in out


class TestDot:
    def test_exports_renderable_dot(self, testbed_file, tmp_path, capsys):
        out = tmp_path / "topo.dot"
        code = main(
            ["dot", "--testbed", str(testbed_file), "--out", str(out)]
        )
        assert code == 0
        text = out.read_text()
        assert text.startswith("graph topology {")
        assert "wrote" in capsys.readouterr().out

    def test_backbone_only(self, testbed_file, tmp_path):
        out = tmp_path / "backbone.dot"
        main(
            [
                "dot",
                "--testbed", str(testbed_file),
                "--out", str(out),
                "--backbone-only",
            ]
        )
        assert "stub " in out.read_text()


class TestChaos:
    def test_reliable_run_verifies_exactly_once(self, capsys):
        code = main(
            [
                "chaos",
                "--events", "120",
                "--subscriptions", "120",
                "--crashes", "1",
                "--crash-length", "40",
            ]
        )
        out = capsys.readouterr().out
        assert "exactly-once" in out
        assert "reliable" in out
        assert code == 0  # guarantee held

    def test_unreliable_run_reports_losses(self, capsys):
        code = main(
            [
                "chaos",
                "--events", "120",
                "--subscriptions", "120",
                "--crashes", "1",
                "--crash-length", "40",
                "--unreliable",
            ]
        )
        assert code == 0  # informational mode never fails the build
        out = capsys.readouterr().out
        assert "fire-and-forget" in out
        assert "lost (no retransmission)" in out


class TestParser:
    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            main([])

    def test_bad_modes_rejected(self, testbed_file):
        with pytest.raises(SystemExit):
            main(
                [
                    "run",
                    "--testbed", str(testbed_file),
                    "--modes", "7",
                ]
            )
