"""Unit tests for the store-and-forward packet transport."""

import networkx as nx
import pytest

from repro.network import RoutingTable
from repro.network.topology import Topology
from repro.simulation import DiscreteEventSimulator, PacketNetwork


def line_topology():
    """0 -- 1 -- 2 -- 3 with unit costs, wrapped as a Topology."""
    graph = nx.Graph()
    for i in range(3):
        graph.add_edge(i, i + 1, cost=1.0)
    for node in graph.nodes():
        graph.nodes[node]["kind"] = "stub"
        graph.nodes[node]["block"] = 0
        graph.nodes[node]["stub"] = 0
    return Topology(
        graph=graph,
        transit_nodes=[[]],
        stub_members=[[0, 1, 2, 3]],
        stub_block=[0],
    )


def star_topology(leaves=4):
    """Hub 0 with unit-cost spokes to 1..leaves."""
    graph = nx.Graph()
    for i in range(1, leaves + 1):
        graph.add_edge(0, i, cost=1.0)
    for node in graph.nodes():
        graph.nodes[node]["kind"] = "stub"
        graph.nodes[node]["block"] = 0
        graph.nodes[node]["stub"] = 0
    return Topology(
        graph=graph,
        transit_nodes=[[]],
        stub_members=[list(range(leaves + 1))],
        stub_block=[0],
    )


@pytest.fixture()
def line():
    sim = DiscreteEventSimulator()
    network = PacketNetwork(
        line_topology(), sim, transmission_time=0.5, propagation_scale=1.0
    )
    return sim, network


class TestUnicast:
    def test_latency_is_hops_times_cost_plus_tx(self, line):
        sim, network = line
        arrivals = []
        network.send_unicast(0, 3, lambda node, t: arrivals.append((node, t)))
        sim.run()
        # 3 hops, each: 0.5 tx + 1.0 propagation -> 4.5 total.
        assert arrivals == [(3, pytest.approx(4.5))]

    def test_self_delivery_is_instant(self, line):
        sim, network = line
        arrivals = []
        network.send_unicast(2, 2, lambda node, t: arrivals.append((node, t)))
        sim.run()
        assert arrivals == [(2, 0.0)]

    def test_two_messages_serialize_on_shared_link(self):
        sim = DiscreteEventSimulator()
        network = PacketNetwork(
            star_topology(), sim, transmission_time=1.0, propagation_scale=1.0
        )
        arrivals = {}
        # Two messages from the hub to the same leaf at t=0: the second
        # waits out the first's transmission slot.
        network.send_unicast(0, 1, lambda n, t: arrivals.setdefault("a", t))
        network.send_unicast(0, 1, lambda n, t: arrivals.setdefault("b", t))
        sim.run()
        assert arrivals["a"] == pytest.approx(2.0)  # 1 tx + 1 prop
        assert arrivals["b"] == pytest.approx(3.0)  # waits 1 tx slot
        assert network.log.queueing_delay == pytest.approx(1.0)
        assert network.log.max_link_queue == pytest.approx(1.0)

    def test_opposite_directions_do_not_interfere(self):
        sim = DiscreteEventSimulator()
        network = PacketNetwork(
            line_topology(), sim, transmission_time=1.0, propagation_scale=1.0
        )
        arrivals = {}
        network.send_unicast(0, 1, lambda n, t: arrivals.setdefault("fwd", t))
        network.send_unicast(1, 0, lambda n, t: arrivals.setdefault("rev", t))
        sim.run()
        # Full-duplex: both complete in one tx + one prop.
        assert arrivals["fwd"] == pytest.approx(2.0)
        assert arrivals["rev"] == pytest.approx(2.0)
        assert network.log.queueing_delay == 0.0

    def test_transmission_count(self, line):
        sim, network = line
        network.send_unicast(0, 3, lambda n, t: None)
        sim.run()
        assert network.log.transmissions == 3


class TestMulticast:
    def test_tree_pays_shared_links_once(self, line):
        sim, network = line
        arrivals = []
        # Members 2 and 3 share the first two links; the tree carries
        # one copy over them.
        network.send_multicast(
            0, [2, 3], lambda node, t: arrivals.append((node, t))
        )
        sim.run()
        assert network.log.transmissions == 3  # edges (0,1),(1,2),(2,3)
        assert dict(arrivals)[2] == pytest.approx(3.0)
        assert dict(arrivals)[3] == pytest.approx(4.5)

    def test_source_in_members_delivered_instantly(self, line):
        sim, network = line
        arrivals = []
        network.send_multicast(
            1, [1, 3], lambda node, t: arrivals.append((node, t))
        )
        sim.run()
        assert (1, 0.0) in arrivals
        assert len(arrivals) == 2

    def test_star_fanout_serializes_at_hub(self):
        sim = DiscreteEventSimulator()
        network = PacketNetwork(
            star_topology(4), sim, transmission_time=1.0, propagation_scale=1.0
        )
        arrivals = {}
        network.send_multicast(
            0, [1, 2, 3, 4], lambda n, t: arrivals.__setitem__(n, t)
        )
        sim.run()
        # Four distinct spoke links: no shared-link queueing, but each
        # copy still pays its own transmission.
        assert sorted(arrivals.values()) == pytest.approx(
            [2.0, 2.0, 2.0, 2.0]
        )
        assert network.log.transmissions == 4

    def test_multicast_beats_unicast_storm_on_shared_path(self):
        """The headline transport effect: n unicasts re-send the shared
        path n times; the tree sends it once."""
        results = {}
        for pattern in ("unicast", "multicast"):
            sim = DiscreteEventSimulator()
            network = PacketNetwork(
                line_topology(), sim,
                transmission_time=1.0, propagation_scale=1.0,
            )
            latest = []
            if pattern == "unicast":
                for target in (1, 2, 3):
                    network.send_unicast(
                        0, target, lambda n, t: latest.append(t)
                    )
            else:
                network.send_multicast(
                    0, [1, 2, 3], lambda n, t: latest.append(t)
                )
            sim.run()
            results[pattern] = (
                network.log.transmissions,
                max(latest),
                network.log.queueing_delay,
            )
        uni_tx, uni_worst, uni_queue = results["unicast"]
        mc_tx, mc_worst, mc_queue = results["multicast"]
        assert mc_tx < uni_tx  # 3 vs 6
        assert mc_worst <= uni_worst
        assert mc_queue <= uni_queue

    def test_sparse_mode_via_rendezvous(self, line):
        """Sparse flow: publisher->RP unicast, then the shared tree."""
        sim, network = line
        arrivals = {}
        # Publisher 0, rendezvous 2, members {1, 3}.
        network.send_multicast(
            0, [1, 3], lambda n, t: arrivals.__setitem__(n, t), via=2
        )
        sim.run()
        # Leg 0->2: 2 hops x (0.5 tx + 1 prop) = 3.0.
        # Tree from 2: member 3 via one hop (+1.5), member 1 via one
        # hop back (+1.5).
        assert arrivals[3] == pytest.approx(4.5)
        assert arrivals[1] == pytest.approx(4.5)

    def test_sparse_mode_rendezvous_is_member(self, line):
        sim, network = line
        arrivals = {}
        network.send_multicast(
            0, [2, 3], lambda n, t: arrivals.__setitem__(n, t), via=2
        )
        sim.run()
        # The rendezvous member is delivered the moment the leg lands.
        assert arrivals[2] == pytest.approx(3.0)
        assert arrivals[3] == pytest.approx(4.5)

    def test_sparse_mode_source_is_rendezvous(self, line):
        sim, network = line
        arrivals = {}
        network.send_multicast(
            1, [1, 2], lambda n, t: arrivals.__setitem__(n, t), via=1
        )
        sim.run()
        assert arrivals[1] == 0.0  # self-delivery at the root
        assert arrivals[2] == pytest.approx(1.5)

    def test_sparse_costs_more_than_dense_here(self, line):
        """On the line, routing 0's message via RP 3 doubles back."""
        results = {}
        for label, via in (("dense", None), ("sparse", 3)):
            sim = DiscreteEventSimulator()
            network = PacketNetwork(
                line_topology(), sim,
                transmission_time=0.5, propagation_scale=1.0,
            )
            latest = []
            network.send_multicast(
                0, [1, 2], lambda n, t: latest.append(t), via=via
            )
            sim.run()
            results[label] = (max(latest), network.log.transmissions)
        assert results["sparse"][0] > results["dense"][0]
        assert results["sparse"][1] > results["dense"][1]

    def test_reset_links(self, line):
        sim, network = line
        network.send_unicast(0, 3, lambda n, t: None)
        sim.run()
        assert network.log.transmissions > 0
        network.reset_links()
        assert network.log.transmissions == 0
        assert not network._busy_until


class TestValidation:
    def test_parameters(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            PacketNetwork(line_topology(), sim, transmission_time=-1.0)
        with pytest.raises(ValueError):
            PacketNetwork(line_topology(), sim, propagation_scale=0.0)
