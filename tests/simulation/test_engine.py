"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation import DiscreteEventSimulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        sim = DiscreteEventSimulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_times(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.schedule(2.5, lambda: seen.append(sim.now))
        final = sim.run()
        assert seen == [2.5, 5.0]
        assert final == 5.0

    def test_nested_scheduling(self):
        sim = DiscreteEventSimulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(4.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 5.0]

    def test_schedule_at_absolute_time(self):
        sim = DiscreteEventSimulator()
        times = []
        sim.schedule_at(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [7.0]

    def test_negative_delay_rejected(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = DiscreteEventSimulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestRunUntil:
    def test_stops_before_later_events(self):
        sim = DiscreteEventSimulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(10))
        final = sim.run(until=5.0)
        assert ran == [1]
        assert final == 5.0
        assert sim.pending == 1

    def test_resume_after_partial_run(self):
        sim = DiscreteEventSimulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(10))
        sim.run(until=5.0)
        sim.run()
        assert ran == [1, 10]

    def test_until_beyond_all_events_advances_clock(self):
        sim = DiscreteEventSimulator()
        sim.schedule(1.0, lambda: None)
        final = sim.run(until=100.0)
        assert final == 100.0

    def test_counters(self):
        sim = DiscreteEventSimulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.pending == 5
        sim.run()
        assert sim.events_processed == 5
        assert sim.pending == 0
