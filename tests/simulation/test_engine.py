"""Unit tests for the discrete-event engine."""

import pytest

from repro.simulation import DiscreteEventSimulator


class TestScheduling:
    def test_events_run_in_time_order(self):
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule(3.0, lambda: order.append("c"))
        sim.schedule(1.0, lambda: order.append("a"))
        sim.schedule(2.0, lambda: order.append("b"))
        sim.run()
        assert order == ["a", "b", "c"]

    def test_same_time_is_fifo(self):
        sim = DiscreteEventSimulator()
        order = []
        for label in "abcde":
            sim.schedule(1.0, lambda l=label: order.append(l))
        sim.run()
        assert order == list("abcde")

    def test_clock_advances_to_event_times(self):
        sim = DiscreteEventSimulator()
        seen = []
        sim.schedule(5.0, lambda: seen.append(sim.now))
        sim.schedule(2.5, lambda: seen.append(sim.now))
        final = sim.run()
        assert seen == [2.5, 5.0]
        assert final == 5.0

    def test_nested_scheduling(self):
        sim = DiscreteEventSimulator()
        times = []

        def first():
            times.append(sim.now)
            sim.schedule(4.0, lambda: times.append(sim.now))

        sim.schedule(1.0, first)
        sim.run()
        assert times == [1.0, 5.0]

    def test_schedule_at_absolute_time(self):
        sim = DiscreteEventSimulator()
        times = []
        sim.schedule_at(7.0, lambda: times.append(sim.now))
        sim.run()
        assert times == [7.0]

    def test_negative_delay_rejected(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError):
            sim.schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = DiscreteEventSimulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(1.0, lambda: None)


class TestDeterminism:
    """The reproducibility guarantees fault injection relies on."""

    def test_same_time_fifo_across_schedule_flavours(self):
        # Interleaved schedule()/schedule_at() calls landing on the
        # same timestamp fire strictly in scheduling order.
        sim = DiscreteEventSimulator()
        order = []
        sim.schedule(2.0, lambda: order.append("rel-a"))
        sim.schedule_at(2.0, lambda: order.append("abs-b"))
        sim.schedule(2.0, lambda: order.append("rel-c"))
        sim.schedule_at(2.0, lambda: order.append("abs-d"))
        sim.run()
        assert order == ["rel-a", "abs-b", "rel-c", "abs-d"]

    def test_nested_same_time_events_run_after_earlier_ones(self):
        # An event scheduled *from within* a callback at the current
        # time still runs after everything scheduled before it.
        sim = DiscreteEventSimulator()
        order = []

        def outer():
            order.append("outer")
            sim.schedule(0.0, lambda: order.append("nested"))

        sim.schedule(1.0, outer)
        sim.schedule(1.0, lambda: order.append("sibling"))
        sim.run()
        assert order == ["outer", "sibling", "nested"]

    def test_seeded_cascade_is_exactly_reproducible(self):
        # A random event cascade (each callback schedules children at
        # rng-drawn offsets) replays bit-identically under the same
        # seed — the property the fault injector's single consumed-in-
        # engine-order rng stream depends on.
        import numpy as np

        def run_once(seed):
            sim = DiscreteEventSimulator()
            rng = np.random.default_rng(seed)
            trace = []

            def fire(depth):
                trace.append((round(sim.now, 12), depth, rng.random()))
                if depth < 4:
                    for _ in range(2):
                        sim.schedule(
                            float(rng.random()), lambda: fire(depth + 1)
                        )

            sim.schedule(0.0, lambda: fire(0))
            final = sim.run()
            return trace, final, sim.events_processed

        first = run_once(42)
        second = run_once(42)
        assert first == second
        assert first[2] == 2 ** 5 - 1  # full binary cascade ran

    def test_different_seeds_diverge(self):
        import numpy as np

        def trace_for(seed):
            sim = DiscreteEventSimulator()
            rng = np.random.default_rng(seed)
            times = []
            for _ in range(10):
                sim.schedule(
                    float(rng.random()), lambda: times.append(sim.now)
                )
            sim.run()
            return times

        assert trace_for(1) != trace_for(2)


class TestRunUntil:
    def test_stops_before_later_events(self):
        sim = DiscreteEventSimulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(10))
        final = sim.run(until=5.0)
        assert ran == [1]
        assert final == 5.0
        assert sim.pending == 1

    def test_resume_after_partial_run(self):
        sim = DiscreteEventSimulator()
        ran = []
        sim.schedule(1.0, lambda: ran.append(1))
        sim.schedule(10.0, lambda: ran.append(10))
        sim.run(until=5.0)
        sim.run()
        assert ran == [1, 10]

    def test_until_beyond_all_events_advances_clock(self):
        sim = DiscreteEventSimulator()
        sim.schedule(1.0, lambda: None)
        final = sim.run(until=100.0)
        assert final == 100.0

    def test_counters(self):
        sim = DiscreteEventSimulator()
        for _ in range(5):
            sim.schedule(1.0, lambda: None)
        assert sim.pending == 5
        sim.run()
        assert sim.events_processed == 5
        assert sim.pending == 0


class TestValidationMessages:
    def test_schedule_rejects_negative_delay(self):
        sim = DiscreteEventSimulator()
        with pytest.raises(ValueError) as excinfo:
            sim.schedule(-1.0, lambda: None)
        assert str(excinfo.value) == (
            "schedule: delay must be non-negative (got -1.0)"
        )

    def test_schedule_at_rejects_past_times(self):
        sim = DiscreteEventSimulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(ValueError) as excinfo:
            sim.schedule_at(2.0, lambda: None)
        assert str(excinfo.value) == (
            "schedule_at: time must be >= current time 5.0 (got 2.0)"
        )

    def test_validation_survives_python_O(self):
        # ``python -O`` strips assert statements; scheduling must not
        # rely on them for time-sanity checks.
        import os
        import subprocess
        import sys

        program = (
            "from repro.simulation import DiscreteEventSimulator\n"
            "sim = DiscreteEventSimulator()\n"
            "assert False  # proves -O is active: this must not raise\n"
            "for call, prefix in [\n"
            "    (lambda: sim.schedule(-1.0, lambda: None), 'schedule:'),\n"
            "    (lambda: sim.schedule_at(-1.0, lambda: None),"
            " 'schedule_at:'),\n"
            "]:\n"
            "    try:\n"
            "        call()\n"
            "    except ValueError as error:\n"
            "        if not str(error).startswith(prefix):\n"
            "            raise SystemExit(f'wrong message: {error}')\n"
            "    else:\n"
            "        raise SystemExit('ValueError not raised under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", program],
            capture_output=True,
            text=True,
            env={**os.environ, "PYTHONPATH": "src"},
            cwd=os.path.join(os.path.dirname(__file__), "..", ".."),
        )
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip() == "OK"
