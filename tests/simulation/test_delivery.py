"""Integration tests for the packet-level delivery simulation."""

import numpy as np
import pytest

from repro.clustering import ForgyKMeansClustering
from repro.core import PubSubBroker, SubscriptionTable, ThresholdPolicy
from repro.geometry import Rectangle
from repro.simulation import DeliverySimulation, LatencyStats


class AlwaysUnicastPolicy:
    """A degenerate policy for storm comparisons (thresholds cannot
    express it when the interested ratio reaches 1.0)."""

    def decide(self, interested, group_size, group):
        from repro.core import DeliveryMethod, DistributionDecision

        method = (
            DeliveryMethod.NOT_SENT
            if interested == 0
            else DeliveryMethod.UNICAST
        )
        return DistributionDecision(method, interested, group_size, group)


@pytest.fixture(scope="module")
def hot_broker(small_topology):
    """Every stub node subscribes to everything: one hot group.

    ``cells_per_dim=2`` with ``max_cells=16`` ensures *all* occupied
    cells are clustered, so no event falls into the catchall.
    """
    table = SubscriptionTable(4)
    for node in small_topology.all_stub_nodes():
        table.add(node, Rectangle.cube(0.0, 20.0, 4))
    return PubSubBroker.preprocess(
        small_topology,
        table,
        ForgyKMeansClustering(),
        num_groups=2,
        cells_per_dim=2,
        max_cells=16,
        policy=ThresholdPolicy(0.0),
    )


@pytest.fixture(scope="module")
def hot_workload(small_topology):
    points = np.random.default_rng(5).uniform(5, 15, size=(40, 4))
    publishers = np.full(40, small_topology.all_stub_nodes()[0])
    return points, publishers


class TestLatencyStats:
    def test_empty(self):
        stats = LatencyStats.from_samples([])
        assert stats.count == 0
        assert stats.mean == 0.0

    def test_percentiles_ordered(self, rng):
        stats = LatencyStats.from_samples(rng.uniform(0, 100, 500))
        assert stats.p50 <= stats.p95 <= stats.maximum
        assert stats.count == 500


class TestDeliverySimulation:
    def test_every_interested_subscriber_served(
        self, hot_broker, hot_workload
    ):
        sim = DeliverySimulation(hot_broker)
        points, publishers = hot_workload
        report = sim.run(points, publishers, inter_arrival=50.0)
        subscribers = len(hot_broker.table.subscribers)
        # Everyone subscribes to everything inside the cube; every
        # event inside it must be delivered to every subscriber.
        assert report.deliveries == len(points) * subscribers
        assert report.latency.count == report.deliveries
        assert report.multicasts == len(points)

    def test_deterministic(self, hot_broker, hot_workload):
        points, publishers = hot_workload
        a = DeliverySimulation(hot_broker).run(points, publishers)
        b = DeliverySimulation(hot_broker).run(points, publishers)
        assert a.latency == b.latency
        assert a.transmissions == b.transmissions

    def test_multicast_saves_transport_on_hot_group(
        self, hot_broker, hot_workload
    ):
        """With everyone interested, the tree beats the unicast storm
        on transmissions AND tail latency under a burst."""
        points, publishers = hot_workload
        burst = [0.0] * len(points)
        multicast_report = DeliverySimulation(
            hot_broker.with_policy(ThresholdPolicy(0.0))
        ).run(points, publishers, arrival_times=burst)
        unicast_report = DeliverySimulation(
            hot_broker.with_policy(AlwaysUnicastPolicy())
        ).run(points, publishers, arrival_times=burst)
        assert unicast_report.unicasts == len(points)
        assert multicast_report.transmissions < unicast_report.transmissions
        assert (
            multicast_report.latency.p95 <= unicast_report.latency.p95
        )
        assert (
            multicast_report.queueing_delay
            <= unicast_report.queueing_delay
        )

    def test_spacing_relieves_congestion(self, hot_broker, hot_workload):
        points, publishers = hot_workload
        unicast = hot_broker.with_policy(AlwaysUnicastPolicy())
        burst = DeliverySimulation(unicast).run(
            points, publishers, arrival_times=[0.0] * len(points)
        )
        spaced = DeliverySimulation(unicast).run(
            points, publishers, inter_arrival=100.0
        )
        assert spaced.queueing_delay <= burst.queueing_delay
        assert spaced.latency.maximum <= burst.latency.maximum

    def test_report_counters_consistent(
        self, small_topology, small_table, nine_mode_density, small_events
    ):
        broker = PubSubBroker.preprocess(
            small_topology,
            small_table,
            ForgyKMeansClustering(),
            num_groups=5,
            density=nine_mode_density,
            cells_per_dim=6,
            max_cells=50,
            policy=ThresholdPolicy(0.15),
        )
        points, publishers = small_events
        report = DeliverySimulation(broker).run(points[:80], publishers[:80])
        assert (
            report.multicasts + report.unicasts + report.not_sent == 80
        )
        assert report.transmissions >= report.deliveries * 0 and (
            report.transmissions > 0
        )
        assert report.finished_at >= 0.0
        # Decisions match the cost-model broker run exactly.
        tally, _ = broker.run(points[:80], publishers[:80])
        assert report.multicasts == tally.multicasts_sent
        assert report.unicasts == tally.unicasts_sent

    def test_sparse_mode_flows_via_rendezvous(
        self, small_topology, hot_workload
    ):
        """With a sparse-mode cost model, packets detour through the
        rendezvous point — same deliveries, typically higher latency."""
        from repro.network import DeliveryCostModel

        points, publishers = hot_workload
        reports = {}
        for mode in ("dense", "sparse"):
            table = SubscriptionTable(4)
            for node in small_topology.all_stub_nodes():
                table.add(node, Rectangle.cube(0.0, 20.0, 4))
            broker = PubSubBroker.preprocess(
                small_topology,
                table,
                ForgyKMeansClustering(),
                num_groups=2,
                cells_per_dim=2,
                max_cells=16,
                policy=ThresholdPolicy(0.0),
                cost_model=DeliveryCostModel(
                    small_topology, multicast_mode=mode
                ),
            )
            reports[mode] = DeliverySimulation(broker).run(
                points, publishers, inter_arrival=100.0
            )
        assert (
            reports["sparse"].deliveries == reports["dense"].deliveries
        )
        # Detour through the RP can't *reduce* mean latency (the
        # publisher is fixed; dense trees are publisher-rooted SPTs).
        assert (
            reports["sparse"].latency.mean
            >= reports["dense"].latency.mean - 1e-9
        )

    def test_input_validation(self, hot_broker):
        sim = DeliverySimulation(hot_broker)
        with pytest.raises(ValueError):
            sim.run(np.zeros((3, 4)), [1, 2])
        with pytest.raises(ValueError):
            sim.run(np.zeros((2, 4)), [1, 2], arrival_times=[0.0])
