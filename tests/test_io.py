"""Unit tests for testbed serialization."""

import json
import math

import pytest

from repro import load_testbed, save_testbed
from repro.core import SubscriptionTable
from repro.geometry import Interval, Rectangle
from repro.io import (
    table_from_dict,
    table_to_dict,
    topology_from_dict,
    topology_to_dict,
)


class TestTopologyRoundtrip:
    def test_structure_preserved(self, small_topology):
        restored = topology_from_dict(topology_to_dict(small_topology))
        assert restored.num_nodes == small_topology.num_nodes
        assert restored.num_edges == small_topology.num_edges
        assert restored.transit_nodes == small_topology.transit_nodes
        assert restored.stub_members == small_topology.stub_members
        assert restored.stub_block == small_topology.stub_block

    def test_costs_preserved(self, small_topology):
        restored = topology_from_dict(topology_to_dict(small_topology))
        for u, v, data in small_topology.graph.edges(data=True):
            assert restored.edge_cost(u, v) == pytest.approx(data["cost"])

    def test_json_serializable(self, small_topology):
        json.dumps(topology_to_dict(small_topology))


class TestTableRoundtrip:
    def test_rectangles_preserved(self, small_table):
        restored = table_from_dict(table_to_dict(small_table))
        assert len(restored) == len(small_table)
        for original, copy in zip(small_table, restored):
            assert copy.subscriber == original.subscriber
            assert copy.rectangle == original.rectangle

    def test_infinities_survive(self):
        table = SubscriptionTable(2)
        table.add(
            1,
            Rectangle.from_intervals(
                [Interval(5.0, math.inf), Interval(-math.inf, 3.0)]
            ),
        )
        restored = table_from_dict(table_to_dict(table))
        assert restored[0].rectangle.highs[0] == math.inf
        assert restored[0].rectangle.lows[1] == -math.inf
        json.dumps(table_to_dict(table))  # and it is valid JSON


class TestRoundtripProperties:
    """Property-based: any rectangle (incl. infinite sides) survives."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    bound = st.one_of(
        st.floats(
            min_value=-1e12,
            max_value=1e12,
            allow_nan=False,
            allow_infinity=False,
        ),
        st.just(math.inf),
        st.just(-math.inf),
    )

    @given(st.lists(st.tuples(bound, bound, bound, bound), min_size=1, max_size=15))
    @settings(max_examples=40, deadline=None)
    def test_any_table_roundtrips(self, rows):
        table = SubscriptionTable(2)
        for i, (a, b, c, d) in enumerate(rows):
            table.add(i, Rectangle((a, c), (b, d)))
        restored = table_from_dict(table_to_dict(table))
        for original, copy in zip(table, restored):
            assert copy.rectangle == original.rectangle
            assert copy.subscriber == original.subscriber


class TestFileRoundtrip:
    def test_save_load(self, tmp_path, small_topology, small_table):
        path = tmp_path / "testbed.json"
        save_testbed(path, small_topology, small_table)
        topology, table = load_testbed(path)
        assert topology.num_nodes == small_topology.num_nodes
        assert len(table) == len(small_table)
        # The restored testbed is fully usable.
        from repro.clustering import ForgyKMeansClustering
        from repro.core import PubSubBroker

        broker = PubSubBroker.preprocess(
            topology,
            table,
            ForgyKMeansClustering(),
            num_groups=4,
            cells_per_dim=5,
            max_cells=30,
        )
        assert broker.partition.num_groups <= 4

    def test_version_check(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99}))
        with pytest.raises(ValueError):
            load_testbed(path)

    def test_matching_identical_after_roundtrip(
        self, tmp_path, small_topology, small_table, small_events
    ):
        from repro.core import MatchingEngine

        path = tmp_path / "testbed.json"
        save_testbed(path, small_topology, small_table)
        _, restored = load_testbed(path)
        original_engine = MatchingEngine(small_table)
        restored_engine = MatchingEngine(restored)
        points, _ = small_events
        for point in points[:40]:
            assert (
                original_engine.match_point(point).subscription_ids
                == restored_engine.match_point(point).subscription_ids
            )
