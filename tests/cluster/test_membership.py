"""Membership: suspicion hysteresis, sticky death, view epochs."""

import subprocess
import sys
from pathlib import Path

import pytest

from repro.cluster import MemberState, Membership, MembershipConfig

REPO_ROOT = Path(__file__).resolve().parents[2]


def _membership(**overrides):
    config = MembershipConfig(
        heartbeat_interval=10.0,
        suspect_after=25.0,
        confirm_after=55.0,
        **overrides,
    )
    return Membership([1, 2, 3], config)


class TestHysteresis:
    def test_silence_walks_alive_suspect_dead(self):
        m = _membership()
        assert m.tick(20.0) == []
        assert m.state_of(1) is MemberState.ALIVE
        # Nodes 2 and 3 keep beating; node 1 goes silent.
        m.heard(2, 30.0)
        m.heard(3, 30.0)
        assert m.tick(30.0) == [(1, MemberState.SUSPECT)]
        m.heard(2, 60.0)
        m.heard(3, 60.0)
        assert m.tick(60.0) == [(1, MemberState.DEAD)]
        assert m.state_of(1) is MemberState.DEAD
        assert m.suspicions == 1
        assert m.confirmed_deaths == 1

    def test_heartbeat_recovers_a_suspect(self):
        m = _membership()
        m.tick(30.0)
        assert m.state_of(1) is MemberState.SUSPECT
        assert m.heard(1, 31.0)
        assert m.state_of(1) is MemberState.ALIVE
        assert m.recoveries == 1
        # The silence clock restarted: no immediate re-suspicion.
        assert m.tick(40.0) == []

    def test_dead_is_sticky_and_counts_stale_heartbeats(self):
        m = _membership()
        m.mark_dead(1)
        assert not m.heard(1, 5.0)
        assert not m.heard(1, 6.0)
        assert m.state_of(1) is MemberState.DEAD
        assert m.stale_heartbeats == 2
        assert not m.is_usable(1)

    def test_mark_dead_is_idempotent(self):
        m = _membership()
        m.mark_dead(2)
        epoch = m.epoch
        m.mark_dead(2)
        assert m.epoch == epoch
        assert m.confirmed_deaths == 1

    def test_dead_nodes_skip_further_transitions(self):
        m = _membership()
        m.mark_dead(1)
        # Node 1 never transitions again, however long the silence.
        assert all(node != 1 for node, _ in m.tick(1e6))


class TestEpochs:
    def test_every_transition_bumps_the_view_epoch(self):
        m = _membership()
        assert m.epoch == 0
        m.tick(30.0)  # 1, 2, 3 all -> SUSPECT
        assert m.epoch == 3
        m.heard(1, 31.0)  # SUSPECT -> ALIVE
        assert m.epoch == 4
        m.mark_dead(2)
        assert m.epoch == 5

    def test_advance_epoch_is_monotone(self):
        m = _membership()
        first = m.advance_epoch()
        second = m.advance_epoch()
        assert second == first + 1 == m.epoch

    def test_view_snapshot(self):
        m = _membership()
        m.heard(2, 30.0)
        m.heard(3, 30.0)
        m.tick(30.0)  # node 1 -> SUSPECT
        m.mark_dead(3)
        view = m.view()
        assert view.epoch == m.epoch
        assert view.alive == frozenset({2})
        assert view.suspect == frozenset({1})
        assert view.dead == frozenset({3})
        assert view.members == frozenset({1, 2, 3})


class TestMisuse:
    """Uniform ValueError messages (proved real under -O below)."""

    def test_empty_membership(self):
        with pytest.raises(ValueError, match=r"member node \(got none\)"):
            Membership([])

    def test_nonpositive_interval(self):
        with pytest.raises(
            ValueError, match=r"heartbeat_interval must be positive \(got 0.0\)"
        ):
            MembershipConfig(heartbeat_interval=0.0)

    def test_suspect_not_beyond_interval(self):
        with pytest.raises(
            ValueError, match=r"suspect_after must exceed heartbeat_interval"
        ):
            MembershipConfig(heartbeat_interval=10.0, suspect_after=10.0)

    def test_confirm_not_beyond_suspect(self):
        with pytest.raises(
            ValueError, match=r"confirm_after must exceed suspect_after"
        ):
            MembershipConfig(suspect_after=25.0, confirm_after=25.0)

    def test_misuse_survives_python_O(self):
        """The guards are ValueError raises, not asserts: they must
        still fire under ``python -O`` (which strips asserts)."""
        probe = (
            "from repro.cluster import Membership, MembershipConfig\n"
            "assert False\n"  # canary: -O must strip this line
            "for attempt in ("
            "lambda: Membership([]),"
            "lambda: MembershipConfig(heartbeat_interval=0.0),"
            "lambda: MembershipConfig(suspect_after=5.0),"
            "lambda: MembershipConfig(confirm_after=20.0),"
            "):\n"
            "    try:\n"
            "        attempt()\n"
            "    except ValueError:\n"
            "        pass\n"
            "    else:\n"
            "        raise SystemExit('guard missing under -O')\n"
            "print('OK')\n"
        )
        result = subprocess.run(
            [sys.executable, "-O", "-c", probe],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
            env={"PYTHONPATH": str(REPO_ROOT / "src")},
        )
        assert result.returncode == 0, result.stderr
        assert "OK" in result.stdout
