"""ReplicatedShard: shipping, fenced takeover, zombie demotion."""

import pytest

from repro.cluster import ReplicatedShard
from repro.core import Subscription
from repro.geometry import Rectangle
from repro.replication.epoch import EpochDirectory, ReplicaRole
from repro.sharding import ShardBroker


class _Clock:
    """Minimal simulator stand-in: just an advancing `.now`."""

    def __init__(self):
        self.now = 0.0


def _rect(lo, hi):
    return Rectangle((float(lo), float(lo)), (float(hi), float(hi)))


def _replicated(standbys=(7, 9), primary=0, **kwargs):
    clock = _Clock()
    shard_broker = ShardBroker(0, home=primary, ndim=2)
    shard = ReplicatedShard(
        shard_broker, primary, list(standbys), clock, **kwargs
    )
    return clock, shard_broker, shard


class TestConstruction:
    def test_requires_standbys(self):
        with pytest.raises(ValueError, match="at least one standby"):
            _replicated(standbys=())

    def test_standbys_distinct_and_exclude_primary(self):
        with pytest.raises(ValueError, match="distinct and exclude"):
            _replicated(standbys=(0, 7))
        with pytest.raises(ValueError, match="distinct and exclude"):
            _replicated(standbys=(7, 7))

    def test_roles_at_start(self):
        _, _, shard = _replicated()
        assert shard.epochs[0].role is ReplicaRole.PRIMARY
        assert shard.epochs[7].role is ReplicaRole.STANDBY
        assert shard.epochs[9].role is ReplicaRole.STANDBY
        assert shard.epoch == 0


class TestTakeover:
    def _loaded(self):
        clock, shard_broker, shard = _replicated()
        for gid in range(6):
            shard_broker.register(
                Subscription(gid, gid * 10, _rect(gid, gid + 1))
            )
        shard.journal.log_publish(42, publisher=3, targets=[30, 31])
        clock.now = 10.0
        shard.tick(clock.now)  # ship everything to both standbys
        return clock, shard_broker, shard

    def test_standby_recovers_the_entry_set(self):
        clock, shard_broker, shard = self._loaded()
        directory = EpochDirectory()
        shard.mark_dead(0)
        result = shard.takeover(clock.now, epoch=1, directory=directory)
        assert result is not None
        assert result.old_home == 0
        assert result.new_home == 7  # first-ranked standby
        assert result.entries == 6
        assert set(shard_broker._entries) == set(range(6))
        assert shard_broker.home == 7
        assert result.inflight[42].targets == (30, 31)
        assert directory.resolve(0) == 7

    def test_takeover_epoch_must_advance(self):
        clock, _, shard = self._loaded()
        shard.mark_dead(0)
        with pytest.raises(ValueError, match="takeover epoch must advance"):
            shard.takeover(clock.now, epoch=0)

    def test_no_candidate_returns_none(self):
        clock, _, shard = self._loaded()
        shard.mark_dead(0)
        shard.mark_dead(7)
        shard.mark_dead(9)
        assert shard.takeover(clock.now, epoch=1) is None

    def test_eligibility_veto_skips_ranked_standby(self):
        clock, _, shard = self._loaded()
        shard.mark_dead(0)
        result = shard.takeover(
            clock.now, epoch=1, eligible=lambda node: node != 7
        )
        assert result.new_home == 9

    def test_takeover_digest_is_deterministic(self):
        digests = []
        for _ in range(2):
            clock, _, shard = self._loaded()
            shard.mark_dead(0)
            result = shard.takeover(clock.now, epoch=1)
            digests.append(result.digest)
        assert digests[0] == digests[1]
        assert digests[0] == shard.stats.takeover_digests[0]


class TestFencing:
    def test_writes_fence_at_the_deposed_primary(self):
        clock, _, shard = _replicated()
        shard.tick(clock.now)
        shard.takeover(clock.now, epoch=1)  # partition-style: 0 not dead
        assert shard.primary == 7
        assert shard.write_allowed(7)
        assert not shard.write_allowed(0)  # old epoch 0 < shard epoch 1
        stats = shard.finalize_stats()
        assert stats.fenced_writes >= 1
        assert stats.final_epoch == 1

    def test_zombie_heartbeat_draws_a_fence(self):
        clock, _, shard = _replicated()
        shard.takeover(clock.now, epoch=1)
        # Node 0 still believes it is primary and keeps beating; the
        # survivors answer with a fence that demotes it.
        assert shard.epochs[0].is_primary
        clock.now = 10.0
        shard.tick(clock.now)
        assert not shard.epochs[0].is_primary
        assert shard.epochs[0].role is ReplicaRole.FENCED
        stats = shard.finalize_stats()
        assert stats.stale_rejections >= 1


class TestShipping:
    def test_invalidated_stream_recovers_via_catchup(self):
        clock, shard_broker, shard = _replicated()
        shard_broker.register(Subscription(1, 10, _rect(0, 1)))
        clock.now = 5.0
        shard.tick(clock.now)
        # The standby loses its stream position (scrubbed WAL): the
        # next batch must bounce into a resync + anti-entropy catch-up.
        shard.replicas[7].invalidate_stream()
        shard_broker.register(Subscription(2, 20, _rect(1, 2)))
        clock.now = 10.0
        shard.tick(clock.now)
        clock.now = 15.0
        shard.tick(clock.now)
        assert shard.shipping_stats().catchups >= 1
        # The rebased standby can still take over with full state.
        shard.mark_dead(0)
        result = shard.takeover(clock.now, epoch=1)
        assert result.new_home == 7
        assert result.entries == 2

    def test_lag_of_unacked_standby_is_zero(self):
        _, _, shard = _replicated()
        assert shard.lag_of(7) == 0
