"""Full-stack chaos: replicated shards under combined failures.

Every scenario must keep the outcome ledger balanced with zero
duplicates and zero *unexplained* misses, keep per-event MatchResult
digests byte-identical to an unsharded never-failed broker, and answer
the scenario's shard death with a fenced standby takeover rather than
the last-resort ring exclusion.
"""

import pytest

from repro.faults import (
    FullStackChaosSimulation,
    build_cluster_plan,
    unsharded_match_digest,
)
from repro.faults.verifier import build_chaos_testbed
from repro.sharding import ShardMap
from repro.workload import PublicationGenerator

EVENTS = 200
SHARDS = 4


def _build(seed=29):
    broker, density = build_chaos_testbed(
        seed=seed, subscriptions=200, num_groups=9
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=seed + 9
    ).generate(EVENTS)
    return broker, points, publishers


def _run(scenario, seed=29, shards=SHARDS):
    broker, points, publishers = _build(seed)
    shard_map = ShardMap.plan(broker.partition, shards)
    plan, homes, standby_map, planned, corruptions = build_cluster_plan(
        broker.topology,
        shard_map,
        seed=seed,
        scenario=scenario,
        horizon=float(EVENTS),
    )
    simulation = FullStackChaosSimulation(
        broker,
        plan,
        standby_map,
        num_shards=shards,
        shard_homes=homes,
        migrations=planned,
        corruptions=corruptions,
    )
    report = simulation.run(points, publishers)
    return broker, points, simulation, report


@pytest.fixture(scope="module")
def kill_run():
    return _run("kill")


@pytest.fixture(scope="module")
def partition_run():
    return _run("partition")


@pytest.fixture(scope="module")
def double_kill_run():
    return _run("double-kill")


@pytest.fixture(scope="module")
def migrate_run():
    return _run("migrate-under-kill")


def _assert_invariants(broker, points, simulation, report):
    sharded = report.sharded
    assert sharded.accounted, (
        sharded.delivered_events,
        sharded.shed_events,
        sharded.expired_events,
        sharded.published,
    )
    assert report.duplicate_deliveries == 0
    assert sharded.unexplained_misses == 0
    assert sharded.match_parity
    assert sharded.match_digest == unsharded_match_digest(
        broker, points, simulation.serviced_sequences
    )
    # The corruption leg ran in every scenario: the standby scrubbed
    # its torn WAL and rebased instead of dying or diverging.
    assert report.cluster.wal_corruptions == 1
    assert report.cluster.wal_scrubs == 1


class TestKillScenario:
    def test_invariants(self, kill_run):
        _assert_invariants(*kill_run)

    def test_takeover_not_ring_exclusion(self, kill_run):
        _, _, _, report = kill_run
        assert report.cluster.takeovers == 1
        assert report.cluster.ring_exclusions == 0
        assert report.sharded.shard_kills == 0  # nothing stranded
        assert len(report.cluster.takeover_digests) == 1
        assert len(report.cluster.takeover_durations) == 1

    def test_split_brain_probe(self, kill_run):
        _, _, _, report = kill_run
        assert report.cluster.probe_admissions >= 1
        assert report.cluster.probe_rejections >= 1

    def test_inflight_rehand_after_takeover(self, kill_run):
        _, _, _, report = kill_run
        assert report.cluster.redelivered_after_takeover > 0

    def test_membership_confirmed_the_death(self, kill_run):
        _, _, simulation, report = kill_run
        assert report.cluster.confirmed_deaths >= 1
        assert report.cluster.members_dead >= 1
        assert report.cluster.cluster_epoch >= 3
        # The takeover waited out the full hysteresis: silence must
        # exceed confirm_after before the verdict lands.
        assert min(report.cluster.takeover_durations) > (
            simulation.membership.config.confirm_after
        )

    def test_deterministic_across_identical_runs(self, kill_run):
        _, _, _, first = kill_run
        _, _, _, second = _run("kill")
        assert first.sharded.match_digest == second.sharded.match_digest
        assert first.sharded == second.sharded
        assert first.cluster == second.cluster


class TestPartitionScenario:
    def test_invariants(self, partition_run):
        _assert_invariants(*partition_run)

    def test_zombie_is_fenced_not_killed(self, partition_run):
        _, _, _, report = partition_run
        assert report.cluster.takeovers >= 1
        # The old primary kept running behind the partition: its stale
        # traffic bounced off the higher epoch after the heal.
        assert report.cluster.stale_rejections >= 1
        assert report.cluster.stale_heartbeats >= 1

    def test_no_stranding_under_partition(self, partition_run):
        _, _, _, report = partition_run
        assert report.sharded.stranded_misses == 0


class TestDoubleKillScenario:
    def test_invariants(self, double_kill_run):
        _assert_invariants(*double_kill_run)

    def test_two_independent_takeovers(self, double_kill_run):
        _, _, _, report = double_kill_run
        assert report.cluster.takeovers == 2
        assert report.cluster.ring_exclusions == 0
        assert len(set(report.cluster.takeover_digests)) == 2


class TestMigrateUnderKillScenario:
    def test_invariants(self, migrate_run):
        _assert_invariants(*migrate_run)

    def test_migration_resolves_and_shard_fails_over(self, migrate_run):
        _, _, simulation, report = migrate_run
        assert report.cluster.takeovers >= 1
        assert (
            report.sharded.migrations_completed
            + report.sharded.migrations_aborted
            >= 1
        )
        assert not simulation.rebalancer._active


class TestHarnessGuards:
    def test_scenario_validated(self):
        broker, _, _ = _build()
        with pytest.raises(ValueError, match="scenario must be"):
            build_cluster_plan(
                broker.topology,
                ShardMap.plan(broker.partition, 2),
                scenario="nope",
            )

    def test_standby_count_validated(self):
        broker, _, _ = _build()
        with pytest.raises(
            ValueError, match=r"standby_count must be >= 1 \(got 0\)"
        ):
            build_cluster_plan(
                broker.topology,
                ShardMap.plan(broker.partition, 2),
                standby_count=0,
            )

    def test_every_shard_needs_a_standby(self):
        broker, _, _ = _build()
        shard_map = ShardMap.plan(broker.partition, SHARDS)
        plan, homes, standby_map, _, _ = build_cluster_plan(
            broker.topology, shard_map, horizon=float(EVENTS)
        )
        incomplete = dict(standby_map)
        incomplete[0] = []
        with pytest.raises(ValueError, match="needs at least one standby"):
            FullStackChaosSimulation(
                broker,
                plan,
                incomplete,
                num_shards=SHARDS,
                shard_homes=homes,
            )
