"""ShardJournal: log, checkpoint, and crash-proof shard recovery."""

import pytest

from repro.cluster import ShardJournal, recover_shard
from repro.core import Subscription
from repro.durability import MemorySnapshotStore, MemoryWAL, Snapshot
from repro.geometry import Rectangle
from repro.sharding import ShardBroker


def _rect(lo, hi):
    return Rectangle((float(lo), float(lo)), (float(hi), float(hi)))


def _journaled_shard(checkpoint_every=64):
    shard = ShardBroker(0, home=0, ndim=2)
    wal = MemoryWAL()
    store = MemorySnapshotStore()
    journal = ShardJournal(
        shard, wal, store, checkpoint_every=checkpoint_every
    )
    shard.on_register = lambda gid, sub, rect: journal.log_register(
        gid, sub, rect
    )
    shard.on_withdraw = lambda gid: journal.log_withdraw(gid)
    return shard, wal, store, journal


class TestRoundTrip:
    def test_entries_survive_recovery(self):
        shard, wal, store, _ = _journaled_shard()
        shard.register(Subscription(3, 30, _rect(0, 2)))
        shard.register(Subscription(7, 70, _rect(1, 4)))
        shard.withdraw([3])
        state = recover_shard(wal, store)
        assert set(state.entries) == {7}
        subscriber, rectangle = state.entries[7]
        assert subscriber == 70
        assert tuple(rectangle.lows) == (1.0, 1.0)
        assert state.corruption is None
        assert state.truncated_bytes == 0

    def test_inflight_retires_on_full_delivery(self):
        shard, wal, store, journal = _journaled_shard()
        journal.log_publish(5, publisher=99, targets=[10, 11])
        journal.log_delivery(5, 10)
        state = recover_shard(wal, store)
        assert state.inflight[5].targets == (11,)
        assert state.inflight[5].publisher == 99
        journal.log_delivery(5, 11)
        state = recover_shard(wal, store)
        assert state.inflight == {}
        assert journal.inflight_sequences == set()

    def test_duplicate_register_is_not_journaled(self):
        shard, wal, _, _ = _journaled_shard()
        subscription = Subscription(3, 30, _rect(0, 2))
        assert shard.register(subscription)
        assert not shard.register(subscription)
        assert len(wal.scan().records) == 1


class TestCheckpoint:
    def test_checkpoint_snapshots_and_truncates(self):
        shard, wal, store, journal = _journaled_shard()
        for gid in range(8):
            shard.register(Subscription(gid, gid * 10, _rect(gid, gid + 1)))
        snapshot = journal.checkpoint()
        assert snapshot.table["kind"] == "shard-entries"
        assert len(snapshot.table["entries"]) == 8
        assert wal.base_lsn > 0  # prefix gone
        state = recover_shard(wal, store)
        assert set(state.entries) == set(range(8))
        assert state.snapshot_id == snapshot.snapshot_id

    def test_outstanding_intent_holds_back_truncation(self):
        shard, wal, store, journal = _journaled_shard()
        journal.log_publish(1, publisher=5, targets=[20])
        intent_lsn = journal._intent_lsn[1]
        shard.register(Subscription(9, 90, _rect(0, 1)))
        journal.checkpoint()
        # The unfinished publish stays replayable after truncation.
        assert wal.base_lsn <= intent_lsn
        state = recover_shard(wal, store)
        assert state.inflight[1].targets == (20,)

    def test_auto_checkpoint_cadence(self):
        shard, _, _, journal = _journaled_shard(checkpoint_every=3)
        journal.log_publish(1, publisher=5, targets=[20, 21])
        journal.log_delivery(1, 20)  # 2 appends: below the cadence
        assert journal.checkpoints == 0
        journal.log_delivery(1, 21)  # 3rd append crosses it
        assert journal.checkpoints == 1

    def test_checkpoint_every_validated(self):
        shard = ShardBroker(0, home=0, ndim=2)
        with pytest.raises(
            ValueError, match=r"checkpoint_every must be >= 1 \(got 0\)"
        ):
            ShardJournal(shard, MemoryWAL(), MemorySnapshotStore(),
                         checkpoint_every=0)


class TestDamage:
    def test_torn_tail_never_raises(self):
        shard, wal, store, _ = _journaled_shard()
        for gid in range(4):
            shard.register(Subscription(gid, gid, _rect(gid, gid + 1)))
        wal.tear_tail(5)
        state = recover_shard(wal, store)
        assert state.truncated_bytes > 0
        assert state.corruption is not None
        # The torn record is lost, everything before it survives.
        assert set(state.entries) == {0, 1, 2}

    def test_foreign_snapshot_encoding_is_skipped(self):
        shard, wal, store, _ = _journaled_shard()
        store.save(
            Snapshot(
                snapshot_id=0,
                checkpoint_lsn=999,
                table={"kind": "broker-table", "rows": []},
                removed=[],
                partition=None,
                taken_at=0.0,
            )
        )
        shard.register(Subscription(2, 20, _rect(0, 1)))
        state = recover_shard(wal, store)
        assert state.skipped == 1
        assert state.checkpoint_lsn == 0  # foreign snapshot ignored
        assert set(state.entries) == {2}


class TestDigest:
    def test_digest_is_deterministic(self):
        states = []
        for _ in range(2):
            shard, wal, store, journal = _journaled_shard()
            shard.register(Subscription(3, 30, _rect(0, 2)))
            journal.log_publish(5, publisher=9, targets=[10])
            states.append(recover_shard(wal, store))
        assert states[0].digest() == states[1].digest()

    def test_digest_covers_entries_and_inflight(self):
        shard, wal, store, journal = _journaled_shard()
        shard.register(Subscription(3, 30, _rect(0, 2)))
        before = recover_shard(wal, store).digest()
        journal.log_publish(5, publisher=9, targets=[10])
        after = recover_shard(wal, store).digest()
        assert before != after
