"""Unit tests for subscription placement."""

import numpy as np
import pytest

from repro.workload import SubscriberPlacement


class TestPlacement:
    def test_placements_are_consistent(self, paper_topology, rng):
        placement = SubscriberPlacement(paper_topology, rng=rng)
        for block, stub, node in placement.place(300):
            assert paper_topology.stub_block[stub] == block
            assert node in paper_topology.stub_members[stub]

    def test_block_shares_respected(self, paper_topology, rng):
        placement = SubscriberPlacement(
            paper_topology, block_shares=(0.8, 0.1, 0.1), rng=rng
        )
        blocks = np.bincount(
            [b for b, _, _ in placement.place(3000)], minlength=3
        ) / 3000
        assert blocks[0] == pytest.approx(0.8, abs=0.03)

    def test_zipf_concentration_within_blocks(self, paper_topology, rng):
        placement = SubscriberPlacement(paper_topology, rng=rng)
        placements = placement.place(5000)
        # Within each block, the busiest stub should clearly dominate
        # the least busy one (Zipf-like skew).
        for block in range(3):
            stubs = [s for b, s, _ in placements if b == block]
            counts = sorted(
                (stubs.count(s) for s in set(stubs)), reverse=True
            )
            assert counts[0] >= 2 * counts[-1]

    def test_zero_theta_roughly_uniform(self, paper_topology):
        placement = SubscriberPlacement(
            paper_topology,
            zipf_theta=0.0,
            rng=np.random.default_rng(3),
        )
        placements = placement.place(5000)
        block0 = [s for b, s, _ in placements if b == 0]
        counts = sorted(
            (block0.count(s) for s in set(block0)), reverse=True
        )
        assert counts[0] < 2 * counts[-1]

    def test_share_padding_for_extra_blocks(self, paper_topology):
        # Fewer shares than blocks: remaining blocks get zero weight.
        placement = SubscriberPlacement(
            paper_topology,
            block_shares=(1.0,),
            rng=np.random.default_rng(4),
        )
        blocks = {b for b, _, _ in placement.place(200)}
        assert blocks == {0}

    def test_share_truncation(self, paper_topology):
        placement = SubscriberPlacement(
            paper_topology,
            block_shares=(0.5, 0.3, 0.2, 0.9),
            rng=np.random.default_rng(4),
        )
        assert len(placement.block_probabilities) == 3
        assert placement.block_probabilities.sum() == pytest.approx(1.0)

    def test_invalid_shares(self, paper_topology):
        with pytest.raises(ValueError):
            SubscriberPlacement(paper_topology, block_shares=(-1.0, 2.0))
        with pytest.raises(ValueError):
            SubscriberPlacement(paper_topology, block_shares=(0.0, 0.0))
