"""Unit tests for publication mixtures and the generator."""

import numpy as np
import pytest

from repro.workload import (
    GaussianMixture1D,
    ProductMixtureDistribution,
    PublicationGenerator,
    four_mode_distribution,
    nine_mode_distribution,
    publication_distribution,
    single_mode_distribution,
)


class TestGaussianMixture1D:
    def test_single_component(self):
        mixture = GaussianMixture1D.single(5.0, 2.0)
        assert mixture.num_components == 1
        assert mixture.cdf(5.0) == pytest.approx(0.5)

    def test_weights_must_sum_to_one(self):
        with pytest.raises(ValueError):
            GaussianMixture1D((0.5, 0.6), (0.0, 1.0), (1.0, 1.0))

    def test_alignment_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture1D((1.0,), (0.0, 1.0), (1.0,))

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            GaussianMixture1D((1.0,), (0.0,), (0.0,))

    def test_cdf_limits(self):
        mixture = GaussianMixture1D((0.5, 0.5), (0.0, 10.0), (1.0, 1.0))
        assert mixture.cdf(-np.inf) == 0.0
        assert mixture.cdf(np.inf) == 1.0
        assert mixture.cdf(5.0) == pytest.approx(0.5, abs=1e-6)

    def test_cdf_array_matches_scalar(self):
        mixture = GaussianMixture1D((0.3, 0.7), (0.0, 4.0), (1.0, 2.0))
        xs = np.array([-np.inf, -1.0, 0.0, 3.0, np.inf])
        bulk = mixture.cdf_array(xs)
        for x, v in zip(xs, bulk):
            assert v == pytest.approx(mixture.cdf(float(x)))

    def test_interval_probability(self):
        mixture = GaussianMixture1D.single(0.0, 1.0)
        assert mixture.interval_probability(-1.0, 1.0) == pytest.approx(
            0.6827, abs=1e-3
        )
        assert mixture.interval_probability(2.0, 1.0) == 0.0

    def test_pdf_integrates_to_one(self):
        mixture = GaussianMixture1D((0.4, 0.6), (0.0, 8.0), (1.0, 2.0))
        xs = np.linspace(-10, 20, 4001)
        total = np.trapezoid([mixture.pdf(x) for x in xs], xs)
        assert total == pytest.approx(1.0, abs=1e-3)

    def test_sample_mixture_means(self, rng):
        mixture = GaussianMixture1D((0.5, 0.5), (0.0, 100.0), (1.0, 1.0))
        draws = mixture.sample(rng, 10_000)
        assert np.mean(draws) == pytest.approx(50.0, abs=2.0)
        # Bimodal: essentially nothing between the two modes.
        assert np.mean((draws > 10) & (draws < 90)) < 0.01


class TestPaperScenarios:
    def test_mode_counts(self):
        assert single_mode_distribution().num_modes == 1
        assert four_mode_distribution().num_modes == 4
        assert nine_mode_distribution().num_modes == 9

    def test_lookup(self):
        for modes in (1, 4, 9):
            assert publication_distribution(modes).num_modes == modes
        with pytest.raises(ValueError):
            publication_distribution(2)

    def test_single_mode_parameters(self):
        dims = single_mode_distribution().dimensions
        assert [m.means[0] for m in dims] == [1.0, 10.0, 9.0, 9.0]
        assert [m.sigmas[0] for m in dims] == [1.0, 6.0, 2.0, 6.0]

    def test_four_mode_middle_dimensions(self):
        dims = four_mode_distribution().dimensions
        assert dims[1].means == (12.0, 6.0)
        assert dims[2].means == (4.0, 16.0)
        # Outer dims unchanged from the single-mode case.
        assert dims[0].means == (1.0,)
        assert dims[3].means == (9.0,)

    def test_nine_mode_weights(self):
        dims = nine_mode_distribution().dimensions
        assert dims[1].weights == (0.3, 0.4, 0.3)
        assert dims[2].weights == (0.3, 0.4, 0.3)

    def test_all_scenarios_are_4d(self):
        for modes in (1, 4, 9):
            assert publication_distribution(modes).ndim == 4


class TestProductMixture:
    def test_cell_probability_of_everything_is_one(self):
        dist = nine_mode_distribution()
        assert dist.cell_probability(
            [-np.inf] * 4, [np.inf] * 4
        ) == pytest.approx(1.0)

    def test_cell_probability_factorizes(self):
        dist = four_mode_distribution()
        lows = [0.0, 5.0, 2.0, 3.0]
        highs = [2.0, 15.0, 18.0, 12.0]
        expected = 1.0
        for mixture, lo, hi in zip(dist.dimensions, lows, highs):
            expected *= mixture.interval_probability(lo, hi)
        assert dist.cell_probability(lows, highs) == pytest.approx(expected)

    def test_cell_probability_empty_cell(self):
        dist = single_mode_distribution()
        assert dist.cell_probability([0, 0, 0, 0], [0, 1, 1, 1]) == 0.0

    def test_cell_probability_agrees_with_sampling(self, rng):
        dist = nine_mode_distribution()
        lows = np.array([0.0, 5.0, 5.0, 5.0])
        highs = np.array([2.0, 15.0, 12.0, 12.0])
        analytic = dist.cell_probability(lows, highs)
        draws = dist.sample(rng, 50_000)
        empirical = np.mean(
            np.all((draws > lows) & (draws <= highs), axis=1)
        )
        assert empirical == pytest.approx(analytic, abs=0.01)

    def test_per_dimension_masses_sum_to_cdf_span(self):
        dist = single_mode_distribution()
        edges = [np.linspace(-20, 40, 13) for _ in range(4)]
        masses = dist.per_dimension_masses(edges)
        for mixture, edge, mass in zip(dist.dimensions, edges, masses):
            expected = mixture.cdf(edge[-1]) - mixture.cdf(edge[0])
            assert mass.sum() == pytest.approx(expected, abs=1e-9)

    def test_per_dimension_masses_validation(self):
        with pytest.raises(ValueError):
            single_mode_distribution().per_dimension_masses(
                [np.array([0.0, 1.0])]
            )

    def test_pdf_positive_at_mode(self):
        dist = single_mode_distribution()
        assert dist.pdf([1.0, 10.0, 9.0, 9.0]) > 0.0

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            single_mode_distribution().cell_probability([0.0], [1.0])
        with pytest.raises(ValueError):
            single_mode_distribution().pdf([0.0, 1.0])


class TestPublicationGenerator:
    def test_shapes(self, small_topology):
        generator = PublicationGenerator(
            single_mode_distribution(),
            small_topology.all_stub_nodes(),
            seed=5,
        )
        points, publishers = generator.generate(100)
        assert points.shape == (100, 4)
        assert publishers.shape == (100,)

    def test_publishers_from_allowed_set(self, small_topology):
        allowed = small_topology.all_stub_nodes()[:3]
        generator = PublicationGenerator(
            single_mode_distribution(), allowed, seed=5
        )
        _, publishers = generator.generate(200)
        assert set(publishers.tolist()) <= set(allowed)

    def test_deterministic(self, small_topology):
        nodes = small_topology.all_stub_nodes()
        a = PublicationGenerator(
            nine_mode_distribution(), nodes, seed=8
        ).generate(50)
        b = PublicationGenerator(
            nine_mode_distribution(), nodes, seed=8
        ).generate(50)
        assert np.array_equal(a[0], b[0])
        assert np.array_equal(a[1], b[1])

    def test_empty_publisher_set_rejected(self):
        with pytest.raises(ValueError):
            PublicationGenerator(single_mode_distribution(), [])

    def test_negative_count_rejected(self, small_topology):
        generator = PublicationGenerator(
            single_mode_distribution(),
            small_topology.all_stub_nodes(),
        )
        with pytest.raises(ValueError):
            generator.generate(-1)

    def test_event_means_near_scenario_means(self, small_topology, rng):
        generator = PublicationGenerator(
            single_mode_distribution(),
            small_topology.all_stub_nodes(),
            seed=6,
        )
        points, _ = generator.generate(20_000)
        assert np.allclose(
            points.mean(axis=0), [1.0, 10.0, 9.0, 9.0], atol=0.2
        )
