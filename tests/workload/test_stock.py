"""Unit tests for the synthetic trading day."""

import numpy as np
import pytest

from repro.workload import StockMarketModel, StockMarketParams


@pytest.fixture(scope="module")
def day():
    params = StockMarketParams(num_stocks=400, num_trades=40_000)
    return StockMarketModel(params, seed=77).generate_day()


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            StockMarketParams(num_stocks=0)
        with pytest.raises(ValueError):
            StockMarketParams(price_sigma=0.0)
        with pytest.raises(ValueError):
            StockMarketParams(
                opening_price_low=10.0, opening_price_high=5.0
            )


class TestTradingDay:
    def test_shapes(self, day):
        assert day.num_trades == 40_000
        assert day.num_stocks == 400
        assert day.price.shape == day.stock.shape == day.amount.shape

    def test_stocks_in_range(self, day):
        assert day.stock.min() >= 0
        assert day.stock.max() < day.num_stocks

    def test_prices_positive(self, day):
        assert day.price.min() > 0

    def test_normalized_prices_center_on_one(self, day):
        normalized = day.normalized_prices()
        assert normalized.mean() == pytest.approx(1.0, abs=0.005)
        assert normalized.std() == pytest.approx(0.012, abs=0.003)

    def test_trades_per_stock_sums(self, day):
        assert day.trades_per_stock().sum() == day.num_trades

    def test_popularity_ranking_sorted(self, day):
        ranking = day.popularity_ranking()
        assert np.all(np.diff(ranking) <= 0)

    def test_popularity_is_skewed(self, day):
        ranking = day.popularity_ranking()
        # Zipf: the busiest stock roughly twice the second busiest.
        assert ranking[0] / ranking[1] == pytest.approx(2.0, rel=0.35)

    def test_top_stocks(self, day):
        top = day.top_stocks(3)
        counts = day.trades_per_stock()
        assert counts[top[0]] >= counts[top[1]] >= counts[top[2]]
        assert counts[top[0]] == counts.max()

    def test_trades_of_consistency(self, day):
        stock = int(day.top_stocks(1)[0])
        prices, amounts = day.trades_of(stock)
        assert len(prices) == day.trades_per_stock()[stock]
        assert len(prices) == len(amounts)
        assert prices.mean() == pytest.approx(1.0, abs=0.01)

    def test_amounts_heavy_tailed(self, day):
        # Pareto with alpha=1.2: mean far above the median.
        assert day.amount.mean() > 2 * np.median(day.amount)
        assert day.amount.min() >= StockMarketParams().amount_scale

    def test_deterministic(self):
        params = StockMarketParams(num_stocks=50, num_trades=500)
        a = StockMarketModel(params, seed=5).generate_day()
        b = StockMarketModel(params, seed=5).generate_day()
        assert np.array_equal(a.stock, b.stock)
        assert np.array_equal(a.price, b.price)
