"""Unit tests for the Zipf and Pareto samplers."""

import math

import numpy as np
import pytest

from repro.workload import ParetoSampler, ZipfSampler, zipf_weights


class TestZipfWeights:
    def test_normalized(self):
        assert zipf_weights(10).sum() == pytest.approx(1.0)

    def test_classic_ratios(self):
        w = zipf_weights(4, theta=1.0)
        assert w[0] / w[1] == pytest.approx(2.0)
        assert w[0] / w[3] == pytest.approx(4.0)

    def test_theta_zero_is_uniform(self):
        w = zipf_weights(5, theta=0.0)
        assert np.allclose(w, 0.2)

    def test_higher_theta_more_skewed(self):
        mild = zipf_weights(10, theta=0.5)
        steep = zipf_weights(10, theta=2.0)
        assert steep[0] > mild[0]
        assert steep[-1] < mild[-1]

    def test_validation(self):
        with pytest.raises(ValueError):
            zipf_weights(0)
        with pytest.raises(ValueError):
            zipf_weights(5, theta=-1.0)


class TestZipfSampler:
    def test_sample_range(self, rng):
        sampler = ZipfSampler(10, rng=rng)
        draws = sampler.sample(1000)
        assert draws.min() >= 0
        assert draws.max() <= 9

    def test_empirical_frequencies(self, rng):
        sampler = ZipfSampler(5, theta=1.0, rng=rng)
        draws = sampler.sample(50_000)
        counts = np.bincount(draws, minlength=5)
        expected = sampler.expected_counts(50_000)
        assert np.allclose(counts, expected, rtol=0.1)

    def test_rank_zero_most_popular(self, rng):
        draws = ZipfSampler(8, rng=rng).sample(20_000)
        counts = np.bincount(draws, minlength=8)
        assert counts[0] == counts.max()

    def test_sample_shuffled(self, rng):
        sampler = ZipfSampler(3, rng=rng)
        items = ["a", "b", "c"]
        picked = sampler.sample_shuffled(items, 100)
        assert set(picked) <= set(items)
        assert len(picked) == 100

    def test_sample_shuffled_length_mismatch(self, rng):
        with pytest.raises(ValueError):
            ZipfSampler(3, rng=rng).sample_shuffled(["a"], 5)


class TestParetoSampler:
    def test_support(self, rng):
        sampler = ParetoSampler(scale=4.0, shape=1.0, rng=rng)
        draws = sampler.sample(5000)
        assert draws.min() >= 4.0

    def test_cap_respected(self, rng):
        sampler = ParetoSampler(scale=4.0, shape=1.0, cap=50.0, rng=rng)
        draws = sampler.sample(5000)
        assert draws.min() >= 4.0
        assert draws.max() <= 50.0

    def test_survival_function(self, rng):
        sampler = ParetoSampler(scale=2.0, shape=1.5, rng=rng)
        draws = sampler.sample(100_000)
        for x in [3.0, 5.0, 10.0]:
            empirical = float(np.mean(draws > x))
            assert empirical == pytest.approx(sampler.survival(x), abs=0.01)

    def test_survival_below_scale_is_one(self):
        sampler = ParetoSampler(scale=2.0, shape=1.0)
        assert sampler.survival(1.0) == 1.0

    def test_pdf_zero_below_scale(self):
        assert ParetoSampler(4.0, 1.0).pdf(3.0) == 0.0
        assert ParetoSampler(4.0, 1.0).pdf(5.0) > 0.0

    def test_mean(self):
        assert ParetoSampler(4.0, 1.0).mean == math.inf
        assert ParetoSampler(4.0, 2.0).mean == pytest.approx(8.0)

    def test_heavier_tail_with_smaller_alpha(self, rng):
        light = ParetoSampler(1.0, 3.0, rng=np.random.default_rng(1))
        heavy = ParetoSampler(1.0, 0.8, rng=np.random.default_rng(1))
        assert np.median(heavy.sample(20_000)) >= np.median(
            light.sample(20_000)
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoSampler(0.0, 1.0)
        with pytest.raises(ValueError):
            ParetoSampler(1.0, 0.0)
        with pytest.raises(ValueError):
            ParetoSampler(4.0, 1.0, cap=3.0)
