"""Unit tests for the stock subscription generator."""

import math

import numpy as np
import pytest

from repro.workload import (
    PRICE_PARAMS,
    VOLUME_PARAMS,
    DIM_BST,
    DIM_NAME,
    DIM_QUOTE,
    DIM_VOLUME,
    IntervalDistributionParams,
    NameFieldParams,
    StockSubscriptionGenerator,
    bst_interval,
)


@pytest.fixture(scope="module")
def many_subscriptions(paper_topology):
    generator = StockSubscriptionGenerator(paper_topology, seed=42)
    return generator.generate(3000)


class TestParamValidation:
    def test_paper_rows(self):
        assert PRICE_PARAMS.q0 == 0.15
        assert VOLUME_PARAMS.q0 == 0.35
        assert PRICE_PARAMS.bounded_probability == pytest.approx(0.65)
        assert VOLUME_PARAMS.bounded_probability == pytest.approx(0.45)

    def test_probability_validation(self):
        with pytest.raises(ValueError):
            IntervalDistributionParams(
                q0=0.6, q1=0.3, q2=0.3,
                mu1=0, sigma1=1, mu2=0, sigma2=1, mu3=0, sigma3=1,
                pareto_c=1, pareto_alpha=1,
            )
        with pytest.raises(ValueError):
            IntervalDistributionParams(
                q0=-0.1, q1=0.1, q2=0.1,
                mu1=0, sigma1=1, mu2=0, sigma2=1, mu3=0, sigma3=1,
                pareto_c=1, pareto_alpha=1,
            )

    def test_sigma_validation(self):
        with pytest.raises(ValueError):
            IntervalDistributionParams(
                q0=0.1, q1=0.1, q2=0.1,
                mu1=0, sigma1=0, mu2=0, sigma2=1, mu3=0, sigma3=1,
                pareto_c=1, pareto_alpha=1,
            )


class TestBstField:
    def test_bst_interval_codes(self):
        assert bst_interval("B").contains(1.0)
        assert bst_interval("S").contains(2.0)
        assert bst_interval("T").contains(3.0)
        assert not bst_interval("B").contains(2.0)

    def test_bst_interval_rejects_unknown(self):
        with pytest.raises(ValueError):
            bst_interval("X")

    def test_bst_frequencies(self, many_subscriptions):
        codes = [
            s.rectangle.highs[DIM_BST] for s in many_subscriptions
        ]
        counts = {c: codes.count(c) for c in (1.0, 2.0, 3.0)}
        total = len(codes)
        assert counts[1.0] / total == pytest.approx(0.4, abs=0.04)
        assert counts[2.0] / total == pytest.approx(0.4, abs=0.04)
        assert counts[3.0] / total == pytest.approx(0.2, abs=0.04)

    def test_bst_is_unit_interval(self, many_subscriptions):
        for s in many_subscriptions[:200]:
            lo = s.rectangle.lows[DIM_BST]
            hi = s.rectangle.highs[DIM_BST]
            assert hi - lo == pytest.approx(1.0)


class TestNameField:
    def test_centers_follow_block(self, many_subscriptions):
        params = NameFieldParams()
        by_block = {0: [], 1: [], 2: []}
        for s in many_subscriptions:
            lo = s.rectangle.lows[DIM_NAME]
            hi = s.rectangle.highs[DIM_NAME]
            by_block[s.block].append((lo + hi) / 2)
        for block, centers in by_block.items():
            expected = params.block_centers[block]
            assert np.mean(centers) == pytest.approx(expected, abs=0.5)

    def test_lengths_within_zipf_range(self, many_subscriptions):
        params = NameFieldParams()
        for s in many_subscriptions[:300]:
            length = (
                s.rectangle.highs[DIM_NAME] - s.rectangle.lows[DIM_NAME]
            )
            # (center ± length/2) loses half an ulp now and then.
            assert 1.0 - 1e-9 <= length <= params.max_length + 1e-9

    def test_short_lengths_most_common(self, many_subscriptions):
        lengths = [
            round(s.rectangle.highs[DIM_NAME] - s.rectangle.lows[DIM_NAME])
            for s in many_subscriptions
        ]
        counts = {v: lengths.count(v) for v in set(lengths)}
        assert counts[min(counts)] == max(counts.values())

    def test_center_for_block_fallback(self):
        params = NameFieldParams()
        assert params.center_for_block(99) == params.block_centers[-1]


class TestParametricFields:
    @pytest.mark.parametrize(
        "dim, params",
        [(DIM_QUOTE, PRICE_PARAMS), (DIM_VOLUME, VOLUME_PARAMS)],
    )
    def test_branch_frequencies(self, many_subscriptions, dim, params):
        wildcard = lower = upper = bounded = 0
        for s in many_subscriptions:
            lo, hi = s.rectangle.lows[dim], s.rectangle.highs[dim]
            if math.isinf(lo) and math.isinf(hi):
                wildcard += 1
            elif math.isinf(hi):
                lower += 1
            elif math.isinf(lo):
                upper += 1
            else:
                bounded += 1
        total = len(many_subscriptions)
        assert wildcard / total == pytest.approx(params.q0, abs=0.03)
        assert lower / total == pytest.approx(params.q1, abs=0.03)
        assert upper / total == pytest.approx(params.q2, abs=0.03)
        assert bounded / total == pytest.approx(
            params.bounded_probability, abs=0.03
        )

    def test_ray_endpoints_near_mu(self, many_subscriptions):
        endpoints = [
            s.rectangle.lows[DIM_QUOTE]
            for s in many_subscriptions
            if math.isinf(s.rectangle.highs[DIM_QUOTE])
            and not math.isinf(s.rectangle.lows[DIM_QUOTE])
        ]
        assert np.mean(endpoints) == pytest.approx(
            PRICE_PARAMS.mu1, abs=0.3
        )

    def test_bounded_lengths_at_least_pareto_scale(
        self, many_subscriptions
    ):
        lengths = [
            s.rectangle.highs[DIM_QUOTE] - s.rectangle.lows[DIM_QUOTE]
            for s in many_subscriptions
            if s.rectangle.side(DIM_QUOTE).is_bounded
        ]
        assert min(lengths) >= PRICE_PARAMS.pareto_c - 1e-9

    def test_pareto_cap_bounds_lengths(self, paper_topology):
        generator = StockSubscriptionGenerator(
            paper_topology, pareto_cap=20.0, seed=3
        )
        for s in generator.generate(500):
            side = s.rectangle.side(DIM_VOLUME)
            if side.is_bounded:
                assert side.length <= 20.0 + 1e-9


class TestPlacementIntegration:
    def test_block_shares(self, many_subscriptions):
        blocks = np.bincount(
            [s.block for s in many_subscriptions], minlength=3
        ) / len(many_subscriptions)
        assert blocks[0] == pytest.approx(0.4, abs=0.04)
        assert blocks[1] == pytest.approx(0.3, abs=0.04)
        assert blocks[2] == pytest.approx(0.3, abs=0.04)

    def test_nodes_are_stub_nodes(
        self, paper_topology, many_subscriptions
    ):
        stub_nodes = set(paper_topology.all_stub_nodes())
        assert all(s.node in stub_nodes for s in many_subscriptions)

    def test_node_matches_declared_stub(
        self, paper_topology, many_subscriptions
    ):
        for s in many_subscriptions[:300]:
            assert s.node in paper_topology.stub_members[s.stub]
            assert paper_topology.stub_block[s.stub] == s.block

    def test_subscription_ids_sequential(self, many_subscriptions):
        assert [s.subscription_id for s in many_subscriptions] == list(
            range(len(many_subscriptions))
        )

    def test_deterministic(self, paper_topology):
        a = StockSubscriptionGenerator(paper_topology, seed=9).generate(50)
        b = StockSubscriptionGenerator(paper_topology, seed=9).generate(50)
        assert [s.rectangle for s in a] == [s.rectangle for s in b]
        assert [s.node for s in a] == [s.node for s in b]

    def test_negative_count_rejected(self, paper_topology):
        with pytest.raises(ValueError):
            StockSubscriptionGenerator(paper_topology, seed=1).generate(-1)
