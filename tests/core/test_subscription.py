"""Unit tests for subscriptions and the subscription table."""

import math

import numpy as np
import pytest

from repro.core import Subscription, SubscriptionTable, decompose_predicates
from repro.geometry import FULL_LINE, Interval, Rectangle


class TestSubscription:
    def test_matches(self):
        sub = Subscription(
            0,
            42,
            Rectangle.from_intervals([Interval(0, 1), Interval(0, 1)]),
        )
        assert sub.matches((0.5, 0.5))
        assert not sub.matches((1.5, 0.5))
        assert sub.ndim == 2


class TestDecomposition:
    def test_single_range_per_dim(self):
        rects = decompose_predicates([[Interval(0, 1)], [Interval(2, 3)]])
        assert len(rects) == 1

    def test_cross_product(self):
        rects = decompose_predicates(
            [
                [Interval(0, 1), Interval(5, 6)],
                [Interval(2, 3), Interval(7, 8), Interval(9, 10)],
            ]
        )
        assert len(rects) == 6

    def test_empty_predicate_means_wildcard(self):
        rects = decompose_predicates([[], [Interval(0, 1)]])
        assert len(rects) == 1
        assert rects[0].side(0) == FULL_LINE

    def test_empty_intervals_dropped(self):
        rects = decompose_predicates(
            [[Interval(1, 0), Interval(0, 1)], [Interval(2, 3)]]
        )
        assert len(rects) == 1
        assert rects[0].side(0) == Interval(0, 1)

    def test_all_empty_falls_back_to_wildcard(self):
        rects = decompose_predicates([[Interval(1, 0)], [Interval(2, 3)]])
        assert rects[0].side(0) == FULL_LINE

    def test_multi_range_semantics(self):
        # price in (10,20] or (30,40] — an event in either range matches
        # exactly one decomposed rectangle.
        rects = decompose_predicates(
            [[Interval(10, 20), Interval(30, 40)]]
        )
        hits_15 = [r for r in rects if r.contains_point((15,))]
        hits_35 = [r for r in rects if r.contains_point((35,))]
        hits_25 = [r for r in rects if r.contains_point((25,))]
        assert len(hits_15) == 1
        assert len(hits_35) == 1
        assert not hits_25


class TestSubscriptionTable:
    def test_add_assigns_sequential_ids(self):
        table = SubscriptionTable(2)
        r = Rectangle.cube(0.0, 1.0, 2)
        first = table.add(10, r)
        second = table.add(20, r)
        assert first.subscription_id == 0
        assert second.subscription_id == 1
        assert len(table) == 2

    def test_dimension_checked(self):
        table = SubscriptionTable(2)
        with pytest.raises(ValueError):
            table.add(1, Rectangle.cube(0.0, 1.0, 3))

    def test_ndim_validation(self):
        with pytest.raises(ValueError):
            SubscriptionTable(0)

    def test_add_predicates_decomposes(self):
        table = SubscriptionTable(2)
        subs = table.add_predicates(
            5, [[Interval(0, 1), Interval(2, 3)], [Interval(0, 9)]]
        )
        assert len(subs) == 2
        assert all(s.subscriber == 5 for s in subs)

    def test_add_predicates_arity(self):
        table = SubscriptionTable(2)
        with pytest.raises(ValueError):
            table.add_predicates(5, [[Interval(0, 1)]])

    def test_extend(self):
        table = SubscriptionTable(1)
        table.extend(
            (i, Rectangle((float(i),), (float(i) + 1,))) for i in range(4)
        )
        assert len(table) == 4

    def test_subscribers_sorted_unique(self):
        table = SubscriptionTable(1)
        r = Rectangle((0.0,), (1.0,))
        for subscriber in (30, 10, 30, 20):
            table.add(subscriber, r)
        assert table.subscribers == [10, 20, 30]

    def test_subscribers_of(self):
        table = SubscriptionTable(1)
        r = Rectangle((0.0,), (1.0,))
        for subscriber in (7, 7, 9):
            table.add(subscriber, r)
        assert table.subscribers_of([0, 1]) == [7]
        assert table.subscribers_of([0, 2]) == [7, 9]
        assert table.subscribers_of([]) == []

    def test_to_arrays(self):
        table = SubscriptionTable(2)
        table.add(1, Rectangle((0.0, 2.0), (1.0, 3.0)))
        lows, highs = table.to_arrays()
        assert lows.tolist() == [[0.0, 2.0]]
        assert highs.tolist() == [[1.0, 3.0]]

    def test_to_arrays_empty_table(self):
        with pytest.raises(ValueError):
            SubscriptionTable(2).to_arrays()

    def test_from_placed(self, small_placed):
        table = SubscriptionTable.from_placed(small_placed)
        assert len(table) == len(small_placed)
        assert table[0].subscriber == small_placed[0].node

    def test_iteration_and_indexing(self):
        table = SubscriptionTable(1)
        table.add(1, Rectangle((0.0,), (1.0,)))
        assert [s.subscription_id for s in table] == [0]
        assert table[0].subscriber == 1
