"""Integration tests for the end-to-end broker."""

import numpy as np
import pytest

from repro.clustering import ForgyKMeansClustering
from repro.core import (
    DeliveryMethod,
    Event,
    PubSubBroker,
    ThresholdPolicy,
)


@pytest.fixture(scope="module")
def broker(small_topology, small_table, nine_mode_density):
    return PubSubBroker.preprocess(
        small_topology,
        small_table,
        ForgyKMeansClustering(),
        num_groups=6,
        density=nine_mode_density,
        cells_per_dim=6,
        max_cells=60,
        policy=ThresholdPolicy(0.15),
    )


class TestPublish:
    def test_record_fields_consistent(self, broker, small_events):
        points, publishers = small_events
        for i in range(50):
            event = Event.create(i, int(publishers[i]), points[i])
            record = broker.publish(event)
            if record.method is DeliveryMethod.NOT_SENT:
                assert record.scheme_cost == 0.0
                assert record.match.is_empty
            else:
                assert record.unicast_cost >= record.ideal_cost - 1e-9
                assert record.scheme_cost > 0.0 or not record.match.subscribers

    def test_unicast_decision_costs_unicast(self, broker, small_events):
        points, publishers = small_events
        seen = False
        for i in range(len(points)):
            event = Event.create(i, int(publishers[i]), points[i])
            record = broker.publish(event)
            if record.method is DeliveryMethod.UNICAST:
                assert record.scheme_cost == pytest.approx(
                    record.unicast_cost
                )
                seen = True
        assert seen

    def test_multicast_reaches_whole_group(self, broker, small_events):
        points, publishers = small_events
        seen = False
        for i in range(len(points)):
            event = Event.create(i, int(publishers[i]), points[i])
            record = broker.publish(event)
            if record.method is DeliveryMethod.MULTICAST:
                q = record.decision.group
                members = broker.partition.group(q).members
                expected = broker.costs.multicast_cost(
                    event.publisher, members
                )
                assert record.scheme_cost == pytest.approx(expected)
                seen = True
        assert seen

    def test_matched_subscribers_inside_group(self, broker, small_events):
        points, publishers = small_events
        for i in range(len(points)):
            event = Event.create(i, int(publishers[i]), points[i])
            record = broker.publish(event)
            q = record.decision.group
            if q > 0:
                members = set(broker.partition.group(q).members)
                assert set(record.match.subscribers) <= members


class TestRun:
    def test_tally_counts(self, broker, small_events):
        points, publishers = small_events
        tally, records = broker.run(points, publishers, collect_records=True)
        assert tally.messages == len(points)
        assert len(records) == len(points)
        assert (
            tally.multicasts_sent + tally.unicasts_sent
            == sum(
                1
                for r in records
                if r.method is not DeliveryMethod.NOT_SENT
            )
        )

    def test_run_without_records(self, broker, small_events):
        points, publishers = small_events
        tally, records = broker.run(points, publishers)
        assert records == []
        assert tally.messages == len(points)

    def test_shape_validation(self, broker):
        with pytest.raises(ValueError):
            broker.run(np.zeros((3, 4)), [1, 2])

    def test_deterministic(self, broker, small_events):
        points, publishers = small_events
        a, _ = broker.run(points, publishers)
        b, _ = broker.run(points, publishers)
        assert a.scheme == b.scheme
        assert a.multicasts_sent == b.multicasts_sent


class TestPolicySweep:
    def test_with_policy_shares_state(self, broker):
        sibling = broker.with_policy(ThresholdPolicy(0.5))
        assert sibling.partition is broker.partition
        assert sibling.costs is broker.costs
        assert sibling.policy.threshold == 0.5

    def test_threshold_one_always_at_least_as_good_as_unicast(
        self, broker, small_events
    ):
        # At t slightly above any achievable ratio, the scheme is pure
        # unicast: improvement must be ~0 (never negative).
        points, publishers = small_events
        tally, _ = broker.with_policy(ThresholdPolicy(1.0)).run(
            points, publishers
        )
        assert tally.improvement_percent == pytest.approx(0.0, abs=1e-6)

    def test_static_vs_dynamic(self, broker, small_events):
        points, publishers = small_events
        static, _ = broker.with_policy(ThresholdPolicy(0.0)).run(
            points, publishers
        )
        best = max(
            broker.with_policy(ThresholdPolicy(t))
            .run(points, publishers)[0]
            .improvement_percent
            for t in (0.0, 0.05, 0.1, 0.2, 0.4)
        )
        # The dynamic optimum can never lose to the static scheme —
        # t=0 is inside the swept set.
        assert best >= static.improvement_percent

    def test_monotone_multicast_count(self, broker, small_events):
        # Raising the threshold can only reduce multicasts.
        points, publishers = small_events
        previous = None
        for t in (0.0, 0.1, 0.3, 0.7, 1.0):
            tally, _ = broker.with_policy(ThresholdPolicy(t)).run(
                points, publishers
            )
            if previous is not None:
                assert tally.multicasts_sent <= previous
            previous = tally.multicasts_sent


class TestPreprocessOptions:
    def test_matcher_backend_choice(
        self, small_topology, small_table, nine_mode_density, small_events
    ):
        points, publishers = small_events
        tallies = []
        for backend in ("stree", "linear"):
            broker = PubSubBroker.preprocess(
                small_topology,
                small_table,
                ForgyKMeansClustering(),
                num_groups=4,
                density=nine_mode_density,
                cells_per_dim=5,
                max_cells=40,
                matcher_backend=backend,
            )
            tally, _ = broker.run(points[:80], publishers[:80])
            tallies.append(tally)
        # Identical semantics regardless of index backend.
        assert tallies[0].scheme == pytest.approx(tallies[1].scheme)
        assert tallies[0].multicasts_sent == tallies[1].multicasts_sent


class TestDegradedPublish:
    """publish(degraded=True): the overload DEGRADED fast path floods
    the covering group instead of running the exact match."""

    def find_grouped_event(self, broker, small_events):
        points, publishers = small_events
        for i, point in enumerate(points):
            if broker.partition.locate(point) > 0:
                return Event.create(i, int(publishers[i]), point)
        pytest.skip("workload produced no grouped event")

    def test_floods_whole_group_as_multicast(self, broker, small_events):
        event = self.find_grouped_event(broker, small_events)
        record = broker.publish(event, degraded=True)
        q = broker.partition.locate(event.point)
        members = set(broker.partition.group(q).members) - {event.publisher}
        assert record.method is DeliveryMethod.MULTICAST
        assert set(record.match.subscribers) == members
        # The exact match was skipped: no subscription ids attach.
        assert record.match.subscription_ids == ()

    def test_flood_covers_the_exact_interested_set(
        self, broker, small_events
    ):
        # Superset delivery: M_q ⊇ interested, the clustering invariant
        # degraded mode leans on.
        points, publishers = small_events
        checked = 0
        for i, point in enumerate(points):
            if broker.partition.locate(point) <= 0:
                continue
            event = Event.create(i, int(publishers[i]), point)
            exact = set(broker.publish(event).match.subscribers)
            flooded = set(
                broker.publish(event, degraded=True).match.subscribers
            )
            assert exact - {event.publisher} <= flooded
            checked += 1
        assert checked > 0

    def test_catchall_falls_back_to_exact_path(self, broker):
        # A point far outside every cluster lands in the catchall
        # (q = 0): nothing to flood, so the exact path runs anyway.
        point = (1e6, 1e6, 1e6, 1e6)
        assert broker.partition.locate(point) == 0
        event = Event.create(0, 0, point)
        degraded = broker.publish(event, degraded=True)
        exact = broker.publish(event)
        assert degraded.match.subscription_ids == exact.match.subscription_ids
        assert degraded.method is exact.method
