"""Unit tests for redundant-subscription elimination."""

import numpy as np
import pytest

from repro.core import MatchingEngine, SubscriptionTable
from repro.core.covering import find_covered_subscriptions, prune_covered
from repro.geometry import Interval, Rectangle


def cube(lo, hi):
    return Rectangle.cube(lo, hi, 2)


class TestFindCovered:
    def test_nested_same_subscriber(self):
        table = SubscriptionTable(2)
        table.add(1, cube(0, 10))
        table.add(1, cube(2, 5))
        report = find_covered_subscriptions(table)
        assert report.covered == (1,)
        assert report.redundancy_fraction == 0.5

    def test_cross_subscriber_not_pruned(self):
        table = SubscriptionTable(2)
        table.add(1, cube(0, 10))
        table.add(2, cube(2, 5))
        assert find_covered_subscriptions(table).covered == ()

    def test_duplicates_keep_one(self):
        table = SubscriptionTable(2)
        table.add(1, cube(0, 5))
        table.add(1, cube(0, 5))
        table.add(1, cube(0, 5))
        report = find_covered_subscriptions(table)
        assert report.covered == (1, 2)  # the lowest id survives

    def test_partial_overlap_not_covered(self):
        table = SubscriptionTable(2)
        table.add(1, cube(0, 5))
        table.add(1, cube(3, 8))
        assert find_covered_subscriptions(table).covered == ()

    def test_unbounded_covers_bounded(self):
        table = SubscriptionTable(2)
        table.add(1, Rectangle.full(2))
        table.add(1, cube(0, 5))
        assert find_covered_subscriptions(table).covered == (1,)

    def test_empty_rectangle_is_redundant(self):
        table = SubscriptionTable(2)
        table.add(1, Rectangle((5.0, 0.0), (0.0, 5.0)))  # empty side
        table.add(1, cube(0, 5))
        assert find_covered_subscriptions(table).covered == (0,)

    def test_empty_table(self):
        report = find_covered_subscriptions(SubscriptionTable(2))
        assert report.covered == ()
        assert report.redundancy_fraction == 0.0


class TestPruneCovered:
    def test_matching_semantics_preserved(self, small_table, small_events):
        pruned, report = prune_covered(small_table)
        assert len(pruned) == len(small_table) - len(report.covered)
        original = MatchingEngine(small_table)
        reduced = MatchingEngine(pruned)
        points, _ = small_events
        for point in points[:80]:
            assert (
                original.match_point(point).subscribers
                == reduced.match_point(point).subscribers
            )

    def test_decomposed_multirange_not_pruned(self):
        # Decomposition produces disjoint rectangles — none covered.
        table = SubscriptionTable(1)
        table.add_predicates(
            7, [[Interval(0.0, 1.0), Interval(5.0, 6.0)]]
        )
        pruned, report = prune_covered(table)
        assert len(pruned) == 2
        assert report.covered == ()

    def test_prune_is_idempotent(self):
        table = SubscriptionTable(2)
        table.add(1, cube(0, 10))
        table.add(1, cube(2, 5))
        table.add(1, cube(3, 4))
        once, _ = prune_covered(table)
        twice, report = prune_covered(once)
        assert len(once) == len(twice) == 1
        assert report.covered == ()
