"""Unit tests for group-efficiency tuning and the oracle bound."""

import numpy as np
import pytest

from repro.clustering import ForgyKMeansClustering
from repro.core import (
    PerGroupThresholdPolicy,
    PubSubBroker,
    ThresholdPolicy,
    ThresholdTuner,
    oracle_tally,
)


@pytest.fixture(scope="module")
def broker(small_topology, small_table, nine_mode_density):
    return PubSubBroker.preprocess(
        small_topology,
        small_table,
        ForgyKMeansClustering(),
        num_groups=6,
        density=nine_mode_density,
        cells_per_dim=6,
        max_cells=60,
        policy=ThresholdPolicy(0.15),
    )


class TestPerGroupPolicy:
    def test_lookup_with_default(self):
        policy = PerGroupThresholdPolicy(0.15, {2: 0.5})
        assert policy.threshold_for(2) == 0.5
        assert policy.threshold_for(1) == 0.15

    def test_decides_like_threshold_policy(self):
        policy = PerGroupThresholdPolicy(0.15, {3: 0.5})
        # group 3 uses t=0.5: ratio 0.3 -> unicast
        from repro.core import DeliveryMethod

        assert (
            policy.decide(3, 10, group=3).method
            is DeliveryMethod.UNICAST
        )
        # group 1 uses the default 0.15: ratio 0.3 -> multicast
        assert (
            policy.decide(3, 10, group=1).method
            is DeliveryMethod.MULTICAST
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            PerGroupThresholdPolicy(default_threshold=2.0)
        with pytest.raises(ValueError):
            PerGroupThresholdPolicy(0.1, {1: 1.5})


class TestThresholdTuner:
    def test_collect_partitions_events(self, broker, small_events):
        points, publishers = small_events
        tuner = ThresholdTuner(broker)
        samples, catchall, unmatched = tuner.collect(points, publishers)
        total_sampled = sum(len(v) for v in samples.values())
        assert total_sampled + catchall + unmatched == len(points)
        for q, group_samples in samples.items():
            group = broker.partition.group(q)
            for sample in group_samples:
                assert sample.group_size == group.size
                assert 0.0 < sample.ratio <= 1.0
                assert sample.oracle_cost <= sample.unicast_cost
                assert sample.oracle_cost <= sample.multicast_cost

    def test_tuned_beats_every_global_threshold_in_training(
        self, broker, small_events
    ):
        points, publishers = small_events
        report = ThresholdTuner(broker).tune(points, publishers)
        tuned, _ = broker.with_policy(report.policy).run(
            points, publishers
        )
        for t in (0.0, 0.05, 0.15, 0.3, 0.5, 1.0):
            fixed, _ = broker.with_policy(ThresholdPolicy(t)).run(
                points, publishers
            )
            assert (
                tuned.improvement_percent
                >= fixed.improvement_percent - 1e-6
            ), t

    def test_oracle_dominates_everything(self, broker, small_events):
        points, publishers = small_events
        oracle = oracle_tally(broker, points, publishers)
        report = ThresholdTuner(broker).tune(points, publishers)
        tuned, _ = broker.with_policy(report.policy).run(
            points, publishers
        )
        assert (
            oracle.improvement_percent
            >= tuned.improvement_percent - 1e-6
        )
        assert oracle.improvement_percent >= -1e-9  # never worse than unicast
        assert oracle.messages == len(points)

    def test_efficiency_records(self, broker, small_events):
        points, publishers = small_events
        report = ThresholdTuner(broker).tune(points, publishers)
        assert report.per_group
        for row in report.per_group:
            assert 0.0 <= row.multicast_win_rate <= 1.0
            assert row.threshold_regret >= -1e-9
            assert 0.0 <= row.best_threshold <= 1.0
            assert row.events > 0
            assert report.efficiency_of(row.group) is row
        with pytest.raises(KeyError):
            report.efficiency_of(999)

    def test_tuned_thresholds_cover_observed_groups_only(
        self, broker, small_events
    ):
        points, publishers = small_events
        report = ThresholdTuner(broker).tune(points, publishers)
        observed = {row.group for row in report.per_group}
        assert set(report.policy.per_group) == observed

    def test_candidate_validation(self, broker):
        with pytest.raises(ValueError):
            ThresholdTuner(broker, candidates=())

    def test_threshold_semantics_of_tuner_costs(self, broker, small_events):
        """The tuner's internal cost model matches the broker's run."""
        points, publishers = small_events
        report = ThresholdTuner(broker).tune(points, publishers)
        _, records = broker.with_policy(report.policy).run(
            points, publishers, collect_records=True
        )
        # Recompute the per-group realized cost from the records and
        # compare against the tuner's cost_at_best bookkeeping.
        realized = {}
        for record in records:
            q = record.decision.group
            if q > 0 and not record.match.is_empty:
                realized[q] = realized.get(q, 0.0) + record.scheme_cost
        for row in report.per_group:
            assert realized.get(row.group, 0.0) == pytest.approx(
                row.cost_at_best, rel=1e-9
            )
