"""Unit tests for the distribution-method policy."""

import pytest

from repro.core import DeliveryMethod, ThresholdPolicy


class TestThresholdPolicy:
    def test_threshold_range(self):
        ThresholdPolicy(0.0)
        ThresholdPolicy(1.0)
        with pytest.raises(ValueError):
            ThresholdPolicy(-0.1)
        with pytest.raises(ValueError):
            ThresholdPolicy(1.1)

    def test_no_interested_means_not_sent(self):
        decision = ThresholdPolicy(0.15).decide(0, 100, group=3)
        assert decision.method is DeliveryMethod.NOT_SENT
        assert decision.interested == 0

    def test_catchall_means_unicast(self):
        decision = ThresholdPolicy(0.15).decide(5, 0, group=0)
        assert decision.method is DeliveryMethod.UNICAST

    def test_below_threshold_unicasts(self):
        # 10/100 = 0.1 < 0.15
        decision = ThresholdPolicy(0.15).decide(10, 100, group=1)
        assert decision.method is DeliveryMethod.UNICAST
        assert decision.interested_ratio == pytest.approx(0.1)

    def test_at_threshold_multicasts(self):
        # The rule is strict: unicast iff ratio < t.
        decision = ThresholdPolicy(0.15).decide(15, 100, group=1)
        assert decision.method is DeliveryMethod.MULTICAST

    def test_above_threshold_multicasts(self):
        decision = ThresholdPolicy(0.15).decide(60, 100, group=1)
        assert decision.method is DeliveryMethod.MULTICAST

    def test_zero_threshold_always_multicasts(self):
        # t=0 is the static scheme: any nonzero interest multicasts.
        policy = ThresholdPolicy.static_multicast()
        decision = policy.decide(1, 10_000, group=2)
        assert decision.method is DeliveryMethod.MULTICAST

    def test_threshold_one_unicasts_unless_full(self):
        policy = ThresholdPolicy(1.0)
        assert (
            policy.decide(99, 100, group=1).method
            is DeliveryMethod.UNICAST
        )
        assert (
            policy.decide(100, 100, group=1).method
            is DeliveryMethod.MULTICAST
        )

    def test_decision_records_group(self):
        decision = ThresholdPolicy(0.5).decide(4, 10, group=7)
        assert decision.group == 7
        assert decision.group_size == 10

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(0.5).decide(-1, 10, group=1)
        with pytest.raises(ValueError):
            ThresholdPolicy(0.5).decide(1, -10, group=1)

    def test_ratio_with_no_group(self):
        decision = ThresholdPolicy(0.5).decide(5, 0, group=0)
        assert decision.interested_ratio == 0.0


class TestDegradedFlood:
    def test_always_multicast(self):
        from repro.core.distribution import degraded_flood

        decision = degraded_flood(interested=3, group_size=12, group=4)
        assert decision.method is DeliveryMethod.MULTICAST
        assert decision.group == 4
        assert decision.group_size == 12
        # Even a ratio far below any threshold floods in degraded mode.
        assert decision.interested_ratio == pytest.approx(0.25)

    def test_catchall_rejected(self):
        from repro.core.distribution import degraded_flood

        with pytest.raises(ValueError) as excinfo:
            degraded_flood(interested=1, group_size=0, group=0)
        assert str(excinfo.value) == (
            "degraded_flood: group must be >= 1 (got 0)"
        )
