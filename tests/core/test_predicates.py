"""Unit tests for the predicate language."""

import math

import pytest

from repro.core import SubscriptionTable
from repro.core.predicates import PredicateError, parse_subscription
from repro.geometry import FULL_LINE

SCHEMA = ("bst", "name", "price", "volume")


def matching_points(expression, points):
    """Which of the points satisfy the parsed expression."""
    table = SubscriptionTable(len(SCHEMA))
    table.add_predicates(7, parse_subscription(expression, SCHEMA))
    from repro.core import MatchingEngine

    engine = MatchingEngine(table, backend="linear")
    return [
        point
        for point in points
        if engine.match_point(point).subscribers
    ]


class TestComparisons:
    def test_paper_flagship_subscription(self):
        predicates = parse_subscription(
            "name == 5 and price > 75 and price <= 80 "
            "and volume >= 1000",
            SCHEMA,
        )
        table = SubscriptionTable(4)
        subs = table.add_predicates(1, predicates)
        assert len(subs) == 1
        rectangle = subs[0].rectangle
        assert rectangle.contains_point((2.0, 5.0, 78.0, 1000.0))
        assert not rectangle.contains_point((2.0, 5.0, 75.0, 1000.0))
        assert rectangle.contains_point((2.0, 5.0, 80.0, 1000.0))
        assert not rectangle.contains_point((2.0, 5.0, 80.5, 1000.0))
        assert not rectangle.contains_point((2.0, 5.0, 78.0, 999.0))
        assert not rectangle.contains_point((2.0, 4.0, 78.0, 5000.0))

    def test_unmentioned_attributes_are_wildcards(self):
        predicates = parse_subscription("price > 10", SCHEMA)
        assert predicates[0] == [FULL_LINE]
        assert predicates[1] == [FULL_LINE]
        assert predicates[3] == [FULL_LINE]

    def test_reversed_operand_order(self):
        forward = parse_subscription("price > 10", SCHEMA)
        reversed_form = parse_subscription("10 < price", SCHEMA)
        assert forward == reversed_form

    def test_between_via_two_clauses(self):
        predicates = parse_subscription(
            "price > 75 and price <= 80", SCHEMA
        )
        (interval,) = predicates[2]
        assert not interval.contains(75.0)
        assert interval.contains(80.0)

    def test_contradiction_detected(self):
        with pytest.raises(PredicateError):
            parse_subscription("price > 80 and price < 70", SCHEMA)

    def test_case_insensitive(self):
        predicates = parse_subscription("PRICE >= 9 AND Volume < 3", SCHEMA)
        assert predicates[2][0].contains(9.0)
        assert predicates[3][0].contains(2.0)


class TestDisjunctions:
    def test_in_list(self):
        predicates = parse_subscription("name in (1, 3, 5)", SCHEMA)
        assert len(predicates[1]) == 3
        table = SubscriptionTable(4)
        subs = table.add_predicates(1, predicates)
        assert len(subs) == 3  # decomposed

    def test_not_equals_splits(self):
        predicates = parse_subscription("bst != 2", SCHEMA)
        assert len(predicates[0]) == 2
        values = [iv.contains(2.0) for iv in predicates[0]]
        assert not any(values)
        assert any(iv.contains(1.0) for iv in predicates[0])
        assert any(iv.contains(3.0) for iv in predicates[0])

    def test_in_combined_with_range(self):
        predicates = parse_subscription(
            "name in (1, 2) and name <= 1", SCHEMA
        )
        # The intersection kills the name == 2 alternative.
        assert len(predicates[1]) == 1
        assert predicates[1][0].contains(1.0)

    def test_any_keyword(self):
        predicates = parse_subscription(
            "any price and volume > 5", SCHEMA
        )
        assert predicates[2] == [FULL_LINE]


class TestErrors:
    def test_unknown_attribute(self):
        with pytest.raises(PredicateError):
            parse_subscription("sideways > 3", SCHEMA)

    def test_garbage_rejected(self):
        with pytest.raises(PredicateError):
            parse_subscription("price >> 3", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("price > 3 and", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("and price > 3", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("price 3 >", SCHEMA)

    def test_malformed_in(self):
        with pytest.raises(PredicateError):
            parse_subscription("name in 1, 2", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("name in (1,, 2)", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("name in ()", SCHEMA)
        with pytest.raises(PredicateError):
            parse_subscription("name in (1,)", SCHEMA)

    def test_unlexable(self):
        with pytest.raises(PredicateError):
            parse_subscription("price > $5", SCHEMA)


class TestEndToEnd:
    def test_matching_semantics(self):
        points = [
            (1.0, 5.0, 78.0, 2000.0),   # matches
            (1.0, 5.0, 85.0, 2000.0),   # price out
            (1.0, 4.0, 78.0, 2000.0),   # name out
        ]
        matched = matching_points(
            "name == 5 and price > 75 and price <= 80", points
        )
        assert matched == [points[0]]

    def test_scientific_notation(self):
        predicates = parse_subscription("volume >= 1e3", SCHEMA)
        assert predicates[3][0].contains(1000.0)
        assert not predicates[3][0].contains(999.0)

    def test_negative_numbers(self):
        predicates = parse_subscription("price > -5.5", SCHEMA)
        assert predicates[2][0].contains(-5.0)
        assert not predicates[2][0].contains(-6.0)
