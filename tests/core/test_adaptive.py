"""Unit tests for the adaptive threshold controller."""

import numpy as np
import pytest

from repro.clustering import ForgyKMeansClustering
from repro.core import (
    AdaptiveThresholdPolicy,
    DeliveryMethod,
    PubSubBroker,
    ThresholdPolicy,
    run_adaptive,
)


@pytest.fixture(scope="module")
def broker(small_topology, small_table, nine_mode_density):
    return PubSubBroker.preprocess(
        small_topology,
        small_table,
        ForgyKMeansClustering(),
        num_groups=6,
        density=nine_mode_density,
        cells_per_dim=6,
        max_cells=60,
    )


class TestPolicyMechanics:
    def test_validation(self):
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(initial_threshold=1.5)
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(buckets=(0.5, 0.2))
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(buckets=(0.5,))
        with pytest.raises(ValueError):
            AdaptiveThresholdPolicy(exploration=0)

    def test_basic_decisions(self):
        policy = AdaptiveThresholdPolicy()
        assert (
            policy.decide(0, 10, group=1).method
            is DeliveryMethod.NOT_SENT
        )
        assert (
            policy.decide(3, 0, group=0).method
            is DeliveryMethod.UNICAST
        )

    def test_cold_buckets_explore_both_arms(self):
        policy = AdaptiveThresholdPolicy(exploration=2)
        methods = {
            policy.decide(5, 10, group=1).method for _ in range(4)
        }
        assert methods == {
            DeliveryMethod.UNICAST,
            DeliveryMethod.MULTICAST,
        }

    def test_learning_moves_threshold_down_when_multicast_wins(self):
        policy = AdaptiveThresholdPolicy(exploration=1)
        # Feed feedback where multicast is always cheaper at ratio~0.3.
        for _ in range(10):
            policy.observe(
                group=1,
                interested=3,
                group_size=10,
                unicast_cost=100.0,
                multicast_cost=10.0,
            )
        assert policy.threshold_for(1) <= 0.25

    def test_learning_moves_threshold_up_when_multicast_loses(self):
        policy = AdaptiveThresholdPolicy(exploration=1)
        for _ in range(10):
            policy.observe(
                group=1,
                interested=3,
                group_size=10,
                unicast_cost=10.0,
                multicast_cost=100.0,
            )
        assert policy.threshold_for(1) >= 0.4

    def test_warm_policy_exploits(self):
        policy = AdaptiveThresholdPolicy(exploration=1)
        for _ in range(10):
            policy.observe(1, 3, 10, unicast_cost=100.0, multicast_cost=10.0)
        decisions = {
            policy.decide(3, 10, group=1).method for _ in range(6)
        }
        assert decisions == {DeliveryMethod.MULTICAST}

    def test_observe_ignores_catchall(self):
        policy = AdaptiveThresholdPolicy()
        policy.observe(0, 3, 10, 1.0, 1.0)
        assert not policy._stats


class TestRunAdaptive:
    def test_warm_policy_beats_static_multicast(self, broker, small_events):
        """On this testbed static multicast is strongly negative; a
        warmed-up adaptive policy must have learned its way out."""
        points, publishers = small_events
        first, policy = run_adaptive(broker, points, publishers)
        second, _ = run_adaptive(broker, points, publishers, policy)
        static, _ = broker.with_policy(ThresholdPolicy(0.0)).run(
            points, publishers
        )
        assert second.improvement_percent > static.improvement_percent
        assert second.improvement_percent > first.improvement_percent

    def test_second_pass_at_least_as_good(self, broker, small_events):
        points, publishers = small_events
        first, policy = run_adaptive(broker, points, publishers)
        second, _ = run_adaptive(broker, points, publishers, policy)
        # With warm estimates (no more forced exploration on seen
        # buckets) the second pass must not regress materially.
        assert (
            second.improvement_percent
            >= first.improvement_percent - 2.0
        )

    def test_message_accounting(self, broker, small_events):
        points, publishers = small_events
        tally, _ = run_adaptive(broker, points, publishers)
        assert tally.messages == len(points)
        assert (
            tally.multicasts_sent + tally.unicasts_sent <= tally.messages
        )

    def test_input_validation(self, broker):
        with pytest.raises(ValueError):
            run_adaptive(broker, np.zeros((3, 4)), [1, 2])
