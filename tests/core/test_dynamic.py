"""Unit tests for subscription churn support."""

import numpy as np
import pytest

from repro.clustering import ForgyKMeansClustering
from repro.core import (
    DynamicMatchingEngine,
    DynamicPubSubBroker,
    Event,
    MatchingEngine,
    SubscriptionTable,
)
from repro.geometry import Interval, Rectangle


def rect4(lo, hi):
    return Rectangle.cube(lo, hi, 4)


@pytest.fixture()
def engine(small_placed):
    table = SubscriptionTable.from_placed(small_placed[:100])
    return DynamicMatchingEngine(table, rebuild_fraction=0.3)


def fresh_reference(engine):
    """An independently built engine over the same live set."""
    live = SubscriptionTable(engine.table.ndim)
    live_ids = {
        s.subscription_id
        for s in engine.table
        if s.subscription_id not in engine._removed
    }
    id_map = {}
    for s in engine.table:
        if s.subscription_id in live_ids:
            added = live.add(s.subscriber, s.rectangle)
            id_map[added.subscription_id] = s.subscription_id
    return live, id_map


class TestDynamicMatchingEngine:
    def test_initial_queries_match_static(self, small_placed, small_events):
        table = SubscriptionTable.from_placed(small_placed[:100])
        dynamic = DynamicMatchingEngine(table)
        static = MatchingEngine(
            SubscriptionTable.from_placed(small_placed[:100])
        )
        points, _ = small_events
        for point in points[:40]:
            assert (
                dynamic.match_point(point).subscription_ids
                == static.match_point(point).subscription_ids
            )

    def test_add_visible_immediately(self, engine):
        before = engine.match_point([1.0, 1.0, 1.0, 1.0])
        sub = engine.add(9999, Rectangle.full(4))
        after = engine.match_point([1.0, 1.0, 1.0, 1.0])
        assert sub.subscription_id in after.subscription_ids
        assert 9999 in after.subscribers
        assert len(after.subscription_ids) == len(before.subscription_ids) + 1

    def test_remove_hides_immediately(self, engine):
        sub = engine.add(9999, Rectangle.full(4))
        engine.remove(sub.subscription_id)
        result = engine.match_point([1.0, 1.0, 1.0, 1.0])
        assert sub.subscription_id not in result.subscription_ids

    def test_remove_validation(self, engine):
        with pytest.raises(KeyError):
            engine.remove(10_000)
        sub = engine.add(1, Rectangle.full(4))
        engine.remove(sub.subscription_id)
        with pytest.raises(KeyError):
            engine.remove(sub.subscription_id)

    def test_rebuild_triggered_by_churn(self, engine):
        initial_rebuilds = engine.rebuilds
        # rebuild_fraction=0.3 of 100 -> rebuild after >30 churn events.
        for i in range(40):
            engine.add(5000 + i, rect4(float(i), float(i) + 1.0))
        assert engine.rebuilds > initial_rebuilds
        assert engine.pending_churn < 40

    def test_removed_subscriptions_stay_dead_across_rebuilds(self, engine):
        sub = engine.add(7777, Rectangle.full(4))
        engine.remove(sub.subscription_id)
        engine.rebuild()  # must NOT resurrect the removed subscription
        result = engine.match_point([5.0, 5.0, 5.0, 5.0])
        assert sub.subscription_id not in result.subscription_ids
        engine.rebuild()
        result = engine.match_point([5.0, 5.0, 5.0, 5.0])
        assert sub.subscription_id not in result.subscription_ids

    def test_queries_match_fresh_engine_after_heavy_churn(
        self, engine, small_events, rng
    ):
        # Random interleaved adds/removes, then compare against a
        # from-scratch engine over the surviving set.
        added = []
        for i in range(60):
            if added and rng.random() < 0.4:
                victim = added.pop(int(rng.integers(len(added))))
                engine.remove(victim)
            else:
                lo = rng.uniform(-5, 15, size=4)
                sub = engine.add(
                    6000 + i,
                    Rectangle.from_bounds(lo, lo + rng.uniform(0.5, 8, 4)),
                )
                added.append(sub.subscription_id)
        live, id_map = fresh_reference(engine)
        reference = MatchingEngine(live)
        points, _ = small_events
        for point in points[:40]:
            expected = sorted(
                id_map[sid]
                for sid in reference.match_point(point).subscription_ids
            )
            actual = list(engine.match_point(point).subscription_ids)
            assert actual == expected

    def test_empty_table_then_adds(self):
        table = SubscriptionTable(2)
        engine = DynamicMatchingEngine(table)
        assert engine.match_point([0.0, 0.0]).is_empty
        engine.add(1, Rectangle.cube(0.0, 1.0, 2))
        assert engine.match_point([0.5, 0.5]).subscribers == (1,)

    def test_parameter_validation(self, small_placed):
        table = SubscriptionTable.from_placed(small_placed[:10])
        with pytest.raises(ValueError):
            DynamicMatchingEngine(table, rebuild_fraction=0.0)
        with pytest.raises(ValueError):
            DynamicMatchingEngine(table, backend="nope")


class TestDynamicBroker:
    @pytest.fixture()
    def broker(self, small_topology, small_placed, nine_mode_density):
        table = SubscriptionTable.from_placed(small_placed)
        return DynamicPubSubBroker.preprocess_dynamic(
            small_topology,
            table,
            ForgyKMeansClustering(),
            6,
            density=nine_mode_density,
            cells_per_dim=6,
            max_cells=60,
        )

    def test_subscribe_widens_groups(
        self, broker, small_events, small_topology
    ):
        points, publishers = small_events
        event = Event.create(0, int(publishers[0]), points[0])
        q = broker.partition.locate(event.point)
        # Subscribers are network nodes; pick a transit node, which the
        # stock workload never uses, so it is guaranteed new.
        new_node = small_topology.all_transit_nodes()[0]
        broker.subscribe(new_node, Rectangle.full(4))
        # The universal subscriber must now be in every group.
        for group in broker.partition.groups:
            assert new_node in group.members
        record = broker.publish(event)
        if not record.match.is_empty:
            assert new_node in record.match.subscribers

    def test_group_invariant_preserved_under_churn(
        self, broker, small_events, small_topology, rng
    ):
        points, publishers = small_events
        nodes = small_topology.all_stub_nodes()
        for i in range(30):
            lo = rng.uniform(-5, 15, size=4)
            broker.subscribe(
                int(rng.choice(nodes)),
                Rectangle.from_bounds(lo, lo + rng.uniform(0.5, 10, 4)),
            )
        for i, point in enumerate(points[:60]):
            event = Event.create(i, int(publishers[i]), point)
            record = broker.publish(event)
            q = record.decision.group
            if q > 0:
                members = set(broker.partition.group(q).members)
                assert set(record.match.subscribers) <= members

    def test_unsubscribe_stops_matching(self, broker, small_topology):
        node = small_topology.all_transit_nodes()[1]
        sub = broker.subscribe(node, Rectangle.full(4))
        broker.unsubscribe(sub.subscription_id)
        event = Event.create(0, 0, (1.0, 10.0, 9.0, 9.0))
        record = broker.publish(event)
        assert node not in record.match.subscribers

    def test_live_subscriptions_counter(self, broker, small_topology):
        initial = broker.live_subscriptions
        sub = broker.subscribe(
            small_topology.all_transit_nodes()[2], Rectangle.full(4)
        )
        assert broker.live_subscriptions == initial + 1
        broker.unsubscribe(sub.subscription_id)
        assert broker.live_subscriptions == initial

    def test_repreprocess_drops_stale_members(self, broker, small_topology):
        node = small_topology.all_transit_nodes()[3]
        sub = broker.subscribe(node, Rectangle.full(4))
        broker.unsubscribe(sub.subscription_id)
        # Stale until re-preprocessing...
        assert any(
            node in g.members for g in broker.partition.groups
        )
        broker.repreprocess()
        assert not any(
            node in g.members for g in broker.partition.groups
        )

    def test_rebalance_partition_keeps_invariant(
        self, broker, small_events, small_topology, rng
    ):
        """After churn + incremental rebalance, delivered groups still
        cover every interested subscriber."""
        nodes = small_topology.all_stub_nodes()
        for i in range(20):
            lo = rng.uniform(-5, 15, size=4)
            broker.subscribe(
                int(rng.choice(nodes)),
                Rectangle.from_bounds(lo, lo + rng.uniform(0.5, 10, 4)),
            )
        moves = broker.rebalance_partition(max_moves=15)
        assert moves >= 0
        points, publishers = small_events
        for i, point in enumerate(points[:60]):
            event = Event.create(i, int(publishers[i]), point)
            record = broker.publish(event)
            q = record.decision.group
            if q > 0:
                members = set(broker.partition.group(q).members)
                assert set(record.match.subscribers) <= members

    def test_rebalance_partition_preserves_group_count(self, broker):
        before = broker.partition.num_groups
        broker.rebalance_partition(max_moves=5)
        assert broker.partition.num_groups == before

    def test_repreprocess_preserves_matching_semantics(
        self, broker, small_events
    ):
        points, publishers = small_events
        before = [
            broker.publish(
                Event.create(i, int(publishers[i]), points[i])
            ).match.subscribers
            for i in range(30)
        ]
        broker.repreprocess()
        after = [
            broker.publish(
                Event.create(i, int(publishers[i]), points[i])
            ).match.subscribers
            for i in range(30)
        ]
        assert before == after


class TestChurnGuarantees:
    """Issue-mandated contracts: churn drains to zero on rebuild, and
    unknown removals fail loudly with a clear message."""

    def test_pending_churn_returns_to_zero_after_rebuild(self, engine):
        for i in range(20):
            engine.add(8000 + i, rect4(float(i), float(i) + 1.0))
        assert engine.pending_churn > 0
        engine.rebuild()
        assert engine.pending_churn == 0
        # And the guarantee holds repeatedly, not just once.
        sub = engine.add(8999, Rectangle.full(4))
        engine.remove(sub.subscription_id)
        assert engine.pending_churn > 0
        engine.rebuild()
        assert engine.pending_churn == 0

    def test_remove_unknown_id_message(self, engine):
        with pytest.raises(KeyError) as excinfo:
            engine.remove(10_000)
        assert excinfo.value.args[0] == "unknown subscription id 10000"

    def test_remove_twice_message(self, engine):
        sub = engine.add(1, Rectangle.full(4))
        engine.remove(sub.subscription_id)
        with pytest.raises(KeyError) as excinfo:
            engine.remove(sub.subscription_id)
        assert excinfo.value.args[0] == (
            f"subscription {sub.subscription_id} already removed"
        )


class TestSustainedChurnDelivery:
    """rebalance_partition / repreprocess interleaved with a live event
    stream: deliveries are never lost mid-rebuild."""

    @pytest.fixture()
    def broker(self, small_topology, small_placed, nine_mode_density):
        table = SubscriptionTable.from_placed(small_placed)
        return DynamicPubSubBroker.preprocess_dynamic(
            small_topology,
            table,
            ForgyKMeansClustering(),
            6,
            density=nine_mode_density,
            cells_per_dim=6,
            max_cells=60,
        )

    @staticmethod
    def interested(broker, point):
        """Omniscient ground truth over the current live set."""
        engine = broker.engine
        return {
            s.subscriber
            for s in engine.table
            if s.subscription_id not in engine._removed
            and s.rectangle.contains_point(point)
        }

    def test_no_delivery_lost_mid_rebuild(
        self, broker, small_events, small_topology, rng
    ):
        points, publishers = small_events
        nodes = small_topology.all_stub_nodes()
        added = []
        for i, point in enumerate(points[:80]):
            # Sustained churn: add/remove every step, with periodic
            # maintenance passes racing the publish stream.
            if added and rng.random() < 0.4:
                broker.unsubscribe(added.pop(int(rng.integers(len(added)))))
            else:
                lo = rng.uniform(-5, 15, size=4)
                sub = broker.subscribe(
                    int(rng.choice(nodes)),
                    Rectangle.from_bounds(lo, lo + rng.uniform(0.5, 10, 4)),
                )
                added.append(sub.subscription_id)
            if i % 17 == 11:
                broker.rebalance_partition(max_moves=10)
            if i % 29 == 23:
                broker.repreprocess()
                # repreprocess() compacts the table and reassigns ids;
                # the ones we held are no longer valid handles.
                added.clear()

            expected = self.interested(broker, point)
            record = broker.publish(
                Event.create(i, int(publishers[i]), point)
            )
            # Exact matching never loses an interested subscriber...
            assert set(record.match.subscribers) == expected
            # ...and a multicast group still covers the whole match.
            q = record.decision.group
            if q > 0:
                members = set(broker.partition.group(q).members)
                assert expected <= members

    def test_churn_counters_drain_after_maintenance(
        self, broker, small_topology
    ):
        node = small_topology.all_stub_nodes()[0]
        subs = [
            broker.subscribe(node, Rectangle.full(4)) for _ in range(10)
        ]
        for sub in subs:
            broker.unsubscribe(sub.subscription_id)
        broker.engine.rebuild()
        assert broker.engine.pending_churn == 0
        broker.repreprocess()
        assert broker.engine.pending_churn == 0
