"""Unit tests for events and the matching engine."""

import numpy as np
import pytest

from repro.core import Event, MatchingEngine, SubscriptionTable
from repro.geometry import Interval, Rectangle


class TestEvent:
    def test_create(self):
        event = Event.create(3, 17, [1.0, 2.0])
        assert event.sequence == 3
        assert event.publisher == 17
        assert event.point == (1.0, 2.0)
        assert event.ndim == 2

    def test_create_rejects_nonfinite(self):
        with pytest.raises(ValueError):
            Event.create(0, 0, [np.inf, 1.0])


@pytest.fixture(scope="module")
def engine_table(small_table):
    return small_table


class TestMatchingEngine:
    @pytest.mark.parametrize(
        "backend", ["stree", "rtree", "grid", "linear"]
    )
    def test_backends_agree(self, engine_table, small_events, backend):
        reference = MatchingEngine(engine_table, backend="linear")
        engine = MatchingEngine(engine_table, backend=backend)
        points, publishers = small_events
        for i, (point, publisher) in enumerate(
            zip(points[:60], publishers)
        ):
            event = Event.create(i, int(publisher), point)
            assert engine.match(event) == reference.match(event)

    def test_unknown_backend(self, engine_table):
        with pytest.raises(ValueError):
            MatchingEngine(engine_table, backend="btree")

    def test_empty_table_rejected(self):
        with pytest.raises(ValueError):
            MatchingEngine(SubscriptionTable(2))

    def test_match_returns_distinct_subscribers(self):
        table = SubscriptionTable(1)
        r = Rectangle((0.0,), (1.0,))
        table.add(5, r)
        table.add(5, r)  # same subscriber twice
        table.add(6, r)
        engine = MatchingEngine(table, backend="stree")
        result = engine.match(Event.create(0, 0, [0.5]))
        assert result.subscription_ids == (0, 1, 2)
        assert result.subscribers == (5, 6)
        assert result.num_subscribers == 2
        assert not result.is_empty

    def test_no_match_is_empty(self):
        table = SubscriptionTable(1)
        table.add(5, Rectangle((0.0,), (1.0,)))
        engine = MatchingEngine(table)
        result = engine.match(Event.create(0, 0, [9.0]))
        assert result.is_empty
        assert result.subscribers == ()

    def test_dimension_mismatch(self, engine_table):
        engine = MatchingEngine(engine_table)
        with pytest.raises(ValueError):
            engine.match(Event.create(0, 0, [1.0]))

    def test_stats_exposed(self, engine_table, small_events):
        engine = MatchingEngine(engine_table)
        points, _ = small_events
        engine.match_point(points[0])
        assert engine.stats.queries == 1

    def test_matches_are_semantically_correct(
        self, engine_table, small_events
    ):
        engine = MatchingEngine(engine_table)
        points, _ = small_events
        for point in points[:40]:
            result = engine.match_point(point)
            for sid in result.subscription_ids:
                assert engine_table[sid].rectangle.contains_point(
                    tuple(point)
                )
            unmatched = set(range(len(engine_table))) - set(
                result.subscription_ids
            )
            for sid in list(unmatched)[:20]:
                assert not engine_table[sid].rectangle.contains_point(
                    tuple(point)
                )
