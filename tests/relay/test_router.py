"""Unit and integration tests for content-based routing."""

import numpy as np
import pytest

from repro.core import MatchingEngine, SubscriptionTable
from repro.geometry import Rectangle
from repro.relay import (
    BrokerOverlay,
    ContentRouter,
    RelayDeliveryService,
)


@pytest.fixture(scope="module")
def service_exact(small_topology, small_table):
    return RelayDeliveryService(
        small_topology, small_table, aggregation="exact"
    )


@pytest.fixture(scope="module")
def service_mbr(small_topology, small_table):
    return RelayDeliveryService(
        small_topology, small_table, aggregation="mbr"
    )


@pytest.fixture(scope="module")
def service_covering(small_topology, small_table):
    return RelayDeliveryService(
        small_topology, small_table, aggregation="covering"
    )


@pytest.fixture(scope="module")
def reference(small_table):
    return MatchingEngine(small_table)


class TestRoutingCorrectness:
    @pytest.mark.parametrize("aggregation", ["exact", "covering", "mbr"])
    def test_delivers_exactly_the_interested(
        self,
        small_topology,
        small_table,
        small_events,
        reference,
        aggregation,
        request,
    ):
        service = request.getfixturevalue(f"service_{aggregation}")
        points, publishers = small_events
        for point, publisher in zip(points[:80], publishers[:80]):
            outcome = service.router.route(point, int(publisher))
            expected = tuple(
                n
                for n in reference.match_point(point).subscribers
                if n != publisher
            )
            assert outcome.subscribers == expected

    def test_no_subscriber_no_delivery_but_injection_possible(
        self, service_exact, small_topology
    ):
        far_point = [1e6, 1e6, 1e6, 1e6]
        publisher = small_topology.all_stub_nodes()[0]
        outcome = service_exact.router.route(far_point, publisher)
        assert outcome.subscribers == ()
        # Injection to the broker still happened (decentralized
        # matching cannot know in advance), but no further flooding:
        # exact summaries kill the event at the entry broker...
        assert outcome.brokers_visited >= 1

    def test_point_arity_validated(self, service_exact):
        with pytest.raises(ValueError):
            service_exact.router.route([1.0], 0)

    def test_aggregation_validated(self, small_topology, small_table):
        overlay = BrokerOverlay(small_topology)
        with pytest.raises(ValueError):
            ContentRouter(overlay, small_table, aggregation="bloom")


class TestCoveringAggregation:
    def test_lossless_same_forwarding(
        self, service_exact, service_covering, small_events
    ):
        """Covering aggregation must never change which links fire."""
        points, publishers = small_events
        for point, publisher in zip(points[:60], publishers[:60]):
            exact = service_exact.router.route(point, int(publisher))
            covering = service_covering.router.route(
                point, int(publisher)
            )
            assert covering.links_crossed == exact.links_crossed
            assert covering.total_cost == pytest.approx(
                exact.total_cost
            )

    def test_strictly_less_state(self, service_exact, service_covering):
        assert (
            service_covering.router.state_entries()
            < service_exact.router.state_entries()
        )

    def test_uncovered_mask_semantics(self):
        import numpy as np

        from repro.relay.router import _uncovered_mask

        lows = np.array(
            [[0.0, 0.0], [1.0, 1.0], [0.0, 0.0], [5.0, 5.0]]
        )
        highs = np.array(
            [[10.0, 10.0], [2.0, 2.0], [10.0, 10.0], [6.0, 20.0]]
        )
        mask = _uncovered_mask(lows, highs)
        # Row 1 is inside row 0; row 2 duplicates row 0 (first kept);
        # row 3 pokes outside row 0 in dim 1.
        assert mask.tolist() == [True, False, False, True]

    def test_singleton(self):
        import numpy as np

        from repro.relay.router import _uncovered_mask

        assert _uncovered_mask(
            np.zeros((1, 2)), np.ones((1, 2))
        ).tolist() == [True]


class TestStateAndTraffic:
    def test_mbr_state_is_per_link(self, service_exact, service_mbr):
        exact_state = service_exact.router.state_entries()
        mbr_state = service_mbr.router.state_entries()
        assert mbr_state <= service_mbr.overlay.num_links * 2
        assert exact_state > mbr_state

    def test_mbr_forwards_at_least_exact(
        self, service_exact, service_mbr, small_events
    ):
        """MBR summaries can only add false-positive forwarding."""
        points, publishers = small_events
        for point, publisher in zip(points[:60], publishers[:60]):
            exact = service_exact.router.route(point, int(publisher))
            mbr = service_mbr.router.route(point, int(publisher))
            assert mbr.links_crossed >= exact.links_crossed
            assert mbr.total_cost >= exact.total_cost - 1e-9

    def test_costs_charged_for_links(self, service_exact, small_events):
        points, publishers = small_events
        outcome = service_exact.router.route(points[0], int(publishers[0]))
        # The cost at least covers injection; links and access add more.
        injection = service_exact.overlay.access_cost(int(publishers[0]))
        assert outcome.total_cost >= injection - 1e-9


class TestRelayDeliveryService:
    def test_tally_reference_consistency(
        self, service_exact, small_events
    ):
        points, publishers = small_events
        tally, outcomes = service_exact.run(points, publishers)
        assert tally.messages == len(points)
        assert len(outcomes) == len(points)
        assert tally.deliveries == sum(o.delivered for o in outcomes)
        # Exact relay routes along near-shortest-path structures; the
        # improvement must be large and can approach (but never pass)
        # the ideal bound.
        assert tally.improvement_percent <= 100.0 + 1e-9

    def test_input_validation(self, service_exact):
        with pytest.raises(ValueError):
            service_exact.run(np.zeros((2, 4)), [1])

    def test_dedicated_scenario_costs(self, small_topology):
        """Hand-checkable: one subscriber, one publisher."""
        table = SubscriptionTable(4)
        subscriber = small_topology.all_stub_nodes()[-1]
        table.add(subscriber, Rectangle.full(4))
        service = RelayDeliveryService(small_topology, table)
        publisher = small_topology.all_stub_nodes()[0]
        outcome = service.router.route([0.0, 0.0, 0.0, 0.0], publisher)
        assert outcome.subscribers == (subscriber,)
        # Path: publisher->its broker, broker tree path, broker->subscriber.
        overlay = service.overlay
        expected = overlay.access_cost(publisher)
        path = overlay.tree_path(
            overlay.broker_of(publisher), overlay.broker_of(subscriber)
        )
        expected += sum(
            overlay.link_cost(a, b) for a, b in zip(path, path[1:])
        )
        expected += overlay.routing.distance(
            overlay.broker_of(subscriber), subscriber
        )
        assert outcome.total_cost == pytest.approx(expected)
