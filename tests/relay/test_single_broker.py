"""Relay behavior on degenerate overlays (one broker, no links)."""

import pytest

from repro.core import SubscriptionTable
from repro.geometry import Rectangle
from repro.network import TransitStubGenerator, TransitStubParams
from repro.relay import BrokerOverlay, RelayDeliveryService


@pytest.fixture(scope="module")
def single_broker_topology():
    params = TransitStubParams(
        transit_blocks=1,
        transit_nodes_per_block=1,
        stubs_per_transit_node=2,
        nodes_per_stub=5,
        size_spread=0,
    )
    return TransitStubGenerator(params, seed=9).generate()


class TestSingleBrokerOverlay:
    def test_no_links(self, single_broker_topology):
        overlay = BrokerOverlay(single_broker_topology)
        assert len(overlay.brokers) == 1
        assert overlay.num_links == 0
        assert overlay.neighbors(overlay.brokers[0]) == []

    def test_tree_path_to_self(self, single_broker_topology):
        overlay = BrokerOverlay(single_broker_topology)
        broker = overlay.brokers[0]
        assert overlay.tree_path(broker, broker) == [broker]

    def test_routing_still_delivers(self, single_broker_topology):
        table = SubscriptionTable(2)
        nodes = single_broker_topology.all_stub_nodes()
        table.add(nodes[0], Rectangle.cube(0.0, 10.0, 2))
        table.add(nodes[3], Rectangle.cube(5.0, 15.0, 2))
        service = RelayDeliveryService(single_broker_topology, table)
        outcome = service.router.route([7.0, 7.0], nodes[-1])
        assert outcome.subscribers == tuple(sorted((nodes[0], nodes[3])))
        assert outcome.links_crossed == 0
        assert outcome.brokers_visited == 1

    def test_costs_are_pure_access_paths(self, single_broker_topology):
        table = SubscriptionTable(2)
        nodes = single_broker_topology.all_stub_nodes()
        table.add(nodes[0], Rectangle.cube(0.0, 10.0, 2))
        service = RelayDeliveryService(single_broker_topology, table)
        publisher = nodes[-1]
        outcome = service.router.route([5.0, 5.0], publisher)
        overlay = service.overlay
        expected = overlay.access_cost(publisher) + overlay.routing.distance(
            overlay.broker_of(nodes[0]), nodes[0]
        )
        assert outcome.total_cost == pytest.approx(expected)
