"""Unit tests for the broker overlay."""

import networkx as nx
import pytest

from repro.relay import BrokerOverlay


@pytest.fixture(scope="module")
def overlay(small_topology):
    return BrokerOverlay(small_topology)


class TestStructure:
    def test_brokers_are_transit_nodes(self, overlay, small_topology):
        assert overlay.brokers == small_topology.all_transit_nodes()

    def test_tree_link_count(self, overlay):
        assert overlay.num_links == len(overlay.brokers) - 1

    def test_adjacency_is_symmetric(self, overlay):
        for broker in overlay.brokers:
            for neighbor in overlay.neighbors(broker):
                assert broker in overlay.neighbors(neighbor)

    def test_tree_is_acyclic_and_connected(self, overlay):
        graph = nx.Graph()
        graph.add_nodes_from(overlay.brokers)
        for broker in overlay.brokers:
            for neighbor in overlay.neighbors(broker):
                graph.add_edge(broker, neighbor)
        assert nx.is_tree(graph)

    def test_link_costs_match_topology(self, overlay, small_topology):
        for broker in overlay.brokers:
            for neighbor in overlay.neighbors(broker):
                assert overlay.link_cost(
                    broker, neighbor
                ) == pytest.approx(
                    small_topology.edge_cost(broker, neighbor)
                )

    def test_link_cost_rejects_non_links(self, overlay):
        brokers = overlay.brokers
        non_neighbors = [
            (a, b)
            for a in brokers
            for b in brokers
            if a != b and b not in overlay.neighbors(a)
        ]
        if non_neighbors:
            with pytest.raises(ValueError):
                overlay.link_cost(*non_neighbors[0])


class TestPaths:
    def test_next_hop_walks_reach_target(self, overlay):
        for source in overlay.brokers:
            for target in overlay.brokers:
                if source == target:
                    continue
                path = overlay.tree_path(source, target)
                assert path[0] == source
                assert path[-1] == target
                assert len(path) <= len(overlay.brokers)
                # Consecutive entries are overlay links.
                for a, b in zip(path, path[1:]):
                    assert b in overlay.neighbors(a)

    def test_paths_are_symmetric(self, overlay):
        brokers = overlay.brokers
        path = overlay.tree_path(brokers[0], brokers[-1])
        back = overlay.tree_path(brokers[-1], brokers[0])
        assert path == list(reversed(back))

    def test_next_hop_at_destination_rejected(self, overlay):
        with pytest.raises(ValueError):
            overlay.next_hop(overlay.brokers[0], overlay.brokers[0])


class TestAttachments:
    def test_stub_nodes_attach_to_gateway(self, overlay, small_topology):
        for stub, members in enumerate(small_topology.stub_members):
            gateway = small_topology.stub_gateway_transit(stub)
            for node in members:
                assert overlay.broker_of(node) == gateway

    def test_transit_nodes_self_host(self, overlay, small_topology):
        for broker in small_topology.all_transit_nodes():
            assert overlay.broker_of(broker) == broker

    def test_access_cost_positive_for_clients(
        self, overlay, small_topology
    ):
        for node in small_topology.all_stub_nodes()[:10]:
            assert overlay.access_cost(node) > 0.0

    def test_gateway_inference_without_stored_owner(self, small_topology):
        """Deserialized pre-stub_owner topologies still resolve."""
        from repro.network.topology import Topology

        stripped = Topology(
            graph=small_topology.graph,
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
            stub_owner=[],
        )
        for stub in range(stripped.num_stubs):
            assert stripped.stub_gateway_transit(
                stub
            ) == small_topology.stub_gateway_transit(stub)
