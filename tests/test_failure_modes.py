"""Failure-mode and pathological-input tests across the stack.

Production code meets ugly inputs; these tests pin that every layer
fails loudly (typed exceptions with useful messages) or degrades
gracefully (empty results, catchall routing) — never silently wrong.
"""

import math

import networkx as nx
import numpy as np
import pytest

from repro.clustering import EventGrid, ForgyKMeansClustering
from repro.core import (
    Event,
    MatchingEngine,
    PubSubBroker,
    SubscriptionTable,
    ThresholdPolicy,
)
from repro.geometry import Interval, Rectangle
from repro.network import RoutingTable, TransitStubGenerator
from repro.network.topology import Topology
from repro.spatial import STree


class TestDisconnectedNetworks:
    @pytest.fixture()
    def split_graph(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, cost=1.0)
        graph.add_edge(2, 3, cost=1.0)  # a second component
        return graph

    def test_unreachable_distance_is_infinite(self, split_graph):
        table = RoutingTable(split_graph)
        assert table.distance(0, 2) == math.inf

    def test_unreachable_path_raises(self, split_graph):
        table = RoutingTable(split_graph)
        with pytest.raises(ValueError, match="no path"):
            table.path(0, 2)

    def test_unreachable_tree_raises(self, split_graph):
        table = RoutingTable(split_graph)
        with pytest.raises(ValueError, match="no path"):
            table.shortest_path_tree_cost(0, [1, 2])


class TestDegenerateSubscriptionSets:
    def test_all_empty_rectangles_match_nothing(self):
        table = SubscriptionTable(2)
        for _ in range(5):
            table.add(1, Rectangle((1.0, 1.0), (0.0, 0.0)))
        engine = MatchingEngine(table)
        assert engine.match_point([0.5, 0.5]).is_empty

    def test_single_point_like_rectangles(self):
        # One-ulp rectangles: still matchable at the closed end.
        lo = 5.0
        hi = np.nextafter(5.0, 6.0)
        table = SubscriptionTable(1)
        table.add(1, Rectangle((lo,), (hi,)))
        engine = MatchingEngine(table)
        assert engine.match_point([hi]).subscribers == (1,)
        assert engine.match_point([lo]).is_empty

    def test_huge_coordinates(self):
        table = SubscriptionTable(2)
        table.add(1, Rectangle((1e300, -1e300), (1e308, 1e300)))
        engine = MatchingEngine(table)
        assert engine.match_point([1e305, 0.0]).subscribers == (1,)

    def test_grid_over_identical_rectangles(self):
        rect = Rectangle.cube(0.0, 1.0, 2)
        grid = EventGrid([rect] * 50, list(range(50)), cells_per_dim=4)
        assert grid.num_subscribers == 50
        result = ForgyKMeansClustering().cluster(grid, 3, max_cells=20)
        result.validate_disjoint()

    def test_stree_over_one_ulp_universe(self):
        lows = np.full((100, 2), 5.0)
        highs = np.full((100, 2), np.nextafter(5.0, 6.0))
        tree = STree.build(lows, highs)
        assert tree.match([np.nextafter(5.0, 6.0)] * 2) == list(range(100))
        assert tree.match([5.0, 5.0]) == []


class TestBrokerEdgeCases:
    @pytest.fixture()
    def tiny_broker(self, small_topology):
        table = SubscriptionTable(4)
        node = small_topology.all_stub_nodes()[0]
        table.add(node, Rectangle.cube(0.0, 1.0, 4))
        return PubSubBroker.preprocess(
            small_topology,
            table,
            ForgyKMeansClustering(),
            num_groups=3,
            cells_per_dim=4,
            max_cells=10,
        )

    def test_event_matching_nobody(self, tiny_broker):
        record = tiny_broker.publish(
            Event.create(0, 0, (50.0, 50.0, 50.0, 50.0))
        )
        from repro.core import DeliveryMethod

        assert record.method is DeliveryMethod.NOT_SENT
        assert record.scheme_cost == 0.0

    def test_publisher_is_sole_subscriber(
        self, tiny_broker, small_topology
    ):
        subscriber = small_topology.all_stub_nodes()[0]
        record = tiny_broker.publish(
            Event.create(0, subscriber, (0.5, 0.5, 0.5, 0.5))
        )
        # The only interested party published it: nothing to send.
        assert record.scheme_cost == 0.0 or record.unicast_cost == 0.0

    def test_more_groups_than_cells(self, small_topology):
        table = SubscriptionTable(4)
        node = small_topology.all_stub_nodes()[0]
        table.add(node, Rectangle.cube(0.0, 1.0, 4))
        broker = PubSubBroker.preprocess(
            small_topology,
            table,
            ForgyKMeansClustering(),
            num_groups=50,
            cells_per_dim=2,
            max_cells=50,
        )
        assert broker.partition.num_groups <= 16

    def test_workload_entirely_in_catchall(self, tiny_broker):
        points = np.full((20, 4), 99.0)
        publishers = [0] * 20
        tally, records = tiny_broker.run(
            points, publishers, collect_records=True
        )
        assert tally.messages == 20
        assert tally.multicasts_sent == 0


class TestTopologyValidation:
    def test_missing_kind_attribute_caught(self, small_topology):
        graph = small_topology.graph.copy()
        graph.add_node(9999)  # no attributes
        graph.add_edge(9999, small_topology.all_stub_nodes()[0], cost=1.0)
        broken = Topology(
            graph=graph,
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        with pytest.raises(ValueError, match="kind"):
            broken.validate()

    def test_disconnected_topology_caught(self, small_topology):
        graph = small_topology.graph.copy()
        graph.add_node(9999, kind="stub", block=0, stub=0)
        broken = Topology(
            graph=graph,
            transit_nodes=small_topology.transit_nodes,
            stub_members=small_topology.stub_members,
            stub_block=small_topology.stub_block,
        )
        with pytest.raises(ValueError, match="connected"):
            broken.validate()


class TestFaultRecovery:
    """End-to-end recovery scenarios over the fault-injected substrate."""

    @staticmethod
    def _line_and_tree_graph():
        # 0 —(access)— 1 —<cheap 2 / dear 3>— 4 — 5; see faults tests.
        graph = nx.Graph()
        graph.add_edge(0, 1, cost=1.0)
        graph.add_edge(1, 2, cost=1.0)
        graph.add_edge(1, 3, cost=5.0)
        graph.add_edge(2, 4, cost=1.0)
        graph.add_edge(3, 4, cost=5.0)
        graph.add_edge(4, 5, cost=1.0)
        return graph

    def _stack(self, plan):
        from types import SimpleNamespace

        from repro.faults import FaultInjector, ReliableTransport, RetryConfig
        from repro.network.routing import RoutingTable
        from repro.simulation import DiscreteEventSimulator
        from repro.simulation.packet_network import PacketNetwork

        graph = self._line_and_tree_graph()
        simulator = DiscreteEventSimulator()
        injector = FaultInjector(plan)
        network = PacketNetwork(
            SimpleNamespace(graph=graph),
            simulator,
            routing=RoutingTable(graph),
            injector=injector,
        )
        deliveries = []
        give_ups = []
        transport = ReliableTransport(
            network,
            config=RetryConfig(
                ack_timeout=30.0,
                backoff=2.0,
                max_jitter=0.5,
                max_attempts=5,
                reroute_after=2,
            ),
            seed=1,
            detector=injector,
            graph=graph,
            on_deliver=lambda t, k, time: deliveries.append((k, t, time)),
            on_give_up=lambda t, k, reason: give_ups.append((k, t, reason)),
        )
        return simulator, network, transport, deliveries, give_ups

    def test_publish_while_access_link_dead(self):
        # The publisher's only access link is in an outage window when
        # the event goes out; retries after the window restores it must
        # deliver exactly once.
        from repro.faults.plan import FaultPlan, LinkOutage

        plan = FaultPlan(
            seed=5, outages=(LinkOutage(0, 1, start=0.0, end=40.0),)
        )
        sim, net, transport, deliveries, give_ups = self._stack(plan)
        transport.publish(0, source=0, targets=[2, 5])
        sim.run()
        assert not give_ups
        assert sorted(d[:2] for d in deliveries) == [(0, 2), (0, 5)]
        assert all(d[2] >= 40.0 for d in deliveries)
        assert net.injector.stats.outage_drops > 0
        assert transport.stats.retries > 0

    def test_broker_crash_mid_multicast_with_restart(self):
        # A relay broker dies while the multicast is in flight and
        # restarts before the retry budget runs out: subscribers behind
        # it are recovered by per-target retries after the restart.
        from repro.faults.plan import BrokerCrash, FaultPlan

        plan = FaultPlan(seed=6, crashes=(BrokerCrash(4, 0.0, 25.0),))
        sim, net, transport, deliveries, give_ups = self._stack(plan)
        members = [2, 5]

        def first_pass(receive):
            net.send_multicast(0, members, receive)

        transport.publish(0, source=0, targets=members, first_pass=first_pass)
        sim.run()
        assert not give_ups
        assert sorted(d[:2] for d in deliveries) == [(0, 2), (0, 5)]
        by_target = {t: time for _, t, time in deliveries}
        assert by_target[2] < 25.0  # in front of the crash: first pass
        assert by_target[5] >= 25.0  # behind it: post-restart retry
        assert transport.stats.retries > 0
        assert transport.stats.gave_up == 0

    def test_total_loss_on_one_link_forces_unicast_fallback(self):
        # 100% loss on the cheap route: the failure detector flags the
        # link dead and retries fall back to a surviving unicast path.
        from repro.faults.plan import FaultPlan, LinkFault

        plan = FaultPlan(seed=7, link_faults=(LinkFault(2, 4, loss=1.0),))
        sim, _net, transport, deliveries, give_ups = self._stack(plan)
        transport.publish(0, source=0, targets=[5])
        sim.run()
        assert not give_ups
        assert [d[:2] for d in deliveries] == [(0, 5)]
        assert transport.stats.reroutes > 0
        assert transport.failed() == []


class TestNumericalRobustness:
    def test_nan_rejected_at_index_build(self):
        with pytest.raises(ValueError, match="NaN"):
            STree.build(
                np.array([[np.nan, 0.0]]), np.array([[1.0, 1.0]])
            )

    def test_nan_event_rejected(self):
        with pytest.raises(ValueError):
            Event.create(0, 0, (float("nan"), 1.0))

    def test_interval_with_nan_behaves_as_empty_for_contains(self):
        interval = Interval(float("nan"), 1.0)
        # NaN comparisons are False: nothing is contained — no silent
        # "matches everything" failure mode.
        assert not interval.contains(0.5)

    def test_extreme_zipf_population(self, rng):
        from repro.workload import ZipfSampler

        sampler = ZipfSampler(1, theta=5.0, rng=rng)
        assert sampler.sample() == 0

    def test_grid_with_zero_width_dimension_data(self):
        # All rectangles flat in one dimension: frame padding must
        # keep the grid usable.
        rects = [
            Rectangle((0.0, 5.0), (1.0, 5.0 + 1e-12)) for _ in range(5)
        ]
        grid = EventGrid(rects, list(range(5)), cells_per_dim=4)
        assert grid.num_occupied_cells > 0
