"""Shared fixtures: small seeded testbeds reused across the suite.

Also installs a per-test timeout guard (SIGALRM-based, POSIX only, no
third-party plugin needed): any single test that runs longer than
``REPRO_TEST_TIMEOUT`` seconds (default 120) fails with a clear
message instead of hanging the suite — chaos and overload scenarios
are event-driven loops, and a regression there would otherwise stall
CI until the job-level timeout.
"""

from __future__ import annotations

import os
import signal

import numpy as np
import pytest

from repro.core import SubscriptionTable
from repro.network import DeliveryCostModel, TransitStubGenerator, TransitStubParams
from repro.workload import (
    PublicationGenerator,
    StockSubscriptionGenerator,
    publication_distribution,
)

_TEST_TIMEOUT = int(os.environ.get("REPRO_TEST_TIMEOUT", "120"))
_HAS_ALARM = hasattr(signal, "SIGALRM")


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    if not _HAS_ALARM or _TEST_TIMEOUT <= 0:
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded the {_TEST_TIMEOUT}s per-test timeout "
            "(set REPRO_TEST_TIMEOUT to adjust, 0 to disable)"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(_TEST_TIMEOUT)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def small_topology():
    """A compact transit-stub network (~60 nodes) for fast tests."""
    params = TransitStubParams(
        transit_blocks=3,
        transit_nodes_per_block=2,
        stubs_per_transit_node=1,
        nodes_per_stub=8,
        size_spread=1,
    )
    return TransitStubGenerator(params, seed=11).generate()


@pytest.fixture(scope="session")
def paper_topology():
    """The paper-scale ~600-node network (session-cached)."""
    return TransitStubGenerator(seed=600).generate()


@pytest.fixture(scope="session")
def small_placed(small_topology):
    """150 placed stock subscriptions on the small network."""
    return StockSubscriptionGenerator(small_topology, seed=12).generate(150)


@pytest.fixture(scope="session")
def small_table(small_placed):
    return SubscriptionTable.from_placed(small_placed)


@pytest.fixture(scope="session")
def nine_mode_density():
    return publication_distribution(9)


@pytest.fixture(scope="session")
def small_events(small_topology, nine_mode_density):
    """200 publications on the small network."""
    generator = PublicationGenerator(
        nine_mode_density, small_topology.all_stub_nodes(), seed=13
    )
    return generator.generate(200)


@pytest.fixture(scope="session")
def small_cost_model(small_topology):
    return DeliveryCostModel(small_topology)


@pytest.fixture()
def rng():
    return np.random.default_rng(1234)
