"""Unit tests for the space partition and multicast groups."""

import numpy as np
import pytest

from repro.clustering import (
    ClusteringResult,
    EventGrid,
    ForgyKMeansClustering,
    SpacePartition,
)
from repro.geometry import Interval, Rectangle


def rect2(x0, x1, y0, y1):
    return Rectangle.from_intervals([Interval(x0, x1), Interval(y0, y1)])


@pytest.fixture()
def partition():
    """Hand-built 2-group partition over a 4x4 grid."""
    rectangles = [
        rect2(0.0, 2.0, 0.0, 2.0),  # subscriber 10
        rect2(2.0, 4.0, 2.0, 4.0),  # subscriber 20
        rect2(0.0, 1.0, 0.0, 1.0),  # subscriber 30
    ]
    grid = EventGrid(
        rectangles,
        [10, 20, 30],
        cells_per_dim=4,
        frame=((0.0, 0.0), (4.0, 4.0)),
    )
    lower = [grid.cells[(x, y)] for x in (0, 1) for y in (0, 1)]
    upper = [grid.cells[(x, y)] for x in (2, 3) for y in (2, 3)]
    result = ClusteringResult(algorithm="manual", clusters=[lower, upper])
    return SpacePartition(grid, result)


class TestLocate:
    def test_points_in_groups(self, partition):
        assert partition.locate((0.5, 0.5)) == 1
        assert partition.locate((3.5, 3.5)) == 2

    def test_unclustered_cell_is_catchall(self, partition):
        # (3.5, 0.5) lies in cell (3, 0), which no cluster claims.
        assert partition.locate((3.5, 0.5)) == 0

    def test_outside_frame_is_catchall(self, partition):
        assert partition.locate((99.0, 99.0)) == 0


class TestGroups:
    def test_membership_is_union_of_cells(self, partition):
        group1 = partition.group(1)
        assert group1.members == (10, 30)
        group2 = partition.group(2)
        assert group2.members == (20,)

    def test_group_indexing(self, partition):
        assert partition.num_groups == 2
        with pytest.raises(IndexError):
            partition.group(0)
        with pytest.raises(IndexError):
            partition.group(3)

    def test_group_sizes(self, partition):
        assert partition.group_sizes() == [2, 1]

    def test_expected_waste_nonnegative(self, partition):
        for group in partition.groups:
            assert group.expected_waste >= 0.0

    def test_covered_probability(self, partition):
        # 8 of 16 uniform cells are clustered, but only occupied cells
        # exist in the grid; the two quadrants cover 8/16 of the frame.
        assert partition.covered_probability() == pytest.approx(0.5)

    def test_overlapping_clusters_rejected(self, partition):
        grid = partition.grid
        cell = grid.cells[(0, 0)]
        bad = ClusteringResult(
            algorithm="bad", clusters=[[cell], [cell]]
        )
        with pytest.raises(AssertionError):
            SpacePartition(grid, bad)


class TestEndToEndInvariant:
    def test_interested_always_in_group(
        self, small_table, nine_mode_density, small_events
    ):
        """The paper's key invariant: every subscriber interested in an
        event in S_q is a member of M_q."""
        grid = EventGrid(
            small_table.rectangles(),
            [s.subscriber for s in small_table],
            density=nine_mode_density,
            cells_per_dim=6,
        )
        result = ForgyKMeansClustering().cluster(grid, 8, max_cells=60)
        partition = SpacePartition(grid, result)
        points, _ = small_events
        for point in points:
            q = partition.locate(point)
            if q == 0:
                continue
            members = set(partition.group(q).members)
            interested = {
                s.subscriber
                for s in small_table
                if s.rectangle.contains_point(tuple(point))
            }
            assert interested <= members
