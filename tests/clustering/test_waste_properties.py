"""Property-based tests for the expected-waste cluster state."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clustering import ClusterState, expected_waste_of_cells
from repro.clustering.grid import GridCell


@st.composite
def cells(draw, max_subscribers=12):
    members = draw(
        st.integers(min_value=1, max_value=(1 << max_subscribers) - 1)
    )
    probability = draw(
        st.floats(min_value=0.0, max_value=1.0, allow_nan=False)
    )
    index = draw(st.integers(min_value=0, max_value=10_000))
    return GridCell(
        index=(index,),
        lows=(0.0,),
        highs=(1.0,),
        members=members,
        probability=probability,
    )


def distinct_by_index(cell_list):
    seen = {}
    for cell in cell_list:
        seen[cell.index] = cell
    return list(seen.values())


class TestExpectedWasteProperties:
    @given(st.lists(cells(), min_size=1, max_size=12))
    @settings(max_examples=100, deadline=None)
    def test_nonnegative_and_bounded(self, cell_list):
        ew = expected_waste_of_cells(cell_list)
        union = 0
        for cell in cell_list:
            union |= cell.members
        assert -1e-9 <= ew <= union.bit_count()

    @given(st.lists(cells(), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_order_independence(self, cell_list):
        forward = expected_waste_of_cells(cell_list)
        backward = expected_waste_of_cells(list(reversed(cell_list)))
        assert forward == pytest.approx(backward)

    @given(st.lists(cells(), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_merge_equals_bulk(self, cell_list):
        half = len(cell_list) // 2
        merged = ClusterState.from_cells(cell_list[:half] or cell_list[:1])
        other = ClusterState.from_cells(cell_list[half:] or cell_list[-1:])
        predicted = merged.waste_if_merged(other)
        merged.merge(other)
        assert merged.expected_waste == pytest.approx(predicted)

    @given(st.lists(cells(), min_size=2, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_add_remove_roundtrip(self, cell_list):
        unique = distinct_by_index(cell_list)
        if len(unique) < 2:
            return
        state = ClusterState.from_cells(unique[:-1])
        before = (
            state.members,
            state.probability,
            state.weighted_member_sum,
        )
        state.add(unique[-1])
        state.remove(unique[-1])
        assert state.members == before[0]
        assert state.probability == pytest.approx(before[1])
        assert state.weighted_member_sum == pytest.approx(before[2])

    @given(st.lists(cells(), min_size=1, max_size=10), cells())
    @settings(max_examples=100, deadline=None)
    def test_distance_consistent_with_waste(self, cell_list, extra):
        state = ClusterState.from_cells(cell_list)
        assert state.distance_to(extra) == pytest.approx(
            state.waste_if_added(extra) - state.expected_waste
        )

    @given(st.lists(cells(), min_size=1, max_size=10))
    @settings(max_examples=100, deadline=None)
    def test_identical_membership_zero_waste(self, cell_list):
        # Force identical member sets: EW must be ~0 regardless of
        # probabilities.
        uniform = [
            GridCell(
                index=(i,),
                lows=(0.0,),
                highs=(1.0,),
                members=0b1011,
                probability=cell.probability,
            )
            for i, cell in enumerate(cell_list)
        ]
        assert expected_waste_of_cells(uniform) == pytest.approx(
            0.0, abs=1e-9
        )

    @given(st.lists(cells(), min_size=1, max_size=8), cells())
    @settings(max_examples=100, deadline=None)
    def test_adding_subset_member_cell_never_increases_count_term(
        self, cell_list, extra
    ):
        """Adding a cell whose members are a subset of l(G) cannot
        enlarge the union (|l(G)| stays), so EW can only fall or hold
        when the cell's own waste contribution is lower than average."""
        state = ClusterState.from_cells(cell_list)
        subset_cell = GridCell(
            index=(99999,),
            lows=(0.0,),
            highs=(1.0,),
            members=state.members,  # same set: n(g) = |l(G)|
            probability=extra.probability,
        )
        # A cell matching the whole group wastes nothing itself:
        # EW_new <= EW_old.
        assert state.waste_if_added(subset_cell) <= (
            state.expected_waste + 1e-9
        )
