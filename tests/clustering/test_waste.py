"""Unit tests for the expected-waste objective."""

import pytest

from repro.clustering import (
    ClusterState,
    expected_waste_of_cells,
    paper_recursive_expected_waste,
)
from repro.clustering.grid import GridCell


def cell(index, members, probability):
    """Shorthand grid cell with a membership bitmask."""
    return GridCell(
        index=(index,),
        lows=(0.0,),
        highs=(1.0,),
        members=members,
        probability=probability,
    )


class TestClusterState:
    def test_single_cell_has_zero_waste(self):
        state = ClusterState.from_cells([cell(0, 0b111, 0.5)])
        assert state.expected_waste == pytest.approx(0.0)

    def test_identical_membership_has_zero_waste(self):
        # Cells with the same subscriber set never waste a message.
        cells = [cell(i, 0b1011, 0.2) for i in range(4)]
        assert expected_waste_of_cells(cells) == pytest.approx(0.0)

    def test_disjoint_membership_maximal_waste(self):
        # Two equal-probability cells with disjoint singleton members:
        # l(G) = 2; an event in either cell wastes exactly 1 message.
        cells = [cell(0, 0b01, 0.5), cell(1, 0b10, 0.5)]
        assert expected_waste_of_cells(cells) == pytest.approx(1.0)

    def test_closed_form_formula(self):
        # EW = |l(G)| - sum(p*n)/p(G), hand-computed.
        cells = [cell(0, 0b011, 0.3), cell(1, 0b110, 0.1)]
        # l(G) = {0,1,2} -> 3; sum p*n = .3*2 + .1*2 = 0.8; p(G) = 0.4.
        assert expected_waste_of_cells(cells) == pytest.approx(3 - 2.0)

    def test_order_independence(self):
        cells = [
            cell(0, 0b0011, 0.2),
            cell(1, 0b0110, 0.5),
            cell(2, 0b1100, 0.3),
        ]
        forward = expected_waste_of_cells(cells)
        backward = expected_waste_of_cells(list(reversed(cells)))
        assert forward == pytest.approx(backward)

    def test_zero_probability_cluster(self):
        state = ClusterState.from_cells([cell(0, 0b1, 0.0)])
        assert state.expected_waste == 0.0

    def test_waste_if_added_matches_add(self):
        state = ClusterState.from_cells([cell(0, 0b01, 0.4)])
        new_cell = cell(1, 0b10, 0.6)
        predicted = state.waste_if_added(new_cell)
        state.add(new_cell)
        assert state.expected_waste == pytest.approx(predicted)

    def test_distance_is_waste_increase(self):
        state = ClusterState.from_cells([cell(0, 0b01, 0.4)])
        new_cell = cell(1, 0b10, 0.6)
        assert state.distance_to(new_cell) == pytest.approx(
            state.waste_if_added(new_cell) - state.expected_waste
        )

    def test_adding_similar_cell_cheaper_than_disjoint(self):
        state = ClusterState.from_cells([cell(0, 0b0011, 0.5)])
        similar = cell(1, 0b0011, 0.2)
        disjoint = cell(2, 0b1100, 0.2)
        assert state.distance_to(similar) < state.distance_to(disjoint)

    def test_waste_if_merged_matches_merge(self):
        a = ClusterState.from_cells([cell(0, 0b01, 0.3), cell(1, 0b11, 0.2)])
        b = ClusterState.from_cells([cell(2, 0b10, 0.5)])
        predicted = a.waste_if_merged(b)
        a.merge(b)
        assert a.expected_waste == pytest.approx(predicted)
        assert len(a) == 3

    def test_remove_restores_previous_state(self):
        first = cell(0, 0b01, 0.4)
        second = cell(1, 0b10, 0.6)
        state = ClusterState.from_cells([first])
        before = (
            state.members,
            state.probability,
            state.expected_waste,
        )
        state.add(second)
        state.remove(second)
        assert (
            state.members,
            state.probability,
            state.expected_waste,
        ) == pytest.approx(before)

    def test_remove_rebuilds_membership_mask(self):
        a = cell(0, 0b01, 0.5)
        b = cell(1, 0b11, 0.5)
        state = ClusterState.from_cells([a, b])
        assert state.members == 0b11
        state.remove(b)
        assert state.members == 0b01

    def test_remove_missing_cell_raises(self):
        state = ClusterState.from_cells([cell(0, 0b1, 0.5)])
        with pytest.raises(ValueError):
            state.remove(cell(9, 0b1, 0.5))

    def test_merge_is_equivalent_to_union(self):
        cells_a = [cell(0, 0b001, 0.2), cell(1, 0b011, 0.3)]
        cells_b = [cell(2, 0b110, 0.1), cell(3, 0b100, 0.4)]
        merged = ClusterState.from_cells(cells_a)
        merged.merge(ClusterState.from_cells(cells_b))
        direct = ClusterState.from_cells(cells_a + cells_b)
        assert merged.expected_waste == pytest.approx(direct.expected_waste)


class TestPaperRecursion:
    def test_single_cell_is_zero(self):
        assert paper_recursive_expected_waste(
            [cell(0, 0b11, 0.5)]
        ) == pytest.approx(0.0)

    def test_two_cell_hand_computation(self):
        # Printed formula, second cell: EW_old = 0, so only the
        # p(x)*|l(G)\l(x)| term survives:
        # (0*0.4*(1+1) + 0.6*1) / (0.4+0.6) = 0.6.  (The closed form
        # gives 1.0 here — exactly the discrepancy the waste module's
        # docstring documents.)
        cells = [cell(0, 0b01, 0.4), cell(1, 0b10, 0.6)]
        assert paper_recursive_expected_waste(cells) == pytest.approx(0.6)
        assert expected_waste_of_cells(cells) == pytest.approx(1.0)

    def test_nonnegative(self):
        cells = [
            cell(0, 0b0011, 0.2),
            cell(1, 0b0110, 0.5),
            cell(2, 0b1100, 0.3),
        ]
        assert paper_recursive_expected_waste(cells) >= 0.0

    def test_order_dependence_documented(self):
        # The printed recursion is order-dependent (why we use the
        # closed form); verify it actually is on an asymmetric input.
        cells = [
            cell(0, 0b0001, 0.1),
            cell(1, 0b1111, 0.7),
            cell(2, 0b0110, 0.2),
        ]
        forward = paper_recursive_expected_waste(cells)
        backward = paper_recursive_expected_waste(list(reversed(cells)))
        assert forward != pytest.approx(backward)
