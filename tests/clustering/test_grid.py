"""Unit tests for the event grid."""

import numpy as np
import pytest

from repro.clustering import EventGrid, UniformCellProbability
from repro.geometry import Interval, Rectangle
from repro.workload import nine_mode_distribution


def rect2(x0, x1, y0, y1):
    return Rectangle.from_intervals([Interval(x0, x1), Interval(y0, y1)])


@pytest.fixture()
def simple_grid():
    """Two subscribers in a 4x4 grid over (0,4]x(0,4]."""
    rectangles = [
        rect2(0.0, 2.0, 0.0, 2.0),   # subscriber 100, lower-left block
        rect2(2.0, 4.0, 2.0, 4.0),   # subscriber 200, upper-right block
        rect2(1.0, 3.0, 1.0, 3.0),   # subscriber 100 again, center
    ]
    return EventGrid(
        rectangles,
        [100, 200, 100],
        cells_per_dim=4,
        frame=((0.0, 0.0), (4.0, 4.0)),
    )


class TestConstruction:
    def test_subscriber_indexing(self, simple_grid):
        assert simple_grid.subscribers == [100, 200]
        assert simple_grid.num_subscribers == 2

    def test_cells_have_membership(self, simple_grid):
        # Cell (0,0) covers (0,1]x(0,1]: only the first rectangle.
        cell = simple_grid.cells[(0, 0)]
        assert simple_grid.members_of(cell.members) == [100]
        # Cell (3,3): only subscriber 200.
        cell = simple_grid.cells[(3, 3)]
        assert simple_grid.members_of(cell.members) == [200]
        # Cell (1,1) covers (1,2]x(1,2]: only subscriber 100's
        # rectangles reach it — (2,4]x(2,4] is half-open and starts
        # strictly after 2.
        cell = simple_grid.cells[(1, 1)]
        assert simple_grid.members_of(cell.members) == [100]
        # Cell (2,2) covers (2,3]x(2,3]: touched by subscriber 200's
        # block and by 100's center rectangle (1,3]x(1,3].
        cell = simple_grid.cells[(2, 2)]
        assert simple_grid.members_of(cell.members) == [100, 200]

    def test_member_count_and_weight(self, simple_grid):
        cell = simple_grid.cells[(2, 2)]
        assert cell.member_count == 2
        assert cell.weight == pytest.approx(
            cell.probability * cell.member_count
        )

    def test_uniform_density_by_default(self, simple_grid):
        # 16 equal cells, uniform density: 1/16 each.
        for cell in simple_grid.cells.values():
            assert cell.probability == pytest.approx(1.0 / 16.0)

    def test_cell_rectangle(self, simple_grid):
        cell = simple_grid.cells[(0, 0)]
        assert cell.rectangle().contains_point((0.5, 0.5))
        assert not cell.rectangle().contains_point((1.5, 0.5))

    def test_validation(self):
        with pytest.raises(ValueError):
            EventGrid([], [])
        with pytest.raises(ValueError):
            EventGrid([rect2(0, 1, 0, 1)], [1, 2])
        with pytest.raises(ValueError):
            EventGrid([rect2(0, 1, 0, 1)], [1], cells_per_dim=0)
        with pytest.raises(ValueError):
            EventGrid(
                [rect2(0, 1, 0, 1)],
                [1],
                frame=((0.0,), (1.0,)),
            )
        with pytest.raises(ValueError):
            EventGrid(
                [rect2(0, 1, 0, 1)],
                [1],
                frame=((0.0, 0.0), (0.0, 1.0)),
            )

    def test_empty_rectangle_ignored(self):
        grid = EventGrid(
            [rect2(1.0, 0.0, 0.0, 1.0), rect2(0.0, 1.0, 0.0, 1.0)],
            [1, 2],
            cells_per_dim=2,
            frame=((0.0, 0.0), (2.0, 2.0)),
        )
        cell = grid.cells[(0, 0)]
        assert grid.members_of(cell.members) == [2]

    def test_unbounded_rectangle_clipped_to_frame(self):
        grid = EventGrid(
            [
                Rectangle.from_intervals(
                    [Interval(1.0, np.inf), Interval(-np.inf, np.inf)]
                )
            ],
            [7],
            cells_per_dim=4,
            frame=((0.0, 0.0), (4.0, 4.0)),
        )
        # Covers x-cells 1..3 in every y.
        assert (0, 0) not in grid.cells
        for x in (1, 2, 3):
            for y in range(4):
                assert grid.members_of(grid.cells[(x, y)].members) == [7]

    def test_fitted_frame_covers_data(self):
        grid = EventGrid(
            [rect2(-5.0, 5.0, 10.0, 30.0)], [1], cells_per_dim=3
        )
        assert grid.frame_lo[0] <= -5.0
        assert grid.frame_hi[1] >= 30.0


class TestLocate:
    def test_locate_interior(self, simple_grid):
        assert simple_grid.locate((0.5, 0.5)) == (0, 0)
        assert simple_grid.locate((3.5, 1.5)) == (3, 1)

    def test_locate_half_open_boundaries(self, simple_grid):
        # A point on a cell's high edge belongs to that cell.
        assert simple_grid.locate((1.0, 1.0)) == (0, 0)
        # The frame's low edge is outside.
        assert simple_grid.locate((0.0, 0.5)) is None
        # The frame's high edge is in the last cell.
        assert simple_grid.locate((4.0, 4.0)) == (3, 3)

    def test_locate_outside(self, simple_grid):
        assert simple_grid.locate((5.0, 1.0)) is None
        assert simple_grid.locate((-1.0, 1.0)) is None

    def test_locate_arity(self, simple_grid):
        with pytest.raises(ValueError):
            simple_grid.locate((1.0,))

    def test_locate_agrees_with_cell_bounds(self, simple_grid, rng):
        for _ in range(100):
            point = rng.uniform(0.01, 4.0, size=2)
            index = simple_grid.locate(point)
            cell = simple_grid._make_cell(index)
            assert cell.rectangle().contains_point(tuple(point))


class TestTopCells:
    def test_ordering(self, simple_grid):
        top = simple_grid.top_cells(100)
        weights = [c.weight for c in top]
        assert weights == sorted(weights, reverse=True)

    def test_count_limit(self, simple_grid):
        assert len(simple_grid.top_cells(3)) == 3

    def test_only_occupied_cells(self):
        grid = EventGrid(
            [rect2(0.0, 1.0, 0.0, 1.0)],
            [1],
            cells_per_dim=4,
            frame=((0.0, 0.0), (4.0, 4.0)),
        )
        assert len(grid.top_cells(100)) == grid.num_occupied_cells == 1

    def test_density_weighting_changes_ranking(self):
        rectangles = [rect2(0.0, 1.0, 0.0, 1.0), rect2(3.0, 4.0, 3.0, 4.0)]
        # Density concentrated near the origin.
        class CornerDensity:
            def cell_probability(self, lows, highs):
                return 1.0 if highs[0] <= 2.0 else 0.001

        grid = EventGrid(
            rectangles,
            [1, 2],
            density=CornerDensity(),
            cells_per_dim=4,
            frame=((0.0, 0.0), (4.0, 4.0)),
        )
        top = grid.top_cells(2)
        assert top[0].index == (0, 0)


class TestMembersOf:
    def test_roundtrip(self, simple_grid):
        mask = (1 << 0) | (1 << 1)
        assert simple_grid.members_of(mask) == [100, 200]
        assert simple_grid.members_of(0) == []


class TestUniformCellProbability:
    def test_normalizes(self):
        density = UniformCellProbability([0.0, 0.0], [4.0, 2.0])
        assert density.cell_probability([0, 0], [4, 2]) == pytest.approx(1.0)
        assert density.cell_probability([0, 0], [2, 1]) == pytest.approx(
            0.25
        )

    def test_clips_to_frame(self):
        density = UniformCellProbability([0.0], [10.0])
        assert density.cell_probability([-5.0], [5.0]) == pytest.approx(0.5)

    def test_zero_volume_frame_rejected(self):
        with pytest.raises(ValueError):
            UniformCellProbability([0.0, 0.0], [1.0, 0.0])

    def test_per_dimension_masses(self):
        density = UniformCellProbability([0.0, 0.0], [4.0, 4.0])
        edges = [np.array([0.0, 2.0, 4.0]), np.array([0.0, 1.0, 4.0])]
        masses = density.per_dimension_masses(edges)
        assert np.allclose(masses[0], [0.5, 0.5])
        assert np.allclose(masses[1], [0.25, 0.75])


class TestFastPathConsistency:
    def test_mixture_fast_path_equals_direct(self, small_table):
        density = nine_mode_distribution()
        grid = EventGrid(
            small_table.rectangles(),
            [s.subscriber for s in small_table],
            density=density,
            cells_per_dim=5,
        )
        for cell in list(grid.cells.values())[:40]:
            assert cell.probability == pytest.approx(
                density.cell_probability(cell.lows, cell.highs), abs=1e-12
            )
