"""Unit tests for incremental clustering maintenance."""

import pytest

from repro.clustering import (
    ClusteringResult,
    EventGrid,
    ForgyKMeansClustering,
    IncrementalClusterMaintainer,
)
from repro.geometry import Interval, Rectangle


def rect2(x0, x1, y0, y1):
    return Rectangle.from_intervals([Interval(x0, x1), Interval(y0, y1)])


@pytest.fixture()
def grid_and_result(small_table, nine_mode_density):
    grid = EventGrid(
        small_table.rectangles(),
        [s.subscriber for s in small_table],
        density=nine_mode_density,
        cells_per_dim=6,
    )
    result = ForgyKMeansClustering().cluster(grid, 5, max_cells=50)
    return grid, result


class TestConstruction:
    def test_objective_matches_result(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        # objective == weighted-EW numerator of total_expected_waste
        total_probability = sum(
            c.probability for cells in result.clusters for c in cells
        )
        assert maintainer.objective() == pytest.approx(
            result.total_expected_waste() * total_probability
        )

    def test_contains(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        clustered = result.clusters[0][0].index
        assert maintainer.contains(clustered)
        assert not maintainer.contains((99, 99))

    def test_overlapping_result_rejected(self, grid_and_result):
        grid, result = grid_and_result
        cell = result.clusters[0][0]
        bad = ClusteringResult(
            algorithm="bad", clusters=[[cell], [cell]]
        )
        with pytest.raises(AssertionError):
            IncrementalClusterMaintainer(grid, bad)


class TestRefresh:
    def test_refresh_tracks_in_place_mutation(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        new_bit_before = max(
            state.members for state in maintainer._clusters
        ).bit_length()
        # A new universal subscriber joins every cell in place...
        grid.add_subscription(Rectangle.full(4), subscriber=999_999)
        # ...but cached cluster masks only follow after a refresh.
        stale = max(state.members for state in maintainer._clusters)
        assert stale.bit_length() == new_bit_before
        maintainer.refresh()
        fresh = max(state.members for state in maintainer._clusters)
        assert fresh.bit_length() > new_bit_before

    def test_universal_subscriber_changes_no_waste(self, grid_and_result):
        """A subscriber interested in everything wastes nothing: both
        |l(G)| and every |l(g)| grow by one, so EW is invariant."""
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        before = maintainer.objective()
        grid.add_subscription(Rectangle.full(4), subscriber=999_999)
        maintainer.refresh()
        assert maintainer.objective() == pytest.approx(before)


class TestAdmit:
    def test_new_cells_admitted_once(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        unclustered = [
            cell
            for cell in grid.top_cells(80)
            if not maintainer.contains(cell.index)
        ][:5]
        if not unclustered:
            pytest.skip("grid too small to have unclustered cells")
        admitted = maintainer.admit(unclustered)
        assert admitted == len(unclustered)
        assert maintainer.admit(unclustered) == 0  # idempotent
        snapshot = maintainer.to_result()
        snapshot.validate_disjoint()
        assert snapshot.num_cells == result.num_cells + len(unclustered)

    def test_admit_picks_cheapest_cluster(self):
        # Two far-apart communities; a new cell in community A must
        # join A's cluster.
        rectangles = [rect2(0, 2, 0, 2), rect2(8, 10, 8, 10)]
        grid = EventGrid(
            rectangles,
            [1, 2],
            cells_per_dim=10,
            frame=((0.0, 0.0), (10.0, 10.0)),
        )
        cells = {c.index: c for c in grid.cells.values()}
        cluster_a = [cells[(0, 0)], cells[(0, 1)]]
        cluster_b = [cells[(9, 9)], cells[(9, 8)]]
        result = ClusteringResult("manual", [cluster_a, cluster_b])
        maintainer = IncrementalClusterMaintainer(grid, result)
        new_cell = cells[(1, 1)]  # member set == subscriber 1 == A's
        maintainer.admit([new_cell])
        snapshot = maintainer.to_result()
        a_indices = {c.index for c in snapshot.clusters[0]}
        assert (1, 1) in a_indices


class TestRebalance:
    def test_rebalance_never_worsens(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        before = maintainer.objective()
        maintainer.rebalance(max_moves=10)
        assert maintainer.objective() <= before + 1e-9

    def test_rebalance_respects_budget(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        assert maintainer.rebalance(max_moves=0) == 0
        assert maintainer.rebalance(max_moves=3) <= 3

    def test_rebalance_reaches_local_optimum(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        maintainer.rebalance(max_moves=500)
        # A second pass finds nothing to move.
        assert maintainer.rebalance(max_moves=500) == 0

    def test_negative_budget_rejected(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        with pytest.raises(ValueError):
            maintainer.rebalance(max_moves=-1)

    def test_clusters_stay_disjoint_and_nonempty(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        maintainer.rebalance(max_moves=50)
        snapshot = maintainer.to_result()
        snapshot.validate_disjoint()
        assert snapshot.num_clusters == result.num_clusters
        assert all(cells for cells in snapshot.clusters)

    def test_to_partition_is_serviceable(self, grid_and_result):
        grid, result = grid_and_result
        maintainer = IncrementalClusterMaintainer(grid, result)
        maintainer.rebalance(max_moves=10)
        partition = maintainer.to_partition()
        assert partition.num_groups == result.num_clusters
        # Every clustered cell resolves to its group.
        snapshot = maintainer.to_result()
        for q, cells in enumerate(snapshot.clusters, start=1):
            for cell in cells:
                point = tuple(
                    (lo + hi) / 2 for lo, hi in zip(cell.lows, cell.highs)
                )
                assert partition.locate(point) == q
