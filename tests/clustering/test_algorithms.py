"""Unit tests for the three clustering algorithms."""

import numpy as np
import pytest

from repro.clustering import (
    EventGrid,
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    PairwiseGroupingClustering,
)
from repro.geometry import Interval, Rectangle

ALGORITHMS = [
    ForgyKMeansClustering(),
    PairwiseGroupingClustering(),
    MinimumSpanningTreeClustering(),
]


def rect2(x0, x1, y0, y1):
    return Rectangle.from_intervals([Interval(x0, x1), Interval(y0, y1)])


@pytest.fixture(scope="module")
def two_community_grid():
    """Two spatially-separated subscriber communities.

    Subscribers 0-4 live in the lower-left quadrant, 5-9 in the
    upper-right; a sane clustering into 2 groups must not mix them.
    """
    rectangles = []
    owners = []
    rng = np.random.default_rng(5)
    for subscriber in range(5):
        for _ in range(3):
            x, y = rng.uniform(0.5, 3.5, size=2)
            rectangles.append(rect2(x - 0.4, x + 0.4, y - 0.4, y + 0.4))
            owners.append(subscriber)
    for subscriber in range(5, 10):
        for _ in range(3):
            x, y = rng.uniform(6.5, 9.5, size=2)
            rectangles.append(rect2(x - 0.4, x + 0.4, y - 0.4, y + 0.4))
            owners.append(subscriber)
    return EventGrid(
        rectangles,
        owners,
        cells_per_dim=10,
        frame=((0.0, 0.0), (10.0, 10.0)),
    )


@pytest.fixture(scope="module")
def stock_grid(small_table, nine_mode_density):
    return EventGrid(
        small_table.rectangles(),
        [s.subscriber for s in small_table],
        density=nine_mode_density,
        cells_per_dim=6,
    )


class TestCommonBehaviour:
    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_produces_requested_groups(self, two_community_grid, algorithm):
        result = algorithm.cluster(two_community_grid, 2, max_cells=50)
        assert result.num_clusters == 2
        result.validate_disjoint()

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_clusters_cover_top_cells(self, two_community_grid, algorithm):
        result = algorithm.cluster(two_community_grid, 2, max_cells=50)
        clustered = {
            c.index for cells in result.clusters for c in cells
        }
        top = {c.index for c in two_community_grid.top_cells(50)}
        assert clustered == top

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_separates_communities(self, two_community_grid, algorithm):
        result = algorithm.cluster(two_community_grid, 2, max_cells=50)
        for cells in result.clusters:
            # All cells of one cluster sit in one community's quadrant.
            sides = {cell.lows[0] < 5.0 for cell in cells}
            assert len(sides) == 1

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_validation(self, two_community_grid, algorithm):
        with pytest.raises(ValueError):
            algorithm.cluster(two_community_grid, 0)
        with pytest.raises(ValueError):
            algorithm.cluster(two_community_grid, 5, max_cells=3)

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_more_groups_never_hurt_waste(self, stock_grid, algorithm):
        few = algorithm.cluster(stock_grid, 3, max_cells=40)
        many = algorithm.cluster(stock_grid, 12, max_cells=40)
        assert (
            many.total_expected_waste()
            <= few.total_expected_waste() + 1e-6
        )

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_groups_capped_by_cells(self, two_community_grid, algorithm):
        # Requesting more groups than working cells degrades gracefully.
        occupied = two_community_grid.num_occupied_cells
        result = algorithm.cluster(
            two_community_grid, occupied + 50, max_cells=occupied + 50
        )
        assert result.num_clusters <= occupied

    @pytest.mark.parametrize("algorithm", ALGORITHMS, ids=lambda a: a.name)
    def test_deterministic(self, stock_grid, algorithm):
        a = algorithm.cluster(stock_grid, 5, max_cells=40)
        b = algorithm.cluster(stock_grid, 5, max_cells=40)
        assert [
            sorted(c.index for c in cells) for cells in a.clusters
        ] == [sorted(c.index for c in cells) for cells in b.clusters]


class TestForgySeeding:
    def test_seeding_validation(self):
        with pytest.raises(ValueError):
            ForgyKMeansClustering(seeding="random")

    def test_spread_seeding_produces_valid_clustering(self, stock_grid):
        result = ForgyKMeansClustering(seeding="spread").cluster(
            stock_grid, 6, max_cells=50
        )
        assert result.num_clusters == 6
        result.validate_disjoint()
        clustered = {c.index for cells in result.clusters for c in cells}
        assert clustered == {
            c.index for c in stock_grid.top_cells(50)
        }

    def test_spread_seeding_not_worse_on_waste(self, stock_grid):
        top = ForgyKMeansClustering(seeding="topweight").cluster(
            stock_grid, 8, max_cells=60
        )
        spread = ForgyKMeansClustering(seeding="spread").cluster(
            stock_grid, 8, max_cells=60
        )
        assert (
            spread.total_expected_waste()
            <= top.total_expected_waste() + 1e-6
        )

    def test_spread_deterministic(self, stock_grid):
        a = ForgyKMeansClustering(seeding="spread").cluster(
            stock_grid, 5, max_cells=40
        )
        b = ForgyKMeansClustering(seeding="spread").cluster(
            stock_grid, 5, max_cells=40
        )
        assert [
            sorted(c.index for c in cells) for cells in a.clusters
        ] == [sorted(c.index for c in cells) for cells in b.clusters]

    def test_seeds_when_groups_equal_cells(self, stock_grid):
        top = stock_grid.top_cells(6)
        result = ForgyKMeansClustering(seeding="spread").cluster(
            stock_grid, 6, max_cells=6
        )
        assert result.num_clusters == 6


class TestForgySpecifics:
    def test_iteration_cap(self, stock_grid):
        algorithm = ForgyKMeansClustering(max_iterations=1)
        result = algorithm.cluster(stock_grid, 5, max_cells=40)
        assert result.iterations == 1

    def test_max_iterations_validation(self):
        with pytest.raises(ValueError):
            ForgyKMeansClustering(max_iterations=0)

    def test_converges_quickly_on_separated_data(self, two_community_grid):
        result = ForgyKMeansClustering().cluster(
            two_community_grid, 2, max_cells=50
        )
        assert result.iterations < 10

    def test_singleton_cluster_cell_stays(self, two_community_grid):
        # With as many groups as cells every cluster is a singleton and
        # the "only element" guard must keep the assignment stable.
        top = two_community_grid.top_cells(6)
        result = ForgyKMeansClustering().cluster(
            two_community_grid, 6, max_cells=6
        )
        assert result.num_clusters == 6
        assert all(len(c) == 1 for c in result.clusters)


class TestPairwiseSpecifics:
    def test_merge_count(self, stock_grid):
        result = PairwiseGroupingClustering().cluster(
            stock_grid, 4, max_cells=30
        )
        # T singletons reduced to 4 clusters = T - 4 merges.
        assert result.iterations == 30 - 4

    def test_quality_at_least_mst(self, stock_grid):
        pairwise = PairwiseGroupingClustering().cluster(
            stock_grid, 6, max_cells=40
        )
        mst = MinimumSpanningTreeClustering().cluster(
            stock_grid, 6, max_cells=40
        )
        assert (
            pairwise.total_expected_waste()
            <= mst.total_expected_waste() + 1e-6
        )


class TestMstSpecifics:
    def test_component_count(self, stock_grid):
        result = MinimumSpanningTreeClustering().cluster(
            stock_grid, 7, max_cells=30
        )
        assert result.num_clusters == 7
        # Kruskal adds exactly T - n accepted edges.
        assert result.iterations == 30 - 7

    def test_single_group_joins_everything(self, stock_grid):
        result = MinimumSpanningTreeClustering().cluster(
            stock_grid, 1, max_cells=20
        )
        assert result.num_clusters == 1
        assert len(result.clusters[0]) == 20
