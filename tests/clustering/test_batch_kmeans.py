"""Unit tests for the batch k-means variant."""

import pytest

from repro.clustering import (
    BatchKMeansClustering,
    EventGrid,
    ForgyKMeansClustering,
)


@pytest.fixture(scope="module")
def stock_grid(small_table, nine_mode_density):
    return EventGrid(
        small_table.rectangles(),
        [s.subscriber for s in small_table],
        density=nine_mode_density,
        cells_per_dim=6,
    )


class TestBatchKMeans:
    def test_produces_requested_groups(self, stock_grid):
        result = BatchKMeansClustering().cluster(
            stock_grid, 6, max_cells=50
        )
        assert result.num_clusters == 6
        result.validate_disjoint()

    def test_covers_top_cells(self, stock_grid):
        result = BatchKMeansClustering().cluster(
            stock_grid, 6, max_cells=50
        )
        clustered = {c.index for cells in result.clusters for c in cells}
        top = {c.index for c in stock_grid.top_cells(50)}
        assert clustered == top

    def test_deterministic(self, stock_grid):
        a = BatchKMeansClustering().cluster(stock_grid, 5, max_cells=40)
        b = BatchKMeansClustering().cluster(stock_grid, 5, max_cells=40)
        assert [
            sorted(c.index for c in cells) for cells in a.clusters
        ] == [sorted(c.index for c in cells) for cells in b.clusters]

    def test_iteration_cap_respected(self, stock_grid):
        result = BatchKMeansClustering(max_iterations=1).cluster(
            stock_grid, 5, max_cells=40
        )
        assert result.iterations == 1

    def test_max_iterations_validation(self):
        with pytest.raises(ValueError):
            BatchKMeansClustering(max_iterations=0)

    def test_same_seeding_as_forgy(self, stock_grid):
        """Both variants share Step 1; with zero iterations allowed the
        lockstep variant must agree with Forgy's starting point."""
        batch = BatchKMeansClustering(max_iterations=1)
        forgy = ForgyKMeansClustering(max_iterations=1)
        b = batch.cluster(stock_grid, 4, max_cells=30)
        f = forgy.cluster(stock_grid, 4, max_cells=30)
        # Not necessarily identical clusters after one iteration (the
        # update disciplines differ), but the same number of clusters
        # over the same cell universe.
        assert b.num_clusters == f.num_clusters
        assert b.num_cells == f.num_cells

    def test_quality_comparable_to_forgy(self, stock_grid):
        batch = BatchKMeansClustering().cluster(
            stock_grid, 8, max_cells=60
        )
        forgy = ForgyKMeansClustering().cluster(
            stock_grid, 8, max_cells=60
        )
        # Neither variant should be wildly worse than the other.
        assert batch.total_expected_waste() <= max(
            2.0 * forgy.total_expected_waste(),
            forgy.total_expected_waste() + 5.0,
        )

    def test_name(self):
        assert BatchKMeansClustering.name == "kmeans"
