"""Catchall semantics of the space partition: S_0 is a real, stable place.

The sharding layer leans on two properties the paper leaves implicit:
points outside every clustered subset land in the catchall ``S_0``
(including points outside the grid frame entirely), and ``locate`` is
a pure function — identical across repeated calls and across pickle
round-trips, because the shard router re-derives ownership from it on
every publish.
"""

import pickle

import numpy as np
import pytest

from repro.faults.verifier import build_chaos_testbed
from repro.workload import PublicationGenerator


@pytest.fixture(scope="module")
def partition_and_points():
    broker, density = build_chaos_testbed(
        seed=31, subscriptions=200, num_groups=9
    )
    points, _ = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=37
    ).generate(300)
    return broker.partition, points


class TestCatchallMembership:
    def test_locate_covers_catchall_and_subsets(self, partition_and_points):
        partition, points = partition_and_points
        groups = {g.q for g in partition.groups}
        located = {partition.locate(p) for p in points}
        assert located <= groups | {0}
        assert 0 in located  # the workload exercises the catchall

    def test_out_of_frame_point_is_catchall(self, partition_and_points):
        partition, _ = partition_and_points
        grid = partition.grid
        beyond = np.asarray(grid.frame_hi, dtype=np.float64) + 10.0
        assert partition.locate(beyond) == 0
        below = np.asarray(grid.frame_lo, dtype=np.float64) - 10.0
        assert partition.locate(below) == 0

    def test_group_of_cell_agrees_with_locate(self, partition_and_points):
        partition, points = partition_and_points
        grid = partition.grid
        for point in points[:150]:
            cell = grid.locate(point)
            if cell is None:
                assert partition.locate(point) == 0
            else:
                assert partition.group_of_cell(cell) == partition.locate(
                    point
                )

    def test_unknown_cell_is_catchall(self, partition_and_points):
        partition, _ = partition_and_points
        # A pseudo-cell far outside the frame belongs to no subset.
        assert partition.group_of_cell((10_000, 10_000)) == 0


class TestPurity:
    def test_locate_is_pure_across_repeated_calls(
        self, partition_and_points
    ):
        partition, points = partition_and_points
        first = [partition.locate(p) for p in points]
        second = [partition.locate(p) for p in points]
        third = [partition.locate(p) for p in reversed(points)]
        assert first == second == list(reversed(third))

    def test_locate_survives_pickle_round_trip(self, partition_and_points):
        partition, points = partition_and_points
        clone = pickle.loads(pickle.dumps(partition))
        assert [clone.locate(p) for p in points] == [
            partition.locate(p) for p in points
        ]
        grid = partition.grid
        beyond = np.asarray(grid.frame_hi, dtype=np.float64) + 5.0
        assert clone.locate(beyond) == partition.locate(beyond) == 0

    def test_quantize_is_pure_geometry(self, partition_and_points):
        partition, points = partition_and_points
        grid = partition.grid
        clone = pickle.loads(pickle.dumps(grid))
        for point in points[:50]:
            assert grid.quantize(point) == clone.quantize(point)
        beyond = np.asarray(grid.frame_hi, dtype=np.float64) + 5.0
        assert grid.quantize(beyond) == clone.quantize(beyond)
        # Out-of-frame pseudo-cells sit outside the real cell range.
        assert any(
            index >= grid.cells_per_dim or index < 0
            for index in grid.quantize(beyond)
        )
