"""Unit tests for counters, gauges, histograms and the registry."""

import numpy as np
import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    NullMetricsRegistry,
    exponential_buckets,
    prometheus_text,
)


class TestCounterGauge:
    def test_counter_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc()
        counter.inc(4)
        assert registry.value("events") == 5.0

    def test_counter_rejects_negative(self):
        with pytest.raises(ValueError):
            MetricsRegistry().counter("x").inc(-1)

    def test_counter_is_shared_on_retouch(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("depth")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc(1)
        assert gauge.value == 8.0

    def test_labels_fan_out_into_children(self):
        registry = MetricsRegistry()
        registry.counter("tx", link="1-2").inc(7)
        registry.counter("tx", link="3-4").inc(1)
        assert registry.value("tx", link="1-2") == 7.0
        assert registry.value("tx", link="3-4") == 1.0
        assert len(registry.get("tx").children) == 2

    def test_label_order_is_canonical(self):
        registry = MetricsRegistry()
        a = registry.counter("x", b="2", a="1")
        b = registry.counter("x", a="1", b="2")
        assert a is b

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")

    def test_value_default_for_missing(self):
        assert MetricsRegistry().value("absent", default=-1.0) == -1.0


class TestHistogram:
    def test_bounds_must_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0, 2.0))
        with pytest.raises(ValueError):
            Histogram(bounds=())

    def test_basic_stats(self):
        histogram = Histogram(bounds=(1.0, 10.0, 100.0))
        for value in (0.5, 5.0, 50.0, 500.0):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.sum == pytest.approx(555.5)
        assert histogram.mean == pytest.approx(138.875)
        assert histogram.minimum == 0.5
        assert histogram.maximum == 500.0
        assert histogram.counts == [1, 1, 1, 1]  # last = overflow

    def test_empty_histogram_quantile_is_zero(self):
        assert Histogram().p50 == 0.0

    def test_quantile_validates_range(self):
        with pytest.raises(ValueError):
            Histogram().quantile(1.5)

    @pytest.mark.parametrize("q", [0.5, 0.9, 0.95, 0.99])
    def test_quantiles_close_to_numpy(self, q, rng):
        # Estimates interpolate inside a fixed bucket, so agreement
        # with the exact order statistic is bounded by one bucket
        # width around the true quantile.
        sample = rng.lognormal(mean=0.0, sigma=1.0, size=20_000)
        bounds = exponential_buckets(0.01, 2 ** 0.25, 60)
        histogram = Histogram(bounds=bounds)
        for value in sample:
            histogram.observe(value)
        exact = float(np.percentile(sample, 100 * q))
        estimate = histogram.quantile(q)
        upper = next(b for b in bounds if b >= exact)
        width = upper * (2 ** 0.25 - 1)
        assert abs(estimate - exact) <= width

    def test_quantiles_clamped_to_observed_range(self):
        histogram = Histogram(bounds=(10.0, 100.0))
        histogram.observe(42.0)
        assert histogram.quantile(0.0) == 42.0
        assert histogram.quantile(1.0) == 42.0

    def test_overflow_bucket_quantile(self):
        histogram = Histogram(bounds=(1.0,))
        histogram.observe(1000.0)
        # No upper edge to interpolate toward; reports the best known
        # lower bound for the overflow bucket.
        assert histogram.quantile(0.99) == 1000.0

    def test_exponential_buckets_validation(self):
        with pytest.raises(ValueError):
            exponential_buckets(0.0, 2.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 1.0, 4)
        with pytest.raises(ValueError):
            exponential_buckets(1.0, 2.0, 0)

    def test_default_buckets_span_latency_range(self):
        assert DEFAULT_BUCKETS[0] == pytest.approx(0.01)
        assert DEFAULT_BUCKETS[-1] > 1e4


class TestPrometheusExport:
    def test_counter_and_labels(self):
        registry = MetricsRegistry()
        registry.counter("net.tx", help="copies", link="1-2").inc(3)
        text = prometheus_text(registry)
        assert "# HELP net_tx copies" in text
        assert "# TYPE net_tx counter" in text
        assert 'net_tx{link="1-2"} 3' in text

    def test_histogram_cumulative_buckets(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", bounds=(1.0, 10.0))
        for value in (0.5, 0.6, 5.0, 50.0):
            histogram.observe(value)
        text = prometheus_text(registry)
        assert 'lat_bucket{le="1"} 2' in text
        assert 'lat_bucket{le="10"} 3' in text
        assert 'lat_bucket{le="+Inf"} 4' in text
        assert "lat_sum 56.1" in text
        assert "lat_count 4" in text

    def test_numbers_are_plain_floats(self):
        registry = MetricsRegistry()
        registry.histogram("x", bounds=(1.0,)).observe(
            np.float64(0.25)
        )
        text = prometheus_text(registry)
        assert "float64" not in text
        assert "x_sum 0.25" in text

    def test_empty_registry_is_empty_string(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestNullRegistry:
    def test_records_nothing_allocates_nothing(self):
        registry = NullMetricsRegistry()
        a = registry.counter("x", link="1")
        b = registry.counter("y", link="2")
        assert a is b  # shared inert instrument
        a.inc(100)
        assert a.value == 0.0
        registry.gauge("g").set(5)
        registry.histogram("h").observe(1.0)
        assert registry.value("x") == 0.0
        assert prometheus_text(registry) == ""
