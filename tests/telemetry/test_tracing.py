"""Unit tests for spans, deterministic ids, and trace export."""

import json

import pytest

from repro.telemetry import (
    NULL_SPAN,
    NullTracer,
    Tracer,
    format_span_tree,
    span_tree,
    spans_to_jsonl,
    write_spans_jsonl,
)


class TestSpanLifecycle:
    def test_parent_child_inherits_trace(self):
        tracer = Tracer()
        root = tracer.start_span("event", trace_id=17)
        child = tracer.start_span("match", parent=root)
        assert child.trace_id == 17
        assert child.parent_id == root.span_id

    def test_finish_is_idempotent(self):
        tracer = Tracer()
        span = tracer.start_span("x")
        span.finish(time=5.0)
        span.finish(time=99.0, status="error")
        assert span.end == 5.0
        assert span.status == "ok"
        assert len(tracer.spans) == 1

    def test_attributes_chain(self):
        span = Tracer().start_span("x")
        assert span.set_attribute("a", 1).set_attribute("b", 2) is span
        assert span.attributes == {"a": 1, "b": 2}

    def test_context_manager_records_error_status(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.spans[-1].status == "error"

    def test_event_is_instant(self):
        tracer = Tracer()
        marker = tracer.event("retry", attempt=2)
        assert marker.end == marker.start
        assert marker.attributes["attempt"] == 2

    def test_injected_clock_drives_timestamps(self):
        times = iter([10.0, 20.0])
        tracer = Tracer(clock=lambda: next(times))
        span = tracer.start_span("x")
        span.finish()
        assert (span.start, span.end) == (10.0, 20.0)
        assert span.duration == 10.0


class TestDeterministicIds:
    def test_same_seed_same_ids(self):
        def run(seed):
            tracer = Tracer(seed=seed)
            root = tracer.start_span("event", trace_id=0)
            tracer.start_span("match", parent=root).finish()
            root.finish()
            return [s.span_id for s in tracer.spans]

        assert run(7) == run(7)
        assert run(7) != run(8)

    def test_ids_never_collide_within_a_run(self):
        tracer = Tracer(seed=3)
        ids = {tracer.start_span("s").span_id for _ in range(5000)}
        assert len(ids) == 5000

    def test_no_wall_clock_by_default(self):
        # The default logical clock ticks 0, 1, 2, ... — fully
        # deterministic without any time source.
        tracer = Tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        assert (a.start, b.start) == (0.0, 1.0)


class TestRetention:
    def test_cap_drops_oldest(self):
        tracer = Tracer(max_spans=10)
        for index in range(25):
            tracer.start_span("s", trace_id=index).finish()
        assert len(tracer.spans) <= 10
        assert tracer.dropped > 0
        # The newest spans survive.
        assert tracer.spans[-1].trace_id == 24

    def test_clear(self):
        tracer = Tracer()
        tracer.start_span("s").finish()
        tracer.clear()
        assert tracer.spans == []
        assert tracer.dropped == 0


class TestJsonlExport:
    def _sample_tracer(self):
        tracer = Tracer(seed=5)
        root = tracer.start_span("event", trace_id=3, publisher=9)
        child = tracer.start_span("deliver", parent=root)
        child.finish(time=2.5)
        root.finish(time=3.0)
        return tracer

    def test_round_trip(self):
        tracer = self._sample_tracer()
        lines = list(spans_to_jsonl(tracer.spans))
        decoded = [json.loads(line) for line in lines]
        assert [d["name"] for d in decoded] == ["deliver", "event"]
        assert decoded[0]["parent_id"] == decoded[1]["span_id"]
        assert decoded[1]["attributes"] == {"publisher": 9}
        # Stable key order makes reruns diffable.
        assert lines[0].index('"attributes"') < lines[0].index('"name"')

    def test_write_to_path(self, tmp_path):
        tracer = self._sample_tracer()
        path = tmp_path / "spans.jsonl"
        count = write_spans_jsonl(tracer.spans, str(path))
        assert count == 2
        assert len(path.read_text().strip().splitlines()) == 2

    def test_span_tree_orders_parents_first(self):
        tracer = Tracer()
        root = tracer.start_span("event", trace_id=1)
        a = tracer.start_span("route", parent=root)
        leaf = tracer.start_span("deliver", parent=a)
        leaf.finish()
        a.finish()
        root.finish()
        other = tracer.start_span("event", trace_id=2)
        other.finish()
        ordered = span_tree(tracer.spans, 1)
        assert [s.name for s in ordered] == ["event", "route", "deliver"]

    def test_span_tree_keeps_orphans(self):
        tracer = Tracer()
        root = tracer.start_span("event", trace_id=1)
        child = tracer.start_span("deliver", parent=root)
        child.finish()
        # Root never finished (e.g. evicted): the child must still
        # appear, promoted to a root.
        ordered = span_tree(tracer.spans, 1)
        assert [s.name for s in ordered] == ["deliver"]

    def test_format_span_tree_indents(self):
        tracer = self._sample_tracer()
        rendered = format_span_tree(span_tree(tracer.spans, 3))
        lines = rendered.splitlines()
        assert lines[0].startswith("event ")
        assert lines[1].startswith("  deliver ")


class TestNullTracer:
    def test_all_calls_return_the_shared_inert_span(self):
        tracer = NullTracer()
        span = tracer.start_span("x", trace_id=1, a=2)
        assert span is NULL_SPAN
        assert not span.is_recording
        assert span.set_attribute("k", "v") is span
        assert span.attributes == {}
        assert tracer.event("y") is NULL_SPAN
        with tracer.span("z") as managed:
            assert managed is NULL_SPAN
        assert tracer.spans == []

    def test_null_span_never_parents(self):
        live = Tracer()
        child = live.start_span("c", parent=NULL_SPAN, trace_id=4)
        assert child.parent_id is None
        assert child.trace_id == 4
