"""End-to-end trace integrity on a faulty, retrying chaos run.

One seeded run with lossy links and a broker crash produces the full
lifecycle — ``event → match / distribution-decision / route →
deliver → retry / ack`` — and the trace must hold together: every
parent id resolves, children nest inside their parents' trace, retries
actually appear, and the whole thing is byte-identical when re-run.
"""

import json

import pytest

from repro.faults.verifier import (
    ChaosSimulation,
    build_chaos_plan,
    build_chaos_testbed,
)
from repro.telemetry import Telemetry, span_tree, spans_to_jsonl
from repro.workload import PublicationGenerator

EVENTS = 60
SEED = 23


def _instrumented_run():
    broker, density = build_chaos_testbed(seed=SEED, subscriptions=150)
    plan = build_chaos_plan(
        broker.topology, seed=SEED, loss=0.12, horizon=float(EVENTS)
    )
    telemetry = Telemetry(seed=SEED)
    simulation = ChaosSimulation(
        broker, plan, reliable=True, telemetry=telemetry
    )
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=SEED + 9
    ).generate(EVENTS)
    report = simulation.run(points, publishers)
    return report, telemetry


@pytest.fixture(scope="module")
def faulty_run():
    return _instrumented_run()


class TestSpanIntegrity:
    def test_retries_happened(self, faulty_run):
        # The scenario must actually exercise the retry path, or the
        # rest of this module proves nothing.
        report, telemetry = faulty_run
        assert report.exactly_once
        assert telemetry.metrics.value("transport.retries") > 0
        assert any(s.name == "retry" for s in telemetry.tracer.spans)

    def test_every_parent_resolves_within_its_trace(self, faulty_run):
        _, telemetry = faulty_run
        spans = telemetry.tracer.spans
        assert telemetry.tracer.dropped == 0
        by_id = {s.span_id: s for s in spans}
        for span in spans:
            if span.parent_id is None:
                continue
            parent = by_id[span.parent_id]
            assert parent.trace_id == span.trace_id

    def test_lifecycle_shape(self, faulty_run):
        _, telemetry = faulty_run
        spans = telemetry.tracer.spans
        by_id = {s.span_id: s for s in spans}
        expected_parent = {
            "match": "event",
            "distribution-decision": "event",
            "route": "event",
            "deliver": "route",
            "retry": "deliver",
            "ack": "deliver",
        }
        for span in spans:
            if span.name == "event":
                assert span.parent_id is None
            else:
                assert span.name in expected_parent
                assert by_id[span.parent_id].name == expected_parent[
                    span.name
                ]

    def test_roots_cover_every_published_event(self, faulty_run):
        _, telemetry = faulty_run
        roots = [s for s in telemetry.tracer.spans if s.name == "event"]
        assert len(roots) == EVENTS
        assert sorted(s.trace_id for s in roots) == list(range(EVENTS))

    def test_spans_are_finished_and_causally_ordered(self, faulty_run):
        _, telemetry = faulty_run
        by_id = {s.span_id: s for s in telemetry.tracer.spans}
        for span in telemetry.tracer.spans:
            assert span.end is not None
            assert span.end >= span.start
            if span.parent_id is not None:
                # A child never starts before its parent.
                assert span.start >= by_id[span.parent_id].start

    def test_timestamps_are_simulated_time(self, faulty_run):
        report, telemetry = faulty_run
        # Simulated time, not wall time: the latest span activity fits
        # inside the simulation horizon the report measured.
        last = max(s.end for s in telemetry.tracer.spans)
        assert last <= report.finished_at

    def test_retry_spans_attach_to_their_delivery(self, faulty_run):
        _, telemetry = faulty_run
        by_id = {s.span_id: s for s in telemetry.tracer.spans}
        retries = [
            s for s in telemetry.tracer.spans if s.name == "retry"
        ]
        assert retries
        for retry in retries:
            assert by_id[retry.parent_id].name == "deliver"
            # The first data send is attempt 1; retries start at 2.
            assert retry.attributes["attempt"] >= 2

    def test_retry_spans_match_retry_counter(self, faulty_run):
        _, telemetry = faulty_run
        spans = telemetry.tracer.spans
        retry_spans = sum(1 for s in spans if s.name == "retry")
        assert retry_spans == telemetry.metrics.value(
            "transport.retries"
        )
        gave_up = [
            s
            for s in spans
            if s.name == "deliver" and s.status == "gave_up"
        ]
        assert not gave_up  # exactly-once run delivered everything
        # ``attempts`` counts sends up to first arrival, so it can lag
        # the retry total (a timeout may race an in-flight ack) but
        # never exceed attempts-per-delivery overall.
        extra_attempts = sum(
            s.attributes["attempts"] - 1
            for s in spans
            if s.name == "deliver"
        )
        assert extra_attempts <= retry_spans


class TestDeterminism:
    def test_rerun_is_byte_identical(self, faulty_run):
        _, first = faulty_run
        _, second = _instrumented_run()
        first_lines = "\n".join(spans_to_jsonl(first.tracer.spans))
        second_lines = "\n".join(spans_to_jsonl(second.tracer.spans))
        assert first_lines == second_lines

    def test_single_trace_export_is_well_formed(self, faulty_run):
        _, telemetry = faulty_run
        with_retry = next(
            s.trace_id
            for s in telemetry.tracer.spans
            if s.name == "retry"
        )
        ordered = span_tree(telemetry.tracer.spans, with_retry)
        seen = set()
        for line in spans_to_jsonl(ordered):
            decoded = json.loads(line)
            assert (
                decoded["parent_id"] is None
                or decoded["parent_id"] in seen
            )
            seen.add(decoded["span_id"])
        names = {s.name for s in ordered}
        assert {"event", "match", "route", "deliver", "retry"} <= names
