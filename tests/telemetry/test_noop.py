"""NullTelemetry must leave every result bit-for-bit unchanged.

The default ``telemetry=None`` resolves to the shared
:data:`~repro.telemetry.base.NULL_TELEMETRY`; these tests pin down the
guarantee that instrumentation is observationally free — the same
tallies, the same chaos verdicts, the same numbers everywhere.
"""

import dataclasses

from repro.clustering import ForgyKMeansClustering
from repro.core import PubSubBroker, ThresholdPolicy
from repro.faults.verifier import (
    ChaosSimulation,
    build_chaos_plan,
    build_chaos_testbed,
)
from repro.relay.delivery import RelayDeliveryService
from repro.telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry
from repro.workload import PublicationGenerator


def _broker(topology, table, density, telemetry):
    return PubSubBroker.preprocess(
        topology,
        table,
        ForgyKMeansClustering(),
        num_groups=6,
        density=density,
        telemetry=telemetry,
    ).with_policy(ThresholdPolicy(0.15))


class TestNullObject:
    def test_null_telemetry_is_disabled(self):
        assert not NullTelemetry().enabled
        assert not NULL_TELEMETRY.enabled
        assert Telemetry().enabled

    def test_null_accepts_every_call(self):
        telemetry = NullTelemetry()
        telemetry.counter("a").inc()
        telemetry.gauge("b").set(2)
        telemetry.histogram("c").observe(3.0)
        span = telemetry.start_span("s", trace_id=1)
        span.set_attribute("k", "v").finish()
        telemetry.bind_clock(lambda: 99.0)
        assert telemetry.clock() == 0.0


class TestBrokerRunsUnchanged:
    def test_cost_tally_identical_with_and_without_telemetry(
        self, small_topology, small_table, nine_mode_density, small_events
    ):
        points, publishers = small_events
        baseline = _broker(
            small_topology, small_table, nine_mode_density, None
        )
        instrumented = _broker(
            small_topology, small_table, nine_mode_density, Telemetry()
        )
        tally_base, records_base = baseline.run(points, publishers)
        tally_inst, records_inst = instrumented.run(points, publishers)
        assert dataclasses.asdict(tally_base) == dataclasses.asdict(
            tally_inst
        )
        assert records_base == records_inst
        # ... and the instrumented run actually measured something.
        assert (
            instrumented.telemetry.metrics.value("broker.events")
            == len(points)
        )

    def test_null_telemetry_records_nothing(
        self, small_topology, small_table, nine_mode_density, small_events
    ):
        points, publishers = small_events
        broker = _broker(
            small_topology, small_table, nine_mode_density, NullTelemetry()
        )
        broker.run(points, publishers)
        assert list(broker.telemetry.metrics.families()) == []
        assert broker.telemetry.tracer.spans == []


class TestRelayRunsUnchanged:
    def test_relay_tally_identical(
        self, small_topology, small_table, small_events
    ):
        points, publishers = small_events
        points, publishers = points[:50], publishers[:50]
        baseline = RelayDeliveryService(small_topology, small_table)
        instrumented = RelayDeliveryService(
            small_topology, small_table, telemetry=Telemetry()
        )
        tally_base, outcomes_base = baseline.run(points, publishers)
        tally_inst, outcomes_inst = instrumented.run(points, publishers)
        assert dataclasses.asdict(tally_base) == dataclasses.asdict(
            tally_inst
        )
        assert outcomes_base == outcomes_inst


class TestChaosRunsUnchanged:
    def test_chaos_report_identical_under_faults(self):
        def run(telemetry):
            broker, density = build_chaos_testbed(
                seed=41, subscriptions=120
            )
            plan = build_chaos_plan(
                broker.topology, seed=41, loss=0.1, horizon=40.0
            )
            simulation = ChaosSimulation(
                broker, plan, reliable=True, telemetry=telemetry
            )
            points, publishers = PublicationGenerator(
                density, broker.topology.all_stub_nodes(), seed=50
            ).generate(40)
            return simulation.run(points, publishers)

        baseline = run(None)
        instrumented = run(Telemetry(seed=41))
        assert dataclasses.asdict(baseline) == dataclasses.asdict(
            instrumented
        )
        assert baseline.exactly_once
