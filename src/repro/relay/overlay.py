"""The broker overlay: a tree of relay brokers over the backbone.

Content-based routing systems in the Gryphon/Siena tradition (the
architecture the paper's introduction builds on) deploy *brokers* that
form an acyclic overlay; clients attach to a nearby broker, and events
flow broker-to-broker, filtered at each hop against the subscriptions
registered downstream.

On the transit-stub testbed the natural deployment is one broker per
transit node: the overlay tree is a minimum spanning tree of the
transit backbone (transit-transit links only, weighted by their
costs), and every stub node attaches to its stub's gateway transit
node — the router its traffic physically crosses anyway.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from ..network.routing import RoutingTable
from ..network.topology import Topology

__all__ = ["BrokerOverlay"]


class BrokerOverlay:
    """Brokers, their tree links, and client attachments."""

    def __init__(
        self,
        topology: Topology,
        routing: Optional[RoutingTable] = None,
    ):
        self.topology = topology
        self.routing = routing or RoutingTable.from_topology(topology)

        self.brokers: List[int] = topology.all_transit_nodes()
        if not self.brokers:
            raise ValueError("topology has no transit nodes to host brokers")
        backbone = topology.graph.subgraph(self.brokers)
        if not nx.is_connected(backbone):
            raise ValueError("transit backbone must be connected")
        tree = nx.minimum_spanning_tree(backbone, weight="cost")
        self._adjacency: Dict[int, List[int]] = {
            broker: sorted(tree.neighbors(broker)) for broker in self.brokers
        }
        self._link_cost: Dict[Tuple[int, int], float] = {}
        for u, v, data in tree.edges(data=True):
            self._link_cost[(u, v)] = float(data["cost"])
            self._link_cost[(v, u)] = float(data["cost"])

        # next_hop[(at, toward)] -> neighbor on the unique tree path.
        self._next_hop: Dict[Tuple[int, int], int] = {}
        for source in self.brokers:
            parent = {source: source}
            frontier = [source]
            while frontier:
                node = frontier.pop()
                for neighbor in self._adjacency[node]:
                    if neighbor not in parent:
                        parent[neighbor] = node
                        frontier.append(neighbor)
            for target, via in parent.items():
                if target == source:
                    continue
                # Walk one step back from target toward source to find
                # the hop *out of source*: invert by climbing.
                node = target
                while parent[node] != source:
                    node = parent[node]
                self._next_hop[(source, target)] = node

    # -- structure -----------------------------------------------------------

    def neighbors(self, broker: int) -> List[int]:
        """Tree neighbors of a broker."""
        return self._adjacency[broker]

    def alive_neighbors(self, broker: int, faults) -> List[int]:
        """Tree neighbors reachable over currently-alive links/brokers.

        ``faults`` is any fault snapshot exposing ``link_dead(u, v)``
        (a :class:`~repro.faults.plan.FaultState` fits); a link whose
        far broker is crashed counts as dead.
        """
        return [
            neighbor
            for neighbor in self._adjacency[broker]
            if not faults.link_dead(broker, neighbor)
        ]

    def reachable_brokers(self, entry: int, faults) -> set[int]:
        """Brokers reachable from ``entry`` over the alive overlay tree."""
        if faults.node_dead(entry):
            return set()
        reached = {entry}
        frontier = [entry]
        while frontier:
            broker = frontier.pop()
            for neighbor in self.alive_neighbors(broker, faults):
                if neighbor not in reached:
                    reached.add(neighbor)
                    frontier.append(neighbor)
        return reached

    def link_cost(self, u: int, v: int) -> float:
        """Physical cost of one overlay (backbone) link."""
        try:
            return self._link_cost[(u, v)]
        except KeyError:
            raise ValueError(f"({u}, {v}) is not an overlay link") from None

    def next_hop(self, at: int, toward: int) -> int:
        """The neighbor of ``at`` on the unique tree path to ``toward``."""
        if at == toward:
            raise ValueError("already at the destination broker")
        return self._next_hop[(at, toward)]

    def broker_of(self, node: int) -> int:
        """The broker a client node attaches to."""
        return self.topology.transit_node_of(node)

    def access_cost(self, node: int) -> float:
        """Physical cost between a client and its broker."""
        return self.routing.distance(node, self.broker_of(node))

    def tree_path(self, source: int, target: int) -> List[int]:
        """Brokers on the unique overlay path, inclusive of endpoints."""
        path = [source]
        node = source
        while node != target:
            node = self.next_hop(node, target)
            path.append(node)
        return path

    @property
    def num_links(self) -> int:
        """Number of overlay tree links (brokers - 1)."""
        return len(self._link_cost) // 2
