"""Content-based routing over the broker overlay.

Each broker holds, per overlay link, a summary of every subscription
whose subscriber lives *behind* that link; an event is forwarded on
exactly the links whose summary it matches, and delivered to local
clients whose subscriptions match.  This is the Siena-style
"filtering tree" architecture, built here as a baseline against the
paper's precomputed-multicast-groups approach.

Three summary representations:

- ``"exact"`` — the full rectangle set per link, matched with the
  vectorized point kernel.  No false forwarding, maximal state.
- ``"covering"`` — the exact set minus every rectangle covered by
  another rectangle *on the same link*.  Forwarding only asks "does
  anything behind this link match?", so dropping covered entries is
  lossless — same zero false positives, less state.  (This is the
  subscription-aggregation idea of Siena-style systems.)
- ``"mbr"`` — one minimum bounding rectangle per link (the classic
  lossy aggregation).  Tiny state, but any event inside the hull of a
  link's subscriptions is forwarded — false positives that cost
  traffic.  Deliveries remain exact because home brokers always match
  their local clients' real subscriptions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..core.subscription import SubscriptionTable
from ..geometry.arrays import point_membership_mask
from .overlay import BrokerOverlay

__all__ = ["RoutingOutcome", "ContentRouter"]


@dataclass(frozen=True)
class RoutingOutcome:
    """What routing one event through the overlay did."""

    subscribers: Tuple[int, ...]  # delivered (distinct, sorted)
    total_cost: float             # physical cost, end to end
    brokers_visited: int
    links_crossed: int
    fallback_unicasts: int = 0    # stranded subscribers served directly
    undeliverable: Tuple[int, ...] = ()  # unreachable while faults last

    @property
    def delivered(self) -> int:
        return len(self.subscribers)


class _LinkSummary:
    """Per-link forwarding state under one aggregation policy."""

    def __init__(
        self,
        lows: np.ndarray,
        highs: np.ndarray,
        aggregation: str,
    ):
        self.entries = int(lows.shape[0])
        if aggregation == "mbr":
            self._lows = lows.min(axis=0, keepdims=True)
            self._highs = highs.max(axis=0, keepdims=True)
            self.state_size = 1
        elif aggregation == "covering":
            keep = _uncovered_mask(lows, highs)
            self._lows = lows[keep]
            self._highs = highs[keep]
            self.state_size = int(keep.sum())
        else:
            self._lows = lows
            self._highs = highs
            self.state_size = self.entries

    def matches(self, point: np.ndarray) -> bool:
        return bool(
            point_membership_mask(self._lows, self._highs, point).any()
        )


def _uncovered_mask(lows: np.ndarray, highs: np.ndarray) -> np.ndarray:
    """Rows not contained in any other row (ties keep the first).

    All-pairs containment via broadcasting; the sets here are per-link
    slices of the subscription table, small enough that the O(k^2 N)
    boolean tensor is cheap.
    """
    k = lows.shape[0]
    if k <= 1:
        return np.ones(k, dtype=bool)
    # contains[i, j] == True  <=>  rectangle i contains rectangle j.
    contains = np.all(
        (lows[:, None, :] <= lows[None, :, :])
        & (highs[:, None, :] >= highs[None, :, :]),
        axis=2,
    )
    np.fill_diagonal(contains, False)
    identical = np.all(
        (lows[:, None, :] == lows[None, :, :])
        & (highs[:, None, :] == highs[None, :, :]),
        axis=2,
    )
    np.fill_diagonal(identical, False)
    # Row i is covered when some j strictly contains it (contains.T:
    # [i, j] == "j contains i"), or an identical earlier row exists.
    earlier = np.arange(k)[:, None] > np.arange(k)[None, :]
    covered_by = (contains.T & ~identical) | (identical & earlier)
    return ~covered_by.any(axis=1)


class ContentRouter:
    """Forwarding state for a whole overlay, plus the routing loop."""

    AGGREGATIONS = ("exact", "covering", "mbr")

    def __init__(
        self,
        overlay: BrokerOverlay,
        table: SubscriptionTable,
        aggregation: str = "exact",
    ):
        if aggregation not in self.AGGREGATIONS:
            raise ValueError(
                f"aggregation must be one of {self.AGGREGATIONS}, got "
                f"{aggregation!r}"
            )
        self.overlay = overlay
        self.table = table
        self.aggregation = aggregation

        # Home broker of every subscription's subscriber.
        self._home: Dict[int, int] = {}
        subscriptions_by_home: Dict[int, List[int]] = {}
        for subscription in table:
            home = overlay.broker_of(subscription.subscriber)
            self._home[subscription.subscription_id] = home
            subscriptions_by_home.setdefault(home, []).append(
                subscription.subscription_id
            )

        lows, highs = table.to_arrays()

        # Local delivery state: per broker, its clients' subscriptions.
        self._local: Dict[int, "tuple[np.ndarray, np.ndarray, np.ndarray]"] = {}
        for broker, ids in subscriptions_by_home.items():
            idx = np.asarray(ids, dtype=np.int64)
            self._local[broker] = (lows[idx], highs[idx], idx)

        # Forwarding state: per (broker, neighbor), the subscriptions
        # homed in the subtree entered through that neighbor.
        behind: Dict[Tuple[int, int], List[int]] = {}
        for subscription in table:
            home = self._home[subscription.subscription_id]
            for broker in overlay.brokers:
                if broker == home:
                    continue
                hop = overlay.next_hop(broker, home)
                behind.setdefault((broker, hop), []).append(
                    subscription.subscription_id
                )
        self._links: Dict[Tuple[int, int], _LinkSummary] = {}
        for key, ids in behind.items():
            idx = np.asarray(ids, dtype=np.int64)
            self._links[key] = _LinkSummary(
                lows[idx], highs[idx], aggregation
            )

    # -- introspection -------------------------------------------------------

    def state_entries(self) -> int:
        """Total summary entries across all broker links.

        The state-vs-traffic trade-off's state side: ``exact`` stores
        every subscription once per link it lies behind; ``mbr`` one
        box per link.
        """
        return sum(summary.state_size for summary in self._links.values())

    # -- the routing loop --------------------------------------------------------

    def route(
        self,
        point: Sequence[float],
        publisher: int,
        faults=None,
    ) -> RoutingOutcome:
        """Flood-with-filtering from the publisher's broker.

        With a fault snapshot (``faults`` exposing ``node_dead`` /
        ``link_dead``, e.g. a :class:`~repro.faults.plan.FaultState`),
        the flood only crosses alive brokers and overlay links, and
        subscribers whose node is down are reported as undeliverable.
        Subscribers stranded behind dead parts of the overlay are the
        caller's to repair (see
        :meth:`repro.relay.delivery.RelayDeliveryService.publish`).
        """
        point = np.asarray(point, dtype=np.float64)
        if point.shape != (self.table.ndim,):
            raise ValueError(
                f"point must have {self.table.ndim} coordinates"
            )
        entry_broker = self.overlay.broker_of(publisher)
        if faults is not None and (
            faults.node_dead(entry_broker) or faults.node_dead(publisher)
        ):
            # The event cannot even be injected into the overlay.
            return RoutingOutcome(
                subscribers=(),
                total_cost=0.0,
                brokers_visited=0,
                links_crossed=0,
            )
        total_cost = self.overlay.routing.distance(publisher, entry_broker)

        delivered: Set[int] = set()
        dead_subscribers: Set[int] = set()
        brokers_visited = 0
        links_crossed = 0
        # (broker, came_from) pairs; the tree guarantees no revisits.
        frontier: List[Tuple[int, Optional[int]]] = [(entry_broker, None)]
        while frontier:
            broker, came_from = frontier.pop()
            brokers_visited += 1
            local = self._local.get(broker)
            if local is not None:
                local_lows, local_highs, local_ids = local
                mask = point_membership_mask(local_lows, local_highs, point)
                for subscription_id in local_ids[mask]:
                    subscriber = self.table.subscriber_of(
                        int(subscription_id)
                    )
                    # The publisher needs no delivery of its own event
                    # (consistent with the broker's recipient rule).
                    if subscriber == publisher:
                        continue
                    if faults is not None and faults.node_dead(subscriber):
                        dead_subscribers.add(subscriber)
                        continue
                    if subscriber not in delivered:
                        delivered.add(subscriber)
                        total_cost += self.overlay.routing.distance(
                            broker, subscriber
                        )
            neighbors = (
                self.overlay.neighbors(broker)
                if faults is None
                else self.overlay.alive_neighbors(broker, faults)
            )
            for neighbor in neighbors:
                if neighbor == came_from:
                    continue
                summary = self._links.get((broker, neighbor))
                if summary is None or not summary.matches(point):
                    continue
                links_crossed += 1
                total_cost += self.overlay.link_cost(broker, neighbor)
                frontier.append((neighbor, broker))

        return RoutingOutcome(
            subscribers=tuple(sorted(delivered)),
            total_cost=total_cost,
            brokers_visited=brokers_visited,
            links_crossed=links_crossed,
            undeliverable=tuple(sorted(dead_subscribers)),
        )
