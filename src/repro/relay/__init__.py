"""Content-based routing over a broker overlay (Siena/Gryphon style).

The architectural baseline the paper's approach competes with: instead
of precomputing multicast groups and deciding unicast-vs-multicast per
event, relay brokers form a tree and filter events hop by hop against
per-link subscription summaries.  Provided so the benchmarks can put
the two architectures side by side on the same testbed.
"""

from .delivery import RelayDeliveryService
from .overlay import BrokerOverlay
from .router import ContentRouter, RoutingOutcome

__all__ = [
    "RelayDeliveryService",
    "BrokerOverlay",
    "ContentRouter",
    "RoutingOutcome",
]
