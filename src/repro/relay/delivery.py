"""Workload evaluation for the content-routed (relay) architecture.

Runs a publication workload through the broker overlay and produces
the same :class:`~repro.network.multicast.CostTally` the clustered
multicast broker produces, so the two architectures — Siena-style
filtering trees vs the paper's precomputed groups + threshold rule —
are directly comparable on improvement percentage.

One architectural asymmetry is kept deliberately: the paper's model
assumes a matcher that knows an event has no interested subscribers
(such events cost nothing), while a relay publisher must always inject
the event into its broker, and brokers may forward it before filtering
kills it.  The injection and dead-end forwarding costs are charged to
the relay scheme — that is exactly the price of decentralized
matching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.matching import MatchingEngine
from ..core.subscription import SubscriptionTable
from ..network.multicast import CostTally, DeliveryCostModel
from ..network.topology import Topology
from .overlay import BrokerOverlay
from .router import ContentRouter, RoutingOutcome

__all__ = ["RelayDeliveryService"]


class RelayDeliveryService:
    """End-to-end content-routed delivery with cost accounting."""

    def __init__(
        self,
        topology: Topology,
        table: SubscriptionTable,
        aggregation: str = "exact",
        cost_model: Optional[DeliveryCostModel] = None,
    ):
        self.topology = topology
        self.table = table
        self.costs = cost_model or DeliveryCostModel(topology)
        self.overlay = BrokerOverlay(
            topology, routing=self.costs.routing
        )
        self.router = ContentRouter(
            self.overlay, table, aggregation=aggregation
        )
        # Reference matcher for the unicast/ideal baselines (and the
        # exactness cross-check in tests).
        self.engine = MatchingEngine(table, backend="stree")

    def publish(
        self, point: Sequence[float], publisher: int
    ) -> "Tuple[RoutingOutcome, float, float]":
        """Route one event; returns (outcome, unicast_ref, ideal_ref)."""
        outcome = self.router.route(point, int(publisher))
        match = self.engine.match_point(point)
        recipients = [
            node for node in match.subscribers if node != publisher
        ]
        unicast = self.costs.unicast_cost(publisher, recipients)
        ideal = self.costs.ideal_cost(publisher, recipients)
        return outcome, unicast, ideal

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
    ) -> "Tuple[CostTally, List[RoutingOutcome]]":
        """Evaluate a whole workload."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        tally = CostTally()
        outcomes: List[RoutingOutcome] = []
        for row, publisher in zip(points, publishers):
            outcome, unicast, ideal = self.publish(row, int(publisher))
            outcomes.append(outcome)
            # Relay messages are neither unicasts nor group multicasts;
            # count them on the multicast side of the tally (each event
            # results in one filtered flood).
            tally.add(
                scheme_cost=outcome.total_cost,
                unicast_cost=unicast,
                ideal_cost=ideal,
                recipients=outcome.delivered,
                used_multicast=True,
            )
        return tally, outcomes
