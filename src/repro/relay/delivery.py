"""Workload evaluation for the content-routed (relay) architecture.

Runs a publication workload through the broker overlay and produces
the same :class:`~repro.network.multicast.CostTally` the clustered
multicast broker produces, so the two architectures — Siena-style
filtering trees vs the paper's precomputed groups + threshold rule —
are directly comparable on improvement percentage.

One architectural asymmetry is kept deliberately: the paper's model
assumes a matcher that knows an event has no interested subscribers
(such events cost nothing), while a relay publisher must always inject
the event into its broker, and brokers may forward it before filtering
kills it.  The injection and dead-end forwarding costs are charged to
the relay scheme — that is exactly the price of decentralized
matching.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..core.matching import MatchingEngine
from ..core.subscription import SubscriptionTable
from ..network.multicast import CostTally, DeliveryCostModel
from ..network.topology import Topology
from ..telemetry.base import Telemetry, or_null
from .overlay import BrokerOverlay
from .router import ContentRouter, RoutingOutcome

__all__ = ["RelayDeliveryService"]


class RelayDeliveryService:
    """End-to-end content-routed delivery with cost accounting."""

    def __init__(
        self,
        topology: Topology,
        table: SubscriptionTable,
        aggregation: str = "exact",
        cost_model: Optional[DeliveryCostModel] = None,
        telemetry: Optional[Telemetry] = None,
    ):
        self.topology = topology
        self.table = table
        self.telemetry = or_null(telemetry)
        self.costs = cost_model or DeliveryCostModel(
            topology, telemetry=telemetry
        )
        self.overlay = BrokerOverlay(
            topology, routing=self.costs.routing
        )
        self.router = ContentRouter(
            self.overlay, table, aggregation=aggregation
        )
        # Reference matcher for the unicast/ideal baselines (and the
        # exactness cross-check in tests).
        self.engine = MatchingEngine(
            table, backend="stree", telemetry=telemetry
        )

    def publish(
        self, point: Sequence[float], publisher: int, faults=None
    ) -> Tuple[RoutingOutcome, float, float]:
        """Route one event; returns (outcome, unicast_ref, ideal_ref).

        With a fault snapshot (``faults``, e.g. a
        :class:`~repro.faults.plan.FaultState`), the overlay flood only
        crosses alive brokers/links, and matched subscribers stranded
        behind dead parts are repaired by direct unicasts over the
        surviving physical network — the extra cost lands in the
        outcome (and thus in the caller's :class:`CostTally`).  The
        unicast/ideal references stay fault-free so the overhead of
        degradation is visible in the improvement percentage.
        """
        telemetry = self.telemetry
        if telemetry.enabled:
            route_span = telemetry.start_span(
                "route", publisher=int(publisher), architecture="relay"
            )
        outcome = self.router.route(point, int(publisher), faults=faults)
        match = self.engine.match_point(point)
        recipients = [
            node for node in match.subscribers if node != publisher
        ]
        if faults is not None:
            served = set(outcome.subscribers)
            ruled_out = set(outcome.undeliverable)
            stranded = [
                node
                for node in recipients
                if node not in served and node not in ruled_out
            ]
            if stranded:
                degraded = self.costs.degraded_unicast_cost(
                    publisher,
                    stranded,
                    dead_links=faults.dead_links,
                    dead_nodes=faults.dead_nodes,
                )
                rescued = set(degraded.reached) | set(degraded.repaired)
                outcome = replace(
                    outcome,
                    subscribers=tuple(sorted(served | rescued)),
                    total_cost=outcome.total_cost + degraded.cost,
                    fallback_unicasts=outcome.fallback_unicasts
                    + len(rescued),
                    undeliverable=tuple(
                        sorted(ruled_out | set(degraded.unreachable))
                    ),
                )
        unicast = self.costs.unicast_cost(publisher, recipients)
        ideal = self.costs.ideal_cost(publisher, recipients)
        if telemetry.enabled:
            telemetry.counter("relay.events").inc()
            telemetry.counter(
                "relay.fallback_unicasts",
                help="subscribers rescued by direct unicast",
            ).inc(outcome.fallback_unicasts)
            telemetry.histogram(
                "relay.flood_cost", help="relay cost per event"
            ).observe(outcome.total_cost)
            route_span.set_attribute(
                "delivered", outcome.delivered
            ).set_attribute("cost", outcome.total_cost).finish()
        return outcome, unicast, ideal

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        faults=None,
    ) -> Tuple[CostTally, List[RoutingOutcome]]:
        """Evaluate a whole workload (optionally under a fault snapshot)."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        tally = CostTally()
        outcomes: List[RoutingOutcome] = []
        for row, publisher in zip(points, publishers):
            outcome, unicast, ideal = self.publish(
                row, int(publisher), faults=faults
            )
            outcomes.append(outcome)
            # Relay messages are neither unicasts nor group multicasts;
            # count them on the multicast side of the tally (each event
            # results in one filtered flood).
            tally.add(
                scheme_cost=outcome.total_cost,
                unicast_cost=unicast,
                ideal_cost=ideal,
                recipients=outcome.delivered,
                used_multicast=True,
            )
        return tally, outcomes
