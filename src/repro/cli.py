"""Command-line interface.

The subcommands cover the library's main workflows::

    repro generate  --seed 7 --subscriptions 1000 --out testbed.json
    repro run       --testbed testbed.json --algorithm forgy \\
                    --groups 11 --modes 9 --threshold 0.15
    repro tune      --testbed testbed.json --groups 11 --modes 9
    repro experiments [--small]
    repro chaos     --events 500 --loss 0.1 --crashes 2

``repro chaos`` replays a workload through the packet simulator with
injected faults (lossy links, broker crash/restart windows) and
verifies the exactly-once delivery guarantee of the reliable
protocol — or, with ``--unreliable``, reports precisely what the raw
substrate loses.

(Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_table
from .clustering import (
    BatchKMeansClustering,
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    PairwiseGroupingClustering,
)
from .core import (
    PubSubBroker,
    SubscriptionTable,
    ThresholdPolicy,
    ThresholdTuner,
    oracle_tally,
)
from .io import load_testbed, save_testbed
from .network import TransitStubGenerator
from .workload import (
    PublicationGenerator,
    StockSubscriptionGenerator,
    publication_distribution,
)

__all__ = ["main"]

ALGORITHMS = {
    "forgy": ForgyKMeansClustering,
    "kmeans": BatchKMeansClustering,
    "pairwise": PairwiseGroupingClustering,
    "mst": MinimumSpanningTreeClustering,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based pub-sub simulation toolkit "
        "(Riabov et al., ICDCS 2003 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a topology + subscription testbed"
    )
    generate.add_argument("--seed", type=int, default=2003)
    generate.add_argument("--subscriptions", type=int, default=1000)
    generate.add_argument("--out", required=True)

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--testbed", required=True)
        sub.add_argument(
            "--algorithm", choices=sorted(ALGORITHMS), default="forgy"
        )
        sub.add_argument("--groups", type=int, default=11)
        sub.add_argument("--modes", type=int, choices=(1, 4, 9), default=9)
        sub.add_argument("--events", type=int, default=1000)
        sub.add_argument("--seed", type=int, default=2003)

    run = commands.add_parser(
        "run", help="run one delivery campaign and print the tally"
    )
    add_run_options(run)
    run.add_argument("--threshold", type=float, default=0.15)

    tune = commands.add_parser(
        "tune", help="learn per-group thresholds and compare policies"
    )
    add_run_options(tune)

    experiments = commands.add_parser(
        "experiments", help="reproduce every paper table and figure"
    )
    experiments.add_argument("--small", action="store_true")

    chaos = commands.add_parser(
        "chaos",
        help="replay a workload under injected faults and verify "
        "the delivery guarantee",
    )
    chaos.add_argument("--seed", type=int, default=2003)
    chaos.add_argument("--events", type=int, default=500)
    chaos.add_argument("--subscriptions", type=int, default=300)
    chaos.add_argument("--groups", type=int, default=11)
    chaos.add_argument("--threshold", type=float, default=0.15)
    chaos.add_argument(
        "--loss",
        type=float,
        default=0.1,
        help="per-transmission drop probability on every link",
    )
    chaos.add_argument(
        "--duplicate",
        type=float,
        default=0.0,
        help="per-transmission duplication probability on every link",
    )
    chaos.add_argument(
        "--crashes",
        type=int,
        default=2,
        help="number of broker crash/restart windows",
    )
    chaos.add_argument(
        "--crash-length",
        type=float,
        default=150.0,
        help="duration of each crash window (simulation time units)",
    )
    chaos.add_argument(
        "--max-attempts",
        type=int,
        default=6,
        help="reliable-protocol retry budget per delivery",
    )
    chaos.add_argument(
        "--unreliable",
        action="store_true",
        help="disable acks/retries/dedup (demonstrates what gets lost)",
    )

    dot = commands.add_parser(
        "dot", help="export a testbed topology as Graphviz DOT"
    )
    dot.add_argument("--testbed", required=True)
    dot.add_argument("--out", required=True)
    dot.add_argument(
        "--backbone-only",
        action="store_true",
        help="draw transit nodes + collapsed stubs (readable at scale)",
    )
    return parser


def _prepare(args: argparse.Namespace):
    """Load a testbed and preprocess a broker per the CLI options."""
    topology, table = load_testbed(args.testbed)
    density = publication_distribution(args.modes)
    broker = PubSubBroker.preprocess(
        topology,
        table,
        ALGORITHMS[args.algorithm](),
        num_groups=args.groups,
        density=density,
    )
    points, publishers = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=args.seed + args.modes
    ).generate(args.events)
    return broker, points, publishers


def _cmd_generate(args: argparse.Namespace) -> int:
    topology = TransitStubGenerator(seed=args.seed).generate()
    placed = StockSubscriptionGenerator(
        topology, seed=args.seed + 1
    ).generate(args.subscriptions)
    table = SubscriptionTable.from_placed(placed)
    save_testbed(args.out, topology, table)
    print(
        f"wrote {args.out}: {topology.num_nodes} nodes, "
        f"{topology.num_edges} edges, {len(table)} subscriptions"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    broker, points, publishers = _prepare(args)
    tally, _ = broker.with_policy(ThresholdPolicy(args.threshold)).run(
        points, publishers
    )
    print(
        format_table(
            ("metric", "value"),
            [
                ("events", tally.messages),
                ("multicasts", tally.multicasts_sent),
                ("unicasts", tally.unicasts_sent),
                (
                    "not sent",
                    tally.messages
                    - tally.multicasts_sent
                    - tally.unicasts_sent,
                ),
                ("deliveries", tally.deliveries),
                ("avg cost/message", round(tally.average_message_cost, 2)),
                (
                    "improvement over unicast",
                    f"{tally.improvement_percent:.2f}%",
                ),
            ],
        )
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    broker, points, publishers = _prepare(args)
    report = ThresholdTuner(broker).tune(points, publishers)
    print("per-group thresholds learned from the workload:\n")
    print(
        format_table(
            ("group", "size", "events", "mc win rate", "t"),
            [
                (
                    row.group,
                    row.group_size,
                    row.events,
                    f"{row.multicast_win_rate:.2f}",
                    f"{row.best_threshold:.2f}",
                )
                for row in report.per_group
            ],
        )
    )
    rows = []
    for label, policy in [
        ("global t=0.15", ThresholdPolicy(0.15)),
        ("tuned per-group", report.policy),
    ]:
        tally, _ = broker.with_policy(policy).run(points, publishers)
        rows.append((label, f"{tally.improvement_percent:.2f}%"))
    oracle = oracle_tally(broker, points, publishers)
    rows.append(("oracle bound", f"{oracle.improvement_percent:.2f}%"))
    print()
    print(format_table(("policy", "improvement"), rows))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import main as runner_main

    return runner_main(["--small"] if args.small else [])


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosSimulation, RetryConfig
    from .faults.verifier import build_chaos_plan, build_chaos_testbed

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
    )
    broker = broker.with_policy(ThresholdPolicy(args.threshold))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    plan = build_chaos_plan(
        broker.topology,
        seed=args.seed,
        loss=args.loss,
        duplicate=args.duplicate,
        crashes=args.crashes,
        crash_length=args.crash_length,
        horizon=float(args.events),
    )
    simulation = ChaosSimulation(
        broker, plan, reliable=not args.unreliable
    )
    if not args.unreliable:
        simulation.transport.config = RetryConfig.for_network(
            simulation.network, max_attempts=args.max_attempts
        )
    report = simulation.run(points, publishers)
    print(
        f"chaos run: {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, loss={args.loss}, "
        f"crashes={args.crashes}x{args.crash_length}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    if report.missing:
        print("\nfirst missing deliveries (event, subscriber, reason):")
        for sequence, subscriber, reason in report.missing[:10]:
            print(f"  event {sequence} -> node {subscriber}: {reason}")
        if len(report.missing) > 10:
            print(f"  ... and {len(report.missing) - 10} more")
    if args.unreliable:
        return 0
    return 0 if report.exactly_once else 1


def _cmd_dot(args: argparse.Namespace) -> int:
    from .network.visualize import write_dot

    topology, _ = load_testbed(args.testbed)
    path = write_dot(
        topology,
        args.out,
        include_stub_nodes=not args.backbone_only,
    )
    print(
        f"wrote {path} ({topology.num_nodes} nodes); render with e.g. "
        f"`dot -Kneato -Tsvg {path} -o topology.svg`"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "run": _cmd_run,
        "tune": _cmd_tune,
        "experiments": _cmd_experiments,
        "chaos": _cmd_chaos,
        "dot": _cmd_dot,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
