"""Command-line interface.

The subcommands cover the library's main workflows::

    repro generate  --seed 7 --subscriptions 1000 --out testbed.json
    repro run       --testbed testbed.json --algorithm forgy \\
                    --groups 11 --modes 9 --threshold 0.15
    repro tune      --testbed testbed.json --groups 11 --modes 9
    repro experiments [--small]
    repro chaos     --events 500 --loss 0.1 --crashes 2
    repro chaos     --overload --scenario burst --queue-capacity 32
    repro chaos     --crash-recovery --corrupt-wal torn-tail \\
                    --wal-out broker.wal
    repro chaos     --failover --failover-scenario partition --standbys 2
    repro chaos     --sharded --shards 4 --sharded-scenario shard-kill
    repro shard     plan --shards 4
    repro shard     stats --shards 8 --subscriptions 500
    repro wal       --path broker.wal
    repro stats     --events 200 --loss 0.1 \\
                    [--overload|--crash-recovery|--failover]
    repro trace     --event 3 --events 200
    repro lint      [--rule DET01] [--format json] [--baseline write] src

``repro chaos`` replays a workload through the packet simulator with
injected faults (lossy links, broker crash/restart windows) and
verifies the exactly-once delivery guarantee of the reliable
protocol — or, with ``--unreliable``, reports precisely what the raw
substrate loses.  With ``--overload`` the same replay runs behind the
full overload-protection stack (token-bucket admission, bounded
ingress queue with pluggable shedding, degraded group-flood mode,
per-subscriber circuit breakers) against a canned saturation
scenario: a burst storm, a slow or permanently-dead subscriber, or a
thundering-resubscribe herd.  With ``--crash-recovery`` the home
broker journals subscriptions, publish intents and delivery
completions to a write-ahead log; each crash window wipes its
volatile state (and, with ``--corrupt-wal``, damages the log), and
each restart recovers from snapshot + WAL replay — the ledger then
proves the guarantee held across the restarts.  With ``--failover``
the home broker becomes a replicated group: the primary ships its WAL
to ranked standbys, a permanent kill (or a partition manufacturing a
zombie primary) forces an epoch-fenced takeover, and the per-event
outcome ledger proves ``delivered + shed + expired == published``
with zero duplicate deliveries across the takeover.  With
``--sharded`` the broker scales *out*: publications route to the
shard owning their subset, subscriptions scatter onto every owning
shard, live migrations move subsets under traffic, and shard kills /
mid-migration crashes must preserve both the outcome ledger and
digest-exact match parity with a single unsharded broker.  ``repro
shard`` prints the subset→shard plan (greedy bin-pack over expected
load) and the scatter statistics without running chaos.  ``repro wal``
inspects a log file written with ``--wal-out``: record counts,
corruption status (exit 1 when the tail is damaged), and the last
few records.

``repro stats`` runs the same pipeline with live telemetry and prints
the operational picture: events/sec, match-latency percentiles, the
multicast/unicast split, retry/duplicate counters, and per-link
traffic.  ``repro trace`` replays the identical deterministic run and
dumps the span tree of one event (match → distribution-decision →
route → deliver → ack/retry) as JSONL.

``repro lint`` runs the AST-based invariant linter (`repro.statics`)
over the tree: determinism rules (no wall clock, no unseeded
randomness, no hash-order iteration), crash-safety rules (atomic
writes on durable paths, no swallowed excepts) and hygiene rules,
with ``# repro: noqa`` suppressions and a checked-in fingerprint
baseline.  ``--list-rules`` documents every rule; exit status 1 means
a non-baselined finding.

(Installed as the ``repro`` console script; also runnable as
``python -m repro.cli``.)
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .analysis.report import format_table
from .clustering import (
    BatchKMeansClustering,
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    PairwiseGroupingClustering,
)
from .core import (
    PubSubBroker,
    SubscriptionTable,
    ThresholdPolicy,
    ThresholdTuner,
    oracle_tally,
)
from .io import load_testbed, save_testbed
from .network import TransitStubGenerator
from .overload import SHED_POLICIES
from .workload import (
    PublicationGenerator,
    StockSubscriptionGenerator,
    publication_distribution,
)

__all__ = ["main"]

ALGORITHMS = {
    "forgy": ForgyKMeansClustering,
    "kmeans": BatchKMeansClustering,
    "pairwise": PairwiseGroupingClustering,
    "mst": MinimumSpanningTreeClustering,
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Content-based pub-sub simulation toolkit "
        "(Riabov et al., ICDCS 2003 reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    generate = commands.add_parser(
        "generate", help="generate a topology + subscription testbed"
    )
    generate.add_argument("--seed", type=int, default=2003)
    generate.add_argument("--subscriptions", type=int, default=1000)
    generate.add_argument("--out", required=True)

    def add_run_options(sub: argparse.ArgumentParser) -> None:
        sub.add_argument("--testbed", required=True)
        sub.add_argument(
            "--algorithm", choices=sorted(ALGORITHMS), default="forgy"
        )
        sub.add_argument("--groups", type=int, default=11)
        sub.add_argument("--modes", type=int, choices=(1, 4, 9), default=9)
        sub.add_argument("--events", type=int, default=1000)
        sub.add_argument("--seed", type=int, default=2003)

    run = commands.add_parser(
        "run", help="run one delivery campaign and print the tally"
    )
    add_run_options(run)
    run.add_argument("--threshold", type=float, default=0.15)

    tune = commands.add_parser(
        "tune", help="learn per-group thresholds and compare policies"
    )
    add_run_options(tune)

    experiments = commands.add_parser(
        "experiments", help="reproduce every paper table and figure"
    )
    experiments.add_argument("--small", action="store_true")
    experiments.add_argument(
        "--quiet",
        action="store_true",
        help="suppress campaign output (warnings still shown)",
    )

    chaos = commands.add_parser(
        "chaos",
        help="replay a workload under injected faults and verify "
        "the delivery guarantee",
    )
    chaos.add_argument("--seed", type=int, default=2003)
    chaos.add_argument("--events", type=int, default=500)
    chaos.add_argument("--subscriptions", type=int, default=300)
    chaos.add_argument("--groups", type=int, default=11)
    chaos.add_argument("--threshold", type=float, default=0.15)
    chaos.add_argument(
        "--loss",
        type=float,
        default=0.1,
        help="per-transmission drop probability on every link",
    )
    chaos.add_argument(
        "--duplicate",
        type=float,
        default=0.0,
        help="per-transmission duplication probability on every link",
    )
    chaos.add_argument(
        "--crashes",
        type=int,
        default=2,
        help="number of broker crash/restart windows",
    )
    chaos.add_argument(
        "--crash-length",
        type=float,
        default=150.0,
        help="duration of each crash window (simulation time units)",
    )
    chaos.add_argument(
        "--max-attempts",
        type=int,
        default=6,
        help="reliable-protocol retry budget per delivery",
    )
    chaos.add_argument(
        "--unreliable",
        action="store_true",
        help="disable acks/retries/dedup (demonstrates what gets lost)",
    )
    overload = chaos.add_argument_group(
        "overload protection (with --overload)"
    )
    overload.add_argument(
        "--overload",
        action="store_true",
        help="run the saturation harness: token-bucket admission, "
        "bounded ingress queue, degraded group-flood mode, and "
        "per-subscriber circuit breakers",
    )
    overload.add_argument(
        "--scenario",
        choices=("burst", "slow-subscriber", "dead-subscriber", "resubscribe"),
        default="burst",
        help="canned overload scenario (default: burst storm)",
    )
    overload.add_argument(
        "--queue-capacity",
        type=int,
        default=64,
        help="bounded ingress queue capacity",
    )
    overload.add_argument(
        "--shed-policy",
        choices=sorted(SHED_POLICIES),
        default="drop-newest",
        help="what the full queue sheds",
    )
    overload.add_argument(
        "--ttl",
        type=float,
        default=None,
        help="per-event lifetime (simulation time units; default: none)",
    )
    overload.add_argument(
        "--admission-rate",
        type=float,
        default=None,
        help="token-bucket refill rate, events/time unit "
        "(default: admission control off)",
    )
    overload.add_argument(
        "--admission-burst",
        type=float,
        default=32.0,
        help="token-bucket burst size",
    )
    overload.add_argument(
        "--service-time",
        type=float,
        default=0.5,
        help="simulated broker cost of serving one queued event",
    )
    durability = chaos.add_argument_group(
        "durable broker state (with --crash-recovery)"
    )
    durability.add_argument(
        "--crash-recovery",
        action="store_true",
        help="journal the home broker to a write-ahead log and "
        "recover from every crash window (snapshot load + WAL "
        "replay + in-flight redelivery)",
    )
    durability.add_argument(
        "--corrupt-wal",
        choices=("torn-tail", "bit-flip"),
        default=None,
        help="damage the WAL at every crash, so each restart must "
        "also truncate/repair the log",
    )
    durability.add_argument(
        "--checkpoint-every",
        type=int,
        default=64,
        help="take a snapshot + truncate the WAL prefix every N "
        "journaled deliveries",
    )
    durability.add_argument(
        "--wal-out",
        default=None,
        help="back the journal with this WAL file (inspect it "
        "afterwards with `repro wal`)",
    )
    replication = chaos.add_argument_group(
        "broker replication (with --failover)"
    )
    replication.add_argument(
        "--failover",
        action="store_true",
        help="replicate the home broker: ship its WAL to ranked "
        "standbys, kill or partition the primary mid-stream, and "
        "verify the epoch-fenced takeover against the outcome ledger",
    )
    replication.add_argument(
        "--failover-scenario",
        choices=("kill", "partition", "catchup"),
        default="kill",
        help="kill: permanent primary kill; partition: isolate a "
        "live primary (fenced zombie); catchup: lagging standby must "
        "take over from an anti-entropy snapshot (default: kill)",
    )
    replication.add_argument(
        "--standbys",
        type=int,
        default=2,
        help="number of ranked standby replicas",
    )
    sharding = chaos.add_argument_group(
        "partition-aligned sharding (with --sharded)"
    )
    sharding.add_argument(
        "--sharded",
        action="store_true",
        help="scale the broker out over K shards: routed publish, "
        "scattered subscriptions, live migrations, shard kills and "
        "mid-migration crashes, verified against the outcome ledger "
        "and per-event match parity with one unsharded broker",
    )
    sharding.add_argument(
        "--shards",
        type=int,
        default=4,
        help="number of shard brokers (homes: first K transit nodes)",
    )
    sharding.add_argument(
        "--migrations",
        type=int,
        default=2,
        help="live subset migrations in the clean scenario",
    )
    sharding.add_argument(
        "--sharded-scenario",
        choices=("clean", "shard-kill", "migration-crash"),
        default="clean",
        help="clean: loss + live migrations; shard-kill: the busiest "
        "shard's home is permanently killed; migration-crash: the "
        "migration source dies mid-copy and the journaled cutover "
        "must roll forward (default: clean)",
    )
    cluster = chaos.add_argument_group(
        "replicated shard cluster (with --cluster)"
    )
    cluster.add_argument(
        "--cluster",
        action="store_true",
        help="run the full stack: every shard replicated to ranked "
        "standbys under a cluster-wide membership detector, with "
        "shard kills, partitions, mid-copy migration crashes and "
        "standby WAL corruption answered by fenced takeovers, "
        "verified against the outcome ledger and unsharded digest "
        "parity",
    )
    cluster.add_argument(
        "--cluster-scenario",
        choices=("kill", "partition", "double-kill", "migrate-under-kill"),
        default="kill",
        help="kill: the busiest shard's home is permanently killed; "
        "partition: it is isolated (fenced zombie primary); "
        "double-kill: the two busiest homes die in sequence; "
        "migrate-under-kill: the migration source dies mid-copy "
        "(default: kill)",
    )
    sessions_group = chaos.add_argument_group(
        "durable subscriber sessions (with --sessions)"
    )
    sessions_group.add_argument(
        "--sessions",
        action="store_true",
        help="run the subscriber-side harness: durable sessions with "
        "journaled cursors, scripted crash/flap/slow-consumer/poison "
        "abuse, catch-up replay and dead-letter quarantine, verified "
        "against the per-(event, session) ledger",
    )
    sessions_group.add_argument(
        "--session-scenario",
        choices=("crash", "flap", "slow-consumer", "poison"),
        default="crash",
        help="crash: the victim subscriber's node crashes and the "
        "session resumes after the window; flap: three rapid "
        "detach/resume cycles; slow-consumer: the victim's outbound "
        "queue sheds under ttl-priority and replay must recover the "
        "sheds; poison: the victim nacks selected events forever, "
        "which must land in the dead-letter queue (default: crash)",
    )
    sessions_group.add_argument(
        "--lease",
        type=float,
        default=None,
        help="session lease: how long a detached session holds "
        "retention before being demoted to ephemeral "
        "(default: 0.35 x horizon)",
    )
    sessions_group.add_argument(
        "--replay-rate",
        type=float,
        default=2.0,
        help="catch-up replay token-bucket refill rate, "
        "events/time unit",
    )

    shard = commands.add_parser(
        "shard",
        help="plan and inspect the subset->shard assignment",
    )
    shard_commands = shard.add_subparsers(dest="shard_command", required=True)
    for verb, description in (
        ("plan", "greedy bin-pack of the partition onto K shards"),
        (
            "stats",
            "plan + scatter: per-shard subscription counts and load",
        ),
    ):
        sub = shard_commands.add_parser(verb, help=description)
        sub.add_argument("--seed", type=int, default=2003)
        sub.add_argument("--subscriptions", type=int, default=300)
        sub.add_argument("--groups", type=int, default=11)
        sub.add_argument("--shards", type=int, default=4)
        sub.add_argument(
            "--virtual-nodes",
            type=int,
            default=64,
            help="hash-ring points per shard for the catchall cells",
        )

    sessions = commands.add_parser(
        "sessions",
        help="inspect durable subscriber sessions: the per-session "
        "cursor table or the dead-letter queue",
    )
    session_commands = sessions.add_subparsers(
        dest="sessions_command", required=True
    )
    session_stats = session_commands.add_parser(
        "stats",
        help="run one session chaos scenario and print the "
        "per-session cursor table",
    )
    session_stats.add_argument("--seed", type=int, default=2003)
    session_stats.add_argument("--events", type=int, default=160)
    session_stats.add_argument(
        "--scenario",
        choices=("crash", "flap", "slow-consumer", "poison"),
        default="crash",
        help="which subscriber-abuse script to run (default: crash)",
    )
    session_dlq = session_commands.add_parser(
        "dlq",
        help="run the poison scenario and inspect (optionally "
        "re-drive) the dead-letter queue",
    )
    session_dlq.add_argument("--seed", type=int, default=2003)
    session_dlq.add_argument("--events", type=int, default=160)
    session_dlq.add_argument(
        "--redrive",
        action="store_true",
        help="re-attempt every quarantined delivery (the operator "
        "fixed the consumer) and show the before/after queue",
    )

    def add_telemetry_workload_options(sub: argparse.ArgumentParser) -> None:
        # Same knobs as `repro chaos` so `stats`/`trace` replay the
        # exact workload a chaos run saw (identical seeds → identical
        # simulated timeline).
        sub.add_argument("--seed", type=int, default=2003)
        sub.add_argument("--events", type=int, default=200)
        sub.add_argument("--subscriptions", type=int, default=300)
        sub.add_argument("--groups", type=int, default=11)
        sub.add_argument("--threshold", type=float, default=0.15)
        sub.add_argument("--loss", type=float, default=0.05)
        sub.add_argument("--crashes", type=int, default=1)
        sub.add_argument("--crash-length", type=float, default=50.0)
        sub.add_argument(
            "--overload",
            action="store_true",
            help="replay a burst storm through the overload-protected "
            "pipeline instead of the plain chaos run",
        )
        sub.add_argument(
            "--crash-recovery",
            action="store_true",
            help="journal the home broker to a write-ahead log and "
            "recover it from every crash window (durability "
            "counters appear in the report)",
        )
        sub.add_argument(
            "--failover",
            action="store_true",
            help="replicate the home broker and kill the primary "
            "mid-stream (replication counters appear in the report)",
        )
        sub.add_argument(
            "--cluster",
            action="store_true",
            help="run the replicated shard cluster (membership, "
            "per-shard failover and takeover counters appear in "
            "the report)",
        )
        sub.add_argument(
            "--cluster-scenario",
            choices=(
                "kill",
                "partition",
                "double-kill",
                "migrate-under-kill",
            ),
            default="kill",
            help="fault scenario for --cluster (default: kill)",
        )

    stats = commands.add_parser(
        "stats",
        help="run an instrumented workload and print pipeline metrics",
    )
    add_telemetry_workload_options(stats)
    stats.add_argument(
        "--top-links",
        type=int,
        default=5,
        help="how many busiest links to list",
    )
    stats.add_argument(
        "--metrics-out",
        default=None,
        help="also write all metrics in Prometheus text format",
    )
    stats.add_argument(
        "--trace-out",
        default=None,
        help="also write every span as JSONL",
    )

    trace = commands.add_parser(
        "trace",
        help="dump the span tree of one event as JSONL",
    )
    add_telemetry_workload_options(trace)
    trace.add_argument(
        "--event",
        type=int,
        required=True,
        help="event sequence number (= trace id) to dump",
    )
    trace.add_argument(
        "--pretty",
        action="store_true",
        help="print an indented tree instead of JSONL",
    )
    trace.add_argument(
        "--out",
        default=None,
        help="write the JSONL here instead of stdout",
    )

    wal = commands.add_parser(
        "wal",
        help="inspect and verify a write-ahead log file",
    )
    wal.add_argument("--path", required=True, help="WAL file to scan")
    wal.add_argument(
        "--tail",
        type=int,
        default=10,
        help="how many trailing records to print (0: none)",
    )

    lint = commands.add_parser(
        "lint",
        help="run the reprolint invariant rules (DET/ASSERT/ANN/ERR/IO/EXC)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        dest="rules",
        metavar="CODE",
        default=None,
        help="restrict to one rule code (repeatable), e.g. --rule DET02",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (json is what CI archives)",
    )
    lint.add_argument(
        "--baseline",
        choices=("apply", "write", "skip"),
        default="apply",
        help="apply the checked-in baseline (default), rewrite it from "
        "the current findings, or ignore it entirely",
    )
    lint.add_argument(
        "--baseline-file",
        default=None,
        metavar="PATH",
        help="baseline location (default: lint-baseline.json in the cwd)",
    )
    lint.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue (code, invariant, rationale, fix)",
    )

    dot = commands.add_parser(
        "dot", help="export a testbed topology as Graphviz DOT"
    )
    dot.add_argument("--testbed", required=True)
    dot.add_argument("--out", required=True)
    dot.add_argument(
        "--backbone-only",
        action="store_true",
        help="draw transit nodes + collapsed stubs (readable at scale)",
    )
    return parser


def _prepare(args: argparse.Namespace):
    """Load a testbed and preprocess a broker per the CLI options."""
    topology, table = load_testbed(args.testbed)
    density = publication_distribution(args.modes)
    broker = PubSubBroker.preprocess(
        topology,
        table,
        ALGORITHMS[args.algorithm](),
        num_groups=args.groups,
        density=density,
    )
    points, publishers = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=args.seed + args.modes
    ).generate(args.events)
    return broker, points, publishers


def _cmd_generate(args: argparse.Namespace) -> int:
    topology = TransitStubGenerator(seed=args.seed).generate()
    placed = StockSubscriptionGenerator(
        topology, seed=args.seed + 1
    ).generate(args.subscriptions)
    table = SubscriptionTable.from_placed(placed)
    save_testbed(args.out, topology, table)
    print(
        f"wrote {args.out}: {topology.num_nodes} nodes, "
        f"{topology.num_edges} edges, {len(table)} subscriptions"
    )
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    broker, points, publishers = _prepare(args)
    tally, _ = broker.with_policy(ThresholdPolicy(args.threshold)).run(
        points, publishers
    )
    print(
        format_table(
            ("metric", "value"),
            [
                ("events", tally.messages),
                ("multicasts", tally.multicasts_sent),
                ("unicasts", tally.unicasts_sent),
                (
                    "not sent",
                    tally.messages
                    - tally.multicasts_sent
                    - tally.unicasts_sent,
                ),
                ("deliveries", tally.deliveries),
                ("avg cost/message", round(tally.average_message_cost, 2)),
                (
                    "improvement over unicast",
                    f"{tally.improvement_percent:.2f}%",
                ),
            ],
        )
    )
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    broker, points, publishers = _prepare(args)
    report = ThresholdTuner(broker).tune(points, publishers)
    print("per-group thresholds learned from the workload:\n")
    print(
        format_table(
            ("group", "size", "events", "mc win rate", "t"),
            [
                (
                    row.group,
                    row.group_size,
                    row.events,
                    f"{row.multicast_win_rate:.2f}",
                    f"{row.best_threshold:.2f}",
                )
                for row in report.per_group
            ],
        )
    )
    rows = []
    for label, policy in [
        ("global t=0.15", ThresholdPolicy(0.15)),
        ("tuned per-group", report.policy),
    ]:
        tally, _ = broker.with_policy(policy).run(points, publishers)
        rows.append((label, f"{tally.improvement_percent:.2f}%"))
    oracle = oracle_tally(broker, points, publishers)
    rows.append(("oracle bound", f"{oracle.improvement_percent:.2f}%"))
    print()
    print(format_table(("policy", "improvement"), rows))
    return 0


def _cmd_experiments(args: argparse.Namespace) -> int:
    from .experiments.runner import main as runner_main

    argv = []
    if args.small:
        argv.append("--small")
    if args.quiet:
        argv.append("--quiet")
    return runner_main(argv)


def _overload_config(args: argparse.Namespace):
    """Overload-protection knobs shared by ``chaos --overload``."""
    from .overload import OverloadConfig

    return OverloadConfig(
        queue_capacity=args.queue_capacity,
        shed_policy=args.shed_policy,
        service_time=args.service_time,
        ttl=args.ttl,
        admission_rate=args.admission_rate,
        admission_burst=args.admission_burst,
    )


def _cmd_chaos_overload(args: argparse.Namespace) -> int:
    from .faults import OverloadChaosSimulation
    from .faults.verifier import (
        build_burst_storm_times,
        build_chaos_plan,
        build_chaos_testbed,
        build_resubscribe_storm,
        build_slow_subscriber_plan,
    )

    scenario = args.scenario
    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
        dynamic=scenario == "resubscribe",
    )
    # ``with_policy`` builds a plain sibling broker; the resubscribe
    # scenario must keep its DynamicPubSubBroker, so set in place.
    broker.policy = ThresholdPolicy(args.threshold)
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    arrival_times = build_burst_storm_times(args.events)
    horizon = max(arrival_times[-1] * 2.0, 500.0)
    churn = []
    victim = None
    if scenario in ("slow-subscriber", "dead-subscriber"):
        plan, victim = build_slow_subscriber_plan(
            broker.topology,
            seed=args.seed,
            # A dead subscriber stays dead: the crash window must
            # outlive every retry the transport could schedule.
            horizon=1e9 if scenario == "dead-subscriber" else horizon,
            dead=scenario == "dead-subscriber",
        )
    else:
        plan = build_chaos_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            duplicate=args.duplicate,
            crashes=args.crashes,
            crash_length=args.crash_length,
            horizon=horizon,
        )
        if scenario == "resubscribe":
            churn = build_resubscribe_storm(
                broker,
                at=arrival_times[len(arrival_times) // 2],
                count=min(50, args.subscriptions),
                seed=args.seed,
            )
    simulation = OverloadChaosSimulation(
        broker,
        plan,
        config=_overload_config(args),
        reliable=not args.unreliable,
    )
    report = simulation.run(points, publishers, arrival_times, churn=churn)
    print(
        f"overload run ({scenario}): {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, queue={args.queue_capacity} "
        f"({args.shed_policy}), ttl={args.ttl}, "
        f"admission={args.admission_rate}"
    )
    if victim is not None:
        print(f"victim subscriber: node {victim}")
    print(format_table(("metric", "value"), report.summary_rows()))
    return 0 if report.accounted and report.within_capacity else 1


def _cmd_chaos_crash_recovery(args: argparse.Namespace) -> int:
    import os

    from .durability import FileWAL
    from .faults import (
        CrashRecoverySimulation,
        RetryConfig,
        build_crash_recovery_plan,
    )
    from .faults.verifier import build_chaos_testbed

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
        dynamic=True,
    )
    # Recovery rebuilds the engine through the dynamic machinery, so
    # the DynamicPubSubBroker must survive: set the policy in place.
    broker.policy = ThresholdPolicy(args.threshold)
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    try:
        plan, home = build_crash_recovery_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            duplicate=args.duplicate,
            crashes=args.crashes,
            crash_length=args.crash_length,
            horizon=float(args.events),
            corrupt=args.corrupt_wal,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    wal = None
    if args.wal_out:
        # A fresh run wants a fresh log, not appends onto a stale one.
        if os.path.exists(args.wal_out):
            os.unlink(args.wal_out)
        wal = FileWAL(args.wal_out)
    simulation = CrashRecoverySimulation(
        broker,
        plan,
        home=home,
        wal=wal,
        checkpoint_every=args.checkpoint_every,
    )
    if wal is not None:
        wal.clock = lambda: simulation.simulator.now
    simulation.transport.config = RetryConfig.for_network(
        simulation.network, max_attempts=args.max_attempts
    )
    report = simulation.run(points, publishers)
    corrupt = f", corrupting ({args.corrupt_wal})" if args.corrupt_wal else ""
    print(
        f"crash-recovery run: {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, home broker {home}, "
        f"{len(simulation.windows)} crash windows{corrupt}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    if report.durability.corruptions:
        print("\nwal corruptions applied:")
        for entry in report.durability.corruptions:
            print(f"  {entry}")
    if report.durability.recovery_digests:
        print("\nrecovery state digests (determinism witnesses):")
        for index, digest in enumerate(report.durability.recovery_digests):
            print(f"  recovery {index}: {digest}")
    if report.missing:
        print("\nfirst missing deliveries (event, subscriber, reason):")
        for sequence, subscriber, reason in report.missing[:10]:
            print(f"  event {sequence} -> node {subscriber}: {reason}")
        if len(report.missing) > 10:
            print(f"  ... and {len(report.missing) - 10} more")
    if args.wal_out:
        print(
            f"\nwrote {args.wal_out} "
            f"(inspect with `repro wal --path {args.wal_out}`)"
        )
    if args.corrupt_wal:
        # A damaged log may legitimately lose intents journaled in the
        # torn tail; the hard guarantees are that every crash window
        # produced a recovery and that nothing was delivered twice.
        healthy = (
            report.durability.recoveries == len(simulation.windows)
            and report.duplicate_deliveries == 0
        )
        return 0 if healthy else 1
    return 0 if report.exactly_once else 1


def _cmd_chaos_failover(args: argparse.Namespace) -> int:
    from .faults import (
        FailoverChaosSimulation,
        RetryConfig,
        build_failover_plan,
    )
    from .faults.verifier import build_chaos_testbed
    from .replication import ShippingConfig

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
        dynamic=True,
    )
    # Takeover rebuilds the engine through the dynamic machinery, so
    # the DynamicPubSubBroker must survive: set the policy in place.
    broker.policy = ThresholdPolicy(args.threshold)
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    inter_arrival = 2.0
    horizon = max(args.events * inter_arrival, 500.0)
    scenario = args.failover_scenario
    try:
        plan, primary, standbys = build_failover_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            duplicate=args.duplicate,
            scenario=scenario,
            horizon=horizon,
            standby_count=args.standbys,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    # The catch-up scenario must overflow the shipping buffer while
    # the laggard is partitioned, so takeover exercises anti-entropy.
    shipping = (
        ShippingConfig(batch_ops=8, retain_ops=32, catchup_lag=24)
        if scenario == "catchup"
        else None
    )
    simulation = FailoverChaosSimulation(
        broker,
        plan,
        standbys,
        primary=primary,
        shipping=shipping,
        checkpoint_every=args.checkpoint_every,
    )
    simulation.transport.config = RetryConfig.for_network(
        simulation.network, max_attempts=args.max_attempts
    )
    report = simulation.run(points, publishers, inter_arrival=inter_arrival)
    print(
        f"failover run ({scenario}): {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, primary {primary}, "
        f"standbys {standbys}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    if report.replication.takeover_digests:
        print("\ntakeover state digests (determinism witnesses):")
        for index, digest in enumerate(report.replication.takeover_digests):
            print(f"  takeover {index}: {digest}")
    # The replication guarantees: every event accounted exactly once,
    # nobody delivered twice across the takeover, at least one
    # takeover actually happened, and the fencing probe fired.  A
    # partitioned zombie must additionally have provoked stale-epoch
    # rejections (the split-brain evidence).
    healthy = (
        report.failover.accounted
        and report.duplicate_deliveries == 0
        and report.replication.failovers >= 1
        and report.replication.fenced_writes >= 1
    )
    if scenario == "partition":
        healthy = healthy and report.replication.stale_rejections >= 1
    return 0 if healthy else 1


def _cmd_chaos_sharded(args: argparse.Namespace) -> int:
    from .faults import (
        RetryConfig,
        ShardedChaosSimulation,
        build_sharded_plan,
        unsharded_match_digest,
    )
    from .faults.verifier import build_chaos_testbed
    from .sharding import ShardMap

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
    )
    broker = broker.with_policy(ThresholdPolicy(args.threshold))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    horizon = max(float(args.events), 300.0)
    scenario = args.sharded_scenario
    try:
        shard_map = ShardMap.plan(broker.partition, args.shards)
        plan, homes, planned = build_sharded_plan(
            broker.topology,
            shard_map,
            seed=args.seed,
            loss=args.loss,
            duplicate=args.duplicate,
            scenario=scenario,
            horizon=horizon,
            migrations=args.migrations,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    simulation = ShardedChaosSimulation(
        broker,
        plan,
        num_shards=args.shards,
        shard_homes=homes,
        migrations=planned,
    )
    simulation.transport.config = RetryConfig.for_network(
        simulation.network, max_attempts=args.max_attempts
    )
    report = simulation.run(points, publishers)
    print(
        f"sharded run ({scenario}): {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, {args.shards} shards at homes {homes}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    reference = unsharded_match_digest(
        broker, points, simulation.serviced_sequences
    )
    agreed = reference == report.sharded.match_digest
    print(f"\nunsharded reference digest: {reference}")
    print(f"digest agreement: {'yes' if agreed else 'NO'}")
    # The scale-out guarantees: every event in exactly one outcome
    # bucket, nobody delivered twice, every miss explained by a
    # physically-severed target, and the sharded MatchResults
    # digest-identical to a single unsharded broker's.
    healthy = (
        report.sharded.accounted
        and report.duplicate_deliveries == 0
        and report.sharded.unexplained_misses == 0
        and report.sharded.match_parity
        and agreed
    )
    if scenario == "shard-kill":
        healthy = healthy and report.sharded.shard_kills >= 1
    if scenario == "migration-crash":
        healthy = (
            healthy
            and report.sharded.shard_kills >= 1
            and report.sharded.migrations_completed
            + report.sharded.migrations_aborted
            >= 1
        )
    if scenario == "clean":
        healthy = healthy and report.exactly_once
    return 0 if healthy else 1


def _cmd_chaos_cluster(args: argparse.Namespace) -> int:
    from .faults import (
        FullStackChaosSimulation,
        RetryConfig,
        build_cluster_plan,
        unsharded_match_digest,
    )
    from .faults.verifier import build_chaos_testbed
    from .sharding import ShardMap

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
    )
    broker = broker.with_policy(ThresholdPolicy(args.threshold))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    horizon = max(float(args.events), 300.0)
    scenario = args.cluster_scenario
    try:
        shard_map = ShardMap.plan(broker.partition, args.shards)
        plan, homes, standby_map, planned, corruptions = build_cluster_plan(
            broker.topology,
            shard_map,
            seed=args.seed,
            loss=args.loss,
            duplicate=args.duplicate,
            scenario=scenario,
            horizon=horizon,
            standby_count=args.standbys,
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    simulation = FullStackChaosSimulation(
        broker,
        plan,
        standby_map,
        num_shards=args.shards,
        shard_homes=homes,
        migrations=planned,
        corruptions=corruptions,
    )
    simulation.transport.config = RetryConfig.for_network(
        simulation.network, max_attempts=args.max_attempts
    )
    report = simulation.run(points, publishers)
    print(
        f"cluster run ({scenario}): {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, {args.shards} replicated shards at "
        f"homes {homes}, standbys {standby_map}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    reference = unsharded_match_digest(
        broker, points, simulation.serviced_sequences
    )
    agreed = reference == report.sharded.match_digest
    print(f"\nunsharded reference digest: {reference}")
    print(f"digest agreement: {'yes' if agreed else 'NO'}")
    # The full-stack guarantees: every event in exactly one outcome
    # bucket, nobody delivered twice, every miss explained by a
    # physically-severed target, digest parity with one unsharded
    # never-failed broker — plus the scenario's takeovers actually
    # happened instead of falling back to ring exclusion.
    healthy = (
        report.sharded.accounted
        and report.duplicate_deliveries == 0
        and report.sharded.unexplained_misses == 0
        and report.sharded.match_parity
        and agreed
    )
    if scenario == "kill":
        healthy = (
            healthy
            and report.cluster.takeovers >= 1
            and report.cluster.probe_rejections >= 1
        )
    if scenario == "partition":
        healthy = (
            healthy
            and report.cluster.takeovers >= 1
            and report.cluster.stale_rejections >= 1
        )
    if scenario == "double-kill":
        healthy = healthy and report.cluster.takeovers >= 2
    if scenario == "migrate-under-kill":
        healthy = (
            healthy
            and report.cluster.takeovers >= 1
            and report.sharded.migrations_completed
            + report.sharded.migrations_aborted
            >= 1
        )
    return 0 if healthy else 1


def _cmd_chaos_sessions(args: argparse.Namespace) -> int:
    from .faults.sessions import build_session_chaos

    scenario = args.session_scenario
    overrides = {"replay_rate": args.replay_rate}
    if args.lease is not None:
        overrides["lease"] = args.lease
    try:
        simulation, points, publishers, arrival_times = (
            build_session_chaos(
                scenario,
                seed=args.seed,
                events=args.events,
                subscriptions=args.subscriptions,
                loss=args.loss,
                **overrides,
            )
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    report = simulation.run(points, publishers, arrival_times)
    print(
        f"session run ({scenario}): "
        f"{simulation.broker.topology.num_nodes} nodes, "
        f"{len(points)} events, {len(report.sessions)} durable "
        f"sessions (victim {simulation.victim.session_id}, "
        f"ghost {simulation.ghost.session_id})"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    # The session guarantees: every matched obligation in exactly one
    # terminal bucket, no application-level duplicates, the ghost
    # demoted by lease — plus the scenario's machinery actually fired.
    healthy = report.at_least_once and report.lease_expirations >= 1
    if scenario in ("crash", "flap"):
        victim = simulation.victim.session_id
        settled = (
            simulation.delivered_seqs[victim]
            | {
                entry.sequence
                for entry in simulation.dlq.entries()
                if entry.session_id == victim
            }
        )
        parity = settled == simulation.matched_seqs[victim]
        print(
            f"\nvictim catch-up parity: "
            f"{'yes' if parity else 'NO'} "
            f"({len(simulation.delivered_seqs[victim])} delivered of "
            f"{len(simulation.matched_seqs[victim])} matched)"
        )
        healthy = healthy and parity and report.replay_sends >= 1
    if scenario == "slow-consumer":
        healthy = healthy and report.shed_retained >= 1
    if scenario == "poison":
        healthy = healthy and report.dlq_by_reason.get("nack", 0) >= 1
    return 0 if healthy else 1


def _cmd_sessions(args: argparse.Namespace) -> int:
    from .faults.sessions import build_session_chaos

    scenario = (
        args.scenario if args.sessions_command == "stats" else "poison"
    )
    simulation, points, publishers, arrival_times = build_session_chaos(
        scenario, seed=args.seed, events=args.events
    )
    report = simulation.run(points, publishers, arrival_times)

    if args.sessions_command == "stats":
        print(
            f"session cursor table ({scenario}, {len(points)} events):"
        )
        print(
            format_table(
                (
                    "session",
                    "state",
                    "durability",
                    "cursor",
                    "matched",
                    "delivered",
                    "dead-lettered",
                    "expired",
                ),
                report.sessions,
            )
        )
        print()
        print(format_table(("metric", "value"), report.summary_rows()))
        return 0 if report.at_least_once else 1

    entries = simulation.dlq.entries()
    print(
        f"dead-letter queue after the poison scenario "
        f"({len(entries)} entries):"
    )
    print(
        format_table(
            ("event", "session", "reason code", "quarantined at", "reason"),
            [
                (
                    entry.sequence,
                    entry.session_id,
                    entry.reason_code,
                    f"{entry.quarantined_at:.1f}",
                    entry.reason,
                )
                for entry in entries
            ],
        )
    )
    if args.redrive:
        # The operator fixed the consumer: every re-driven delivery
        # now succeeds (the poison set is forgiven).
        simulation._poison.clear()
        redriven = simulation.dlq.redrive(lambda entry: True)
        print(
            f"\nredrive: {len(redriven)} delivered, "
            f"{len(simulation.dlq)} still quarantined"
        )
    return 0 if report.at_least_once and entries else 1


def _cmd_shard(args: argparse.Namespace) -> int:
    from .faults.verifier import build_chaos_testbed
    from .sharding import ShardMap, ShardRouter

    broker, _density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
    )
    try:
        shard_map = ShardMap.plan(
            broker.partition, args.shards, virtual_nodes=args.virtual_nodes
        )
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.shard_command == "plan":
        rows = [
            (
                f"shard {shard}",
                f"subsets {shard_map.subsets_of(shard)} "
                f"load {shard_map.shard_loads()[shard]:.1f}",
            )
            for shard in range(shard_map.num_shards)
        ]
        rows.append(("imbalance (max/mean)", f"{shard_map.imbalance():.3f}"))
        print(
            f"shard plan: {len(broker.partition.groups)} subsets over "
            f"{args.shards} shards (catchall cells via hash ring, "
            f"{args.virtual_nodes} virtual nodes each)"
        )
        print(format_table(("shard", "assignment"), rows))
        return 0
    router = ShardRouter(broker, shard_map)
    rows = [
        (
            f"shard {stat['shard']}",
            f"subsets {stat['subsets']} "
            f"subscriptions {stat['subscriptions']} "
            f"load {stat['planned_load']:.1f}",
        )
        for stat in router.shard_stats()
    ]
    rows.append(("imbalance (max/mean)", f"{shard_map.imbalance():.3f}"))
    rows.append(
        (
            "scatter factor",
            f"{router.scattered / max(len(broker.table), 1):.2f} "
            f"shards/subscription",
        )
    )
    print(
        f"shard stats: {len(broker.table)} subscriptions scattered "
        f"into {router.scattered} shard-level registrations"
    )
    print(format_table(("shard", "assignment"), rows))
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from .faults import ChaosSimulation, RetryConfig
    from .faults.verifier import build_chaos_plan, build_chaos_testbed

    modes = [
        name
        for name, active in [
            ("--overload", args.overload),
            ("--crash-recovery", args.crash_recovery),
            ("--failover", args.failover),
            ("--sharded", args.sharded),
            ("--cluster", args.cluster),
            ("--sessions", args.sessions),
        ]
        if active
    ]
    if len(modes) > 1:
        print(
            f"error: {' and '.join(modes)} are mutually exclusive",
            file=sys.stderr,
        )
        return 2
    if args.overload:
        return _cmd_chaos_overload(args)
    if args.crash_recovery:
        return _cmd_chaos_crash_recovery(args)
    if args.failover:
        return _cmd_chaos_failover(args)
    if args.sharded:
        return _cmd_chaos_sharded(args)
    if args.cluster:
        return _cmd_chaos_cluster(args)
    if args.sessions:
        return _cmd_chaos_sessions(args)

    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
    )
    broker = broker.with_policy(ThresholdPolicy(args.threshold))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    plan = build_chaos_plan(
        broker.topology,
        seed=args.seed,
        loss=args.loss,
        duplicate=args.duplicate,
        crashes=args.crashes,
        crash_length=args.crash_length,
        horizon=float(args.events),
    )
    simulation = ChaosSimulation(
        broker, plan, reliable=not args.unreliable
    )
    if not args.unreliable:
        simulation.transport.config = RetryConfig.for_network(
            simulation.network, max_attempts=args.max_attempts
        )
    report = simulation.run(points, publishers)
    print(
        f"chaos run: {broker.topology.num_nodes} nodes, "
        f"{len(points)} events, loss={args.loss}, "
        f"crashes={args.crashes}x{args.crash_length}"
    )
    print(format_table(("metric", "value"), report.summary_rows()))
    if report.missing:
        print("\nfirst missing deliveries (event, subscriber, reason):")
        for sequence, subscriber, reason in report.missing[:10]:
            print(f"  event {sequence} -> node {subscriber}: {reason}")
        if len(report.missing) > 10:
            print(f"  ... and {len(report.missing) - 10} more")
    if args.unreliable:
        return 0
    return 0 if report.exactly_once else 1


def _run_instrumented(args: argparse.Namespace):
    """One fully-instrumented reliable chaos run (stats/trace share it).

    Both verbs build the workload from the same seeds, so a given
    ``--seed/--events/...`` combination always produces the identical
    simulated timeline — ``repro trace --event N`` dumps exactly the
    event ``repro stats`` counted.
    """
    from time import perf_counter

    from .faults import (
        ChaosSimulation,
        CrashRecoverySimulation,
        OverloadChaosSimulation,
        build_crash_recovery_plan,
    )
    from .faults.verifier import (
        build_burst_storm_times,
        build_chaos_plan,
        build_chaos_testbed,
    )
    from .telemetry import Telemetry

    crash_recovery = getattr(args, "crash_recovery", False)
    failover = getattr(args, "failover", False)
    cluster = getattr(args, "cluster", False)
    if sum(
        (
            crash_recovery,
            failover,
            cluster,
            bool(getattr(args, "overload", False)),
        )
    ) > 1:
        print(
            "error: --overload, --crash-recovery, --failover and "
            "--cluster are mutually exclusive",
            file=sys.stderr,
        )
        raise SystemExit(2)
    broker, density = build_chaos_testbed(
        seed=args.seed,
        subscriptions=args.subscriptions,
        num_groups=args.groups,
        dynamic=crash_recovery or failover,
    )
    if crash_recovery or failover:
        # Recovery rebuilds the engine through the dynamic machinery,
        # so the DynamicPubSubBroker must survive: set in place.
        broker.policy = ThresholdPolicy(args.threshold)
    else:
        broker = broker.with_policy(ThresholdPolicy(args.threshold))
    points, publishers = PublicationGenerator(
        density, broker.topology.all_stub_nodes(), seed=args.seed + 9
    ).generate(args.events)
    telemetry = Telemetry(seed=args.seed)
    started = perf_counter()
    if crash_recovery:
        plan, home = build_crash_recovery_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            crashes=args.crashes,
            crash_length=args.crash_length,
            horizon=float(args.events),
        )
        simulation = CrashRecoverySimulation(
            broker, plan, home=home, telemetry=telemetry
        )
        report = simulation.run(points, publishers)
    elif failover:
        from .faults import FailoverChaosSimulation, build_failover_plan

        inter_arrival = 2.0
        plan, primary, standbys = build_failover_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            scenario="kill",
            horizon=max(args.events * inter_arrival, 500.0),
        )
        simulation = FailoverChaosSimulation(
            broker, plan, standbys, primary=primary, telemetry=telemetry
        )
        report = simulation.run(
            points, publishers, inter_arrival=inter_arrival
        )
    elif cluster:
        from .faults import (
            FullStackChaosSimulation,
            RetryConfig,
            build_cluster_plan,
        )
        from .sharding import ShardMap

        num_shards = getattr(args, "shards", 4)
        shard_map = ShardMap.plan(broker.partition, num_shards)
        plan, homes, standby_map, planned, corruptions = build_cluster_plan(
            broker.topology,
            shard_map,
            seed=args.seed,
            loss=args.loss,
            scenario=getattr(args, "cluster_scenario", "kill"),
            horizon=max(float(args.events), 300.0),
            standby_count=getattr(args, "standbys", 2),
        )
        simulation = FullStackChaosSimulation(
            broker,
            plan,
            standby_map,
            num_shards=num_shards,
            shard_homes=homes,
            migrations=planned,
            corruptions=corruptions,
            telemetry=telemetry,
        )
        simulation.transport.config = RetryConfig.for_network(
            simulation.network,
            max_attempts=getattr(args, "max_attempts", 6),
        )
        report = simulation.run(points, publishers)
    elif getattr(args, "overload", False):
        plan = build_chaos_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            crashes=args.crashes,
            crash_length=args.crash_length,
            horizon=float(args.events),
        )
        simulation = OverloadChaosSimulation(
            broker, plan, reliable=True, telemetry=telemetry
        )
        report = simulation.run(
            points, publishers, build_burst_storm_times(args.events)
        )
    else:
        plan = build_chaos_plan(
            broker.topology,
            seed=args.seed,
            loss=args.loss,
            crashes=args.crashes,
            crash_length=args.crash_length,
            horizon=float(args.events),
        )
        simulation = ChaosSimulation(
            broker, plan, reliable=True, telemetry=telemetry
        )
        report = simulation.run(points, publishers)
    wall = perf_counter() - started
    return report, telemetry, wall


def _cmd_stats(args: argparse.Namespace) -> int:
    from .telemetry.exporters import write_prometheus, write_spans_jsonl

    report, telemetry, wall = _run_instrumented(args)
    metrics = telemetry.metrics

    def counter(name: str, **labels) -> int:
        return int(metrics.value(name, **labels))

    latency = metrics.histogram("broker.match_latency_us")
    events = counter("broker.events")
    rows = [
        ("events", events),
        ("events/sec", f"{events / wall:.1f}" if wall > 0 else "inf"),
        ("match latency p50 (us)", f"{latency.p50:.1f}"),
        ("match latency p95 (us)", f"{latency.p95:.1f}"),
        ("match latency p99 (us)", f"{latency.p99:.1f}"),
        ("multicasts", counter("decision.method", method="multicast")),
        ("unicasts", counter("decision.method", method="unicast")),
        ("not sent", counter("decision.method", method="not_sent")),
        ("deliveries", counter("transport.delivered")),
        ("retries", counter("transport.retries")),
        ("reroutes", counter("transport.reroutes")),
        ("gave up", counter("transport.gave_up")),
        (
            "duplicates suppressed",
            counter("transport.duplicates_suppressed"),
        ),
        ("acks sent", counter("transport.acks_sent")),
        (
            "link retransmissions (ARQ)",
            counter("net.link.retransmissions"),
        ),
    ]
    print(
        f"instrumented run: {args.events} events, loss={args.loss}, "
        f"crashes={args.crashes}x{args.crash_length}, seed={args.seed}"
    )
    print(format_table(("metric", "value"), rows))

    # Broker health summary (live when the overload stack ran).
    overload_active = metrics.get("overload.queue_depth") is not None
    if overload_active:
        health_rows = [
            (
                "ingress queue depth (at last arrival)",
                int(metrics.value("overload.queue_depth")),
            ),
        ]
        family = metrics.get("overload.health_transitions")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                state = dict(labels).get("state", "?")
                health_rows.append(
                    (f"entered {state}", int(metric.value))
                )
        family = metrics.get("overload.shed")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                reason = dict(labels).get("reason", "?")
                health_rows.append((f"shed: {reason}", int(metric.value)))
        health_rows.extend(
            [
                ("expired in broker", counter("overload.expired")),
                ("late drops at receiver", counter("overload.late_drops")),
                (
                    "degraded (group flood)",
                    counter("broker.degraded_events"),
                ),
                (
                    "short-circuited (breaker open)",
                    counter("transport.short_circuited"),
                ),
            ]
        )
        print("\nbroker health (overload protection):")
        print(format_table(("signal", "value"), health_rows))
    else:
        print(
            "\nbroker health: overload protection inactive "
            "(re-run with --overload for the saturation pipeline)"
        )

    # Durability summary (live when the home broker journaled to a WAL).
    family = metrics.get("wal.appends")
    if family is not None:
        durability_rows = []
        total_appends = 0
        for labels, metric in sorted(family.children.items()):
            kind = dict(labels).get("kind", "?")
            durability_rows.append(
                (f"wal appends: {kind}", int(metric.value))
            )
            total_appends += int(metric.value)
        durability_rows[:0] = [("wal appends (total)", total_appends)]
        durability_rows.extend(
            [
                ("checkpoints", counter("wal.checkpoints")),
                ("recoveries", counter("recovery.runs")),
                ("records replayed", counter("recovery.replayed")),
                ("wal bytes truncated", counter("recovery.truncated")),
                ("in-flight found on recovery", counter("recovery.inflight")),
                ("in-flight wiped by crash", counter("transport.wiped")),
                ("events deferred while down", counter("broker.deferred")),
            ]
        )
        print("\nbroker durability (write-ahead log):")
        print(format_table(("signal", "value"), durability_rows))
    elif getattr(args, "crash_recovery", False) is False:
        print(
            "\nbroker durability: journaling inactive "
            "(re-run with --crash-recovery for the WAL pipeline)"
        )

    # Replication summary (live when the home broker was replicated).
    if metrics.get("replication.epoch") is not None:
        replication_rows = [
            ("failovers", counter("replication.failovers")),
            ("group epoch", int(metrics.value("replication.epoch"))),
            (
                "writes rejected by fencing",
                counter("replication.fenced_writes"),
            ),
        ]
        family = metrics.get("replication.lag_records")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                standby = dict(labels).get("standby", "?")
                replication_rows.append(
                    (f"shipping lag @ standby {standby}", int(metric.value))
                )
        family = metrics.get("failover.outcomes")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                outcome = dict(labels).get("outcome", "?")
                replication_rows.append(
                    (f"events {outcome}", int(metric.value))
                )
        duration = metrics.histogram("replication.failover_duration")
        if duration.count:
            replication_rows.append(
                ("failover duration p95", f"{duration.p95:.1f}")
            )
        print("\nbroker replication (WAL shipping + failover):")
        print(format_table(("signal", "value"), replication_rows))
    elif getattr(args, "failover", False) is False:
        print(
            "\nbroker replication: inactive "
            "(re-run with --failover for the replicated-group pipeline)"
        )

    # Cluster summary (live when the sharded cluster ran).
    if metrics.get("cluster.epoch") is not None:
        cluster_rows = [
            ("membership view epoch", int(metrics.value("cluster.epoch"))),
            ("shard takeovers", counter("cluster.takeovers")),
            (
                "ring exclusions (last resort)",
                counter("cluster.ring_exclusions"),
            ),
            (
                "ex-primaries fenced",
                counter("cluster.fenced"),
            ),
            (
                "writes rejected by fencing",
                counter("cluster.fenced_writes"),
            ),
            (
                "publishes rerouted after takeover",
                counter("cluster.failover_reroutes"),
            ),
        ]
        family = metrics.get("cluster.shard_epoch")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                shard = dict(labels).get("shard", "?")
                cluster_rows.append(
                    (f"shard {shard} epoch", int(metric.value))
                )
        family = metrics.get("cluster.shard_lag")
        if family is not None:
            for labels, metric in sorted(family.children.items()):
                pair = dict(labels)
                cluster_rows.append(
                    (
                        f"shard {pair.get('shard', '?')} lag @ standby "
                        f"{pair.get('standby', '?')}",
                        int(metric.value),
                    )
                )
        duration = metrics.histogram("cluster.takeover_duration")
        if duration.count:
            cluster_rows.append(
                ("takeover duration p95", f"{duration.p95:.1f}")
            )
        print("\nshard cluster (membership + per-shard failover):")
        print(format_table(("signal", "value"), cluster_rows))
    elif getattr(args, "cluster", False) is False:
        print(
            "\nshard cluster: inactive "
            "(re-run with --cluster for the replicated-shard pipeline)"
        )

    per_link = []
    family = metrics.get("net.link.bytes")
    if family is not None:
        for labels, metric in family.children.items():
            per_link.append((dict(labels)["link"], int(metric.value)))
    per_link.sort(key=lambda item: (-item[1], item[0]))
    total_bytes = sum(size for _, size in per_link)
    print(
        f"\nlink traffic: {total_bytes} bytes over "
        f"{len(per_link)} links; busiest {min(args.top_links, len(per_link))}:"
    )
    print(
        format_table(
            ("link", "bytes", "copies"),
            [
                (
                    link,
                    size,
                    int(metrics.value("net.link.transmissions", link=link)),
                )
                for link, size in per_link[: args.top_links]
            ],
        )
    )
    if args.metrics_out:
        write_prometheus(metrics, args.metrics_out)
        print(f"\nwrote {args.metrics_out} (Prometheus text format)")
    if args.trace_out:
        write_spans_jsonl(telemetry.tracer.spans, args.trace_out)
        print(f"wrote {args.trace_out} ({len(telemetry.tracer.spans)} spans)")
    if hasattr(report, "cluster"):
        # Full-stack guarantees: ledger closed, zero duplicates, every
        # miss explained, match parity — and the scenario's kill was
        # answered by a takeover, not ring exclusion.
        healthy = (
            report.sharded.accounted
            and report.duplicate_deliveries == 0
            and report.sharded.unexplained_misses == 0
            and report.sharded.match_parity
            and report.cluster.takeovers >= 1
        )
        return 0 if healthy else 1
    if hasattr(report, "failover"):
        # A permanent kill leaves the killed node's own subscribers
        # unreachable, so exactly-once cannot hold; the replication
        # guarantees are the outcome ledger and zero duplicates.
        healthy = (
            report.failover.accounted
            and report.duplicate_deliveries == 0
            and report.replication.failovers >= 1
        )
        return 0 if healthy else 1
    if hasattr(report, "exactly_once"):
        return 0 if report.exactly_once else 1
    return 0 if report.accounted and report.within_capacity else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from .telemetry.exporters import (
        format_span_tree,
        span_tree,
        spans_to_jsonl,
    )

    if args.event < 0 or args.event >= args.events:
        print(
            f"error: --event {args.event} outside workload "
            f"[0, {args.events})",
            file=sys.stderr,
        )
        return 2
    _, telemetry, _ = _run_instrumented(args)
    ordered = span_tree(telemetry.tracer.spans, args.event)
    if not ordered:
        print(
            f"no spans recorded for event {args.event} "
            "(event may have matched nobody)",
            file=sys.stderr,
        )
        return 1
    if args.pretty:
        print(format_span_tree(ordered))
        return 0
    payload = "\n".join(spans_to_jsonl(ordered)) + "\n"
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(payload)
        print(f"wrote {args.out} ({len(ordered)} spans)", file=sys.stderr)
    else:
        print(payload, end="")
    return 0


def _cmd_wal(args: argparse.Namespace) -> int:
    import json
    import os
    from collections import Counter as TallyCounter

    from .durability import FileWAL, RecordKind

    if not os.path.exists(args.path):
        print(f"error: {args.path}: no such file", file=sys.stderr)
        return 2
    try:
        wal = FileWAL(args.path)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    result = wal.scan()
    by_kind = TallyCounter(record.kind for record in result.records)
    rows = [
        ("base lsn", wal.base_lsn),
        ("end lsn", wal.end_lsn),
        ("records", len(result.records)),
    ]
    rows.extend(
        (f"  {kind.name.lower()}", by_kind[kind])
        for kind in RecordKind
        if by_kind[kind]
    )
    rows.append(
        ("status", "clean" if result.clean else "CORRUPT")
    )
    print(f"wal: {args.path}")
    print(format_table(("field", "value"), rows))
    if args.tail and result.records:
        tail = result.records[-args.tail :]
        print(f"\nlast {len(tail)} records:")

        def render(body: dict) -> str:
            text = json.dumps(body, sort_keys=True)
            return text if len(text) <= 64 else text[:61] + "..."

        print(
            format_table(
                ("lsn", "kind", "body"),
                [
                    (record.lsn, record.kind.name.lower(), render(record.body))
                    for record in tail
                ],
            )
        )
    if not result.clean:
        print(
            f"\n{result.corruption}\n"
            f"{wal.end_lsn - result.valid_end} trailing bytes are "
            f"unreadable; recovery would truncate at lsn "
            f"{result.valid_end}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from .statics import (
        DEFAULT_BASELINE_NAME,
        Baseline,
        lint_paths,
        render_json,
        render_rule_table,
        render_text,
    )

    if args.list_rules:
        print(render_rule_table())
        return 0

    baseline_path = args.baseline_file or DEFAULT_BASELINE_NAME
    try:
        if args.baseline == "apply":
            baseline = Baseline.load(baseline_path)
        else:
            baseline = None
        result = lint_paths(args.paths, rules=args.rules, baseline=baseline)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.baseline == "write":
        Baseline.from_findings(result.findings).dump(baseline_path)
        print(
            f"wrote {baseline_path}: {len(result.findings)} "
            f"grandfathered finding(s) across {result.files} files"
        )
        return 0

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_text(result))
    return result.exit_code


def _cmd_dot(args: argparse.Namespace) -> int:
    from .network.visualize import write_dot

    topology, _ = load_testbed(args.testbed)
    path = write_dot(
        topology,
        args.out,
        include_stub_nodes=not args.backbone_only,
    )
    print(
        f"wrote {path} ({topology.num_nodes} nodes); render with e.g. "
        f"`dot -Kneato -Tsvg {path} -o topology.svg`"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    handlers = {
        "generate": _cmd_generate,
        "run": _cmd_run,
        "tune": _cmd_tune,
        "experiments": _cmd_experiments,
        "chaos": _cmd_chaos,
        "shard": _cmd_shard,
        "sessions": _cmd_sessions,
        "stats": _cmd_stats,
        "trace": _cmd_trace,
        "wal": _cmd_wal,
        "lint": _cmd_lint,
        "dot": _cmd_dot,
    }
    return handlers[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
