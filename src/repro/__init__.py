"""repro — content-based publish-subscribe with spatial matching.

A complete reproduction of Riabov, Liu, Wolf, Yu & Zhang, *New
Algorithms for Content-Based Publication-Subscription Systems*
(ICDCS 2003): the S-tree matching index, the grid-based subscription
clustering framework (Forgy k-means / pairwise grouping / minimum
spanning tree), the online multicast-vs-unicast distribution-method
scheme, and the full simulation testbed (transit-stub topologies,
stock-market workloads, delivery cost model) used in the paper's
evaluation.

Quickstart::

    from repro import (
        TransitStubGenerator, StockSubscriptionGenerator,
        SubscriptionTable, PubSubBroker, ForgyKMeansClustering,
        ThresholdPolicy, publication_distribution, PublicationGenerator,
    )

    topology = TransitStubGenerator(seed=7).generate()
    placed = StockSubscriptionGenerator(topology, seed=7).generate(1000)
    table = SubscriptionTable.from_placed(placed)
    density = publication_distribution(modes=9)
    broker = PubSubBroker.preprocess(
        topology, table, ForgyKMeansClustering(), num_groups=11,
        density=density, policy=ThresholdPolicy(threshold=0.15),
    )
    points, publishers = PublicationGenerator(
        density, topology.all_stub_nodes(), seed=7,
    ).generate(1000)
    tally, _ = broker.run(points, publishers)
    print(f"improvement over unicast: {tally.improvement_percent:.1f}%")
"""

from .clustering import (
    CellClusteringAlgorithm,
    ClusteringResult,
    EventGrid,
    ForgyKMeansClustering,
    MinimumSpanningTreeClustering,
    MulticastGroup,
    PairwiseGroupingClustering,
    SpacePartition,
)
from .core import (
    DeliveryMethod,
    DeliveryRecord,
    DynamicPubSubBroker,
    Event,
    MatchingEngine,
    MatchResult,
    PerGroupThresholdPolicy,
    PubSubBroker,
    Subscription,
    SubscriptionTable,
    ThresholdPolicy,
    ThresholdTuner,
    oracle_tally,
)
from .faults import (
    ChaosReport,
    ChaosSimulation,
    FaultInjector,
    FaultPlan,
    FaultState,
    ReliableTransport,
    RetryConfig,
)
from .io import load_testbed, save_testbed
from .sharding import (
    ConsistentHashRing,
    Rebalancer,
    ShardBroker,
    ShardMap,
    ShardRouter,
)
from .geometry import Interval, Point, Rectangle
from .network import (
    CostTally,
    DeliveryCostModel,
    RoutingTable,
    Topology,
    TransitStubGenerator,
    TransitStubParams,
)
from .telemetry import (
    MetricsRegistry,
    NullTelemetry,
    Span,
    Telemetry,
    Tracer,
)
from .spatial import (
    GridIndexMatcher,
    HilbertRTree,
    LinearScanMatcher,
    PointMatcher,
    STree,
    STreeParams,
)
from .workload import (
    PlacedSubscription,
    PublicationGenerator,
    StockMarketModel,
    StockSubscriptionGenerator,
    publication_distribution,
)

__version__ = "1.0.0"

__all__ = [
    "CellClusteringAlgorithm",
    "ClusteringResult",
    "EventGrid",
    "ForgyKMeansClustering",
    "MinimumSpanningTreeClustering",
    "MulticastGroup",
    "PairwiseGroupingClustering",
    "SpacePartition",
    "DeliveryMethod",
    "DeliveryRecord",
    "DynamicPubSubBroker",
    "Event",
    "MatchingEngine",
    "MatchResult",
    "PerGroupThresholdPolicy",
    "PubSubBroker",
    "Subscription",
    "SubscriptionTable",
    "ThresholdPolicy",
    "ThresholdTuner",
    "oracle_tally",
    "ChaosReport",
    "ChaosSimulation",
    "FaultInjector",
    "FaultPlan",
    "FaultState",
    "ReliableTransport",
    "RetryConfig",
    "load_testbed",
    "save_testbed",
    "ConsistentHashRing",
    "Rebalancer",
    "ShardBroker",
    "ShardMap",
    "ShardRouter",
    "Interval",
    "Point",
    "Rectangle",
    "CostTally",
    "DeliveryCostModel",
    "RoutingTable",
    "Topology",
    "TransitStubGenerator",
    "TransitStubParams",
    "MetricsRegistry",
    "NullTelemetry",
    "Span",
    "Telemetry",
    "Tracer",
    "GridIndexMatcher",
    "HilbertRTree",
    "LinearScanMatcher",
    "PointMatcher",
    "STree",
    "STreeParams",
    "PlacedSubscription",
    "PublicationGenerator",
    "StockMarketModel",
    "StockSubscriptionGenerator",
    "publication_distribution",
    "__version__",
]
