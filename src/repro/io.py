"""Persistence: save and load testbeds as JSON.

A simulation campaign is defined by its topology and its subscription
set; this module serializes both (plus enough metadata to rebuild
routing and indexes, which are always derived, never stored) so a
testbed can be generated once and shared or replayed elsewhere.

Infinities are JSON-unfriendly, so rectangle bounds are encoded with
the string sentinels ``"-inf"`` / ``"inf"``.
"""

from __future__ import annotations

import json
import math
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Union

import networkx as nx

from .core.subscription import SubscriptionTable
from .geometry.rectangle import Rectangle
from .network.topology import Topology

__all__ = [
    "fsync_dir",
    "atomic_write_text",
    "atomic_write_bytes",
    "topology_to_dict",
    "topology_from_dict",
    "table_to_dict",
    "table_from_dict",
    "save_testbed",
    "load_testbed",
]


def fsync_dir(path: Union[str, Path]) -> None:
    """Flush a *directory* entry to disk.

    :func:`os.replace` makes a rename atomic, but the new directory
    entry itself lives in the page cache until the directory inode is
    synced — a host crash right after the rename can resurface the old
    file (or no file at all).  Fsyncing the directory closes that gap.
    Platforms that cannot fsync a directory (notably Windows) raise
    ``OSError`` on the open or the fsync; durability there is
    best-effort and the error is swallowed.
    """
    try:
        fd = os.open(str(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Write ``text`` to ``path`` all-or-nothing.

    The content goes to a temp file in the same directory and is
    :func:`os.replace`\\ d into place, so an interrupted write (crash,
    full disk, ctrl-C) leaves any previous file at ``path`` intact —
    never a truncated hybrid.  The temp file is removed on failure,
    and the directory is fsynced after the rename so the new entry
    itself survives a host crash.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent or "."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, path)
        fsync_dir(path.parent or ".")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise

def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Binary sibling of :func:`atomic_write_text`.

    Same temp-file + :func:`os.replace` + directory-fsync contract;
    used by the durability layer (WAL rewrites, snapshot stores) where
    a torn write is precisely the corruption recovery must survive.
    """
    path = Path(path)
    fd, tmp = tempfile.mkstemp(
        dir=str(path.parent or "."), prefix=path.name, suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
        os.replace(tmp, path)
        fsync_dir(path.parent or ".")
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


_FORMAT_VERSION = 1


def _encode_bound(value: float) -> Union[float, str]:
    if value == math.inf:
        return "inf"
    if value == -math.inf:
        return "-inf"
    return float(value)


def _decode_bound(value: Union[float, str]) -> float:
    if value == "inf":
        return math.inf
    if value == "-inf":
        return -math.inf
    return float(value)


def topology_to_dict(topology: Topology) -> Dict:
    """JSON-ready encoding of a transit-stub topology."""
    return {
        "nodes": [
            {"id": int(node), **data}
            for node, data in sorted(topology.graph.nodes(data=True))
        ],
        "edges": [
            {"u": int(u), "v": int(v), "cost": float(data["cost"])}
            for u, v, data in topology.graph.edges(data=True)
        ],
        "transit_nodes": [
            [int(n) for n in block] for block in topology.transit_nodes
        ],
        "stub_members": [
            [int(n) for n in stub] for stub in topology.stub_members
        ],
        "stub_block": [int(b) for b in topology.stub_block],
        "stub_owner": [int(o) for o in topology.stub_owner],
    }


def topology_from_dict(data: Dict) -> Topology:
    """Inverse of :func:`topology_to_dict` (validates the result)."""
    graph = nx.Graph()
    for node in data["nodes"]:
        attrs = {k: v for k, v in node.items() if k != "id"}
        graph.add_node(int(node["id"]), **attrs)
    for edge in data["edges"]:
        graph.add_edge(
            int(edge["u"]), int(edge["v"]), cost=float(edge["cost"])
        )
    topology = Topology(
        graph=graph,
        transit_nodes=[[int(n) for n in b] for b in data["transit_nodes"]],
        stub_members=[[int(n) for n in s] for s in data["stub_members"]],
        stub_block=[int(b) for b in data["stub_block"]],
        stub_owner=[int(o) for o in data.get("stub_owner", [])],
    )
    topology.validate()
    return topology


def table_to_dict(table: SubscriptionTable) -> Dict:
    """JSON-ready encoding of a subscription table."""
    return {
        "ndim": table.ndim,
        "subscriptions": [
            {
                "subscriber": s.subscriber,
                "lows": [_encode_bound(x) for x in s.rectangle.lows],
                "highs": [_encode_bound(x) for x in s.rectangle.highs],
            }
            for s in table
        ],
    }


def table_from_dict(data: Dict) -> SubscriptionTable:
    """Inverse of :func:`table_to_dict` (ids are re-assigned in order)."""
    table = SubscriptionTable(int(data["ndim"]))
    for entry in data["subscriptions"]:
        table.add(
            int(entry["subscriber"]),
            Rectangle(
                tuple(_decode_bound(x) for x in entry["lows"]),
                tuple(_decode_bound(x) for x in entry["highs"]),
            ),
        )
    return table


def save_testbed(
    path: Union[str, Path],
    topology: Topology,
    table: SubscriptionTable,
) -> None:
    """Write a topology + subscription set to a JSON file (atomically)."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "topology": topology_to_dict(topology),
        "subscriptions": table_to_dict(table),
    }
    atomic_write_text(path, json.dumps(payload))


def load_testbed(
    path: Union[str, Path]
) -> tuple[Topology, SubscriptionTable]:
    """Read a testbed written by :func:`save_testbed`."""
    payload = json.loads(Path(path).read_text())
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported testbed format version: {version!r}"
        )
    return (
        topology_from_dict(payload["topology"]),
        table_from_dict(payload["subscriptions"]),
    )
