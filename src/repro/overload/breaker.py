"""Per-subscriber-link circuit breakers.

A permanently-dead subscriber is poison for the reliable transport:
every event matched to it burns the full exponential-backoff retry
budget, and during a burst those doomed retries crowd out retries that
could still succeed.  The standard fix is the circuit breaker state
machine:

    CLOSED ──(failure_threshold consecutive failures)──▶ OPEN
      ▲                                                    │
      │ probe succeeds                  reset_timeout elapses
      │                                                    ▼
      └───────────────────────── HALF_OPEN ──(probe fails)─▶ OPEN

While OPEN, deliveries to the target fail immediately ("short
circuit") without consuming any retry budget.  After ``reset_timeout``
the breaker admits exactly one *probe* delivery (HALF_OPEN); its fate
decides whether the breaker closes again or re-opens for another
timeout.

All timing is the caller's injected ``now`` — inside a simulation that
is the engine clock, so breaker trips land at byte-identical instants
on every seeded rerun.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = [
    "BreakerState",
    "BreakerConfig",
    "BreakerStats",
    "CircuitBreaker",
    "BreakerBoard",
]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


@dataclass(frozen=True)
class BreakerConfig:
    """Trip and recovery knobs shared by every breaker on a board.

    ``failure_threshold`` consecutive failures open the breaker;
    ``reset_timeout`` simulated time units later one probe is allowed
    through.
    """

    failure_threshold: int = 3
    reset_timeout: float = 200.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                "BreakerConfig: failure_threshold must be >= 1 "
                f"(got {self.failure_threshold})"
            )
        if self.reset_timeout <= 0:
            raise ValueError(
                "BreakerConfig: reset_timeout must be positive "
                f"(got {self.reset_timeout})"
            )


@dataclass
class BreakerStats:
    """Board-wide transition and short-circuit counts."""

    opens: int = 0
    closes: int = 0
    probes: int = 0
    short_circuits: int = 0


class CircuitBreaker:
    """One target's breaker (see the module docstring for the machine)."""

    __slots__ = ("config", "state", "failures", "opened_at", "probing")

    def __init__(self, config: BreakerConfig):
        self.config = config
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.opened_at = 0.0
        self.probing = False

    def allow(self, now: float) -> bool:
        """May a delivery attempt to this target start at ``now``?"""
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.OPEN:
            if now - self.opened_at >= self.config.reset_timeout:
                self.state = BreakerState.HALF_OPEN
                self.probing = False
            else:
                return False
        # HALF_OPEN: exactly one in-flight probe at a time.
        if self.probing:
            return False
        self.probing = True
        return True

    def record_success(self, now: float) -> bool:
        """A delivery completed; returns True when this closed the breaker."""
        closed = self.state is not BreakerState.CLOSED
        self.state = BreakerState.CLOSED
        self.failures = 0
        self.probing = False
        return closed

    def record_failure(self, now: float) -> bool:
        """A delivery failed; returns True when this opened the breaker."""
        if self.state is BreakerState.HALF_OPEN:
            # The probe died: straight back to OPEN, timer re-armed.
            self.state = BreakerState.OPEN
            self.opened_at = now
            self.probing = False
            return True
        self.failures += 1
        if (
            self.state is BreakerState.CLOSED
            and self.failures >= self.config.failure_threshold
        ):
            self.state = BreakerState.OPEN
            self.opened_at = now
            return True
        return False


class BreakerBoard:
    """Lazily-created breakers keyed by target node, with shared stats."""

    def __init__(self, config: BreakerConfig | None = None):
        self.config = config or BreakerConfig()
        self.stats = BreakerStats()
        self._breakers: Dict[int, CircuitBreaker] = {}
        #: (time, target, state) transition log, in trip order —
        #: deterministic under the injected clock, handy for reports.
        self.transitions: List[Tuple[float, int, str]] = []

    def breaker(self, target: int) -> CircuitBreaker:
        breaker = self._breakers.get(target)
        if breaker is None:
            breaker = self._breakers[target] = CircuitBreaker(self.config)
        return breaker

    def state(self, target: int) -> BreakerState:
        breaker = self._breakers.get(target)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def allow(self, target: int, now: float) -> bool:
        """Gate one delivery attempt; False = short-circuit the target."""
        breaker = self.breaker(target)
        was_open = breaker.state is BreakerState.OPEN
        allowed = breaker.allow(now)
        if allowed and was_open:
            self.stats.probes += 1
            self.transitions.append((now, target, "half_open"))
        if not allowed:
            self.stats.short_circuits += 1
        return allowed

    def record_success(self, target: int, now: float) -> None:
        if self.breaker(target).record_success(now):
            self.stats.closes += 1
            self.transitions.append((now, target, "closed"))

    def record_failure(self, target: int, now: float) -> None:
        if self.breaker(target).record_failure(now):
            self.stats.opens += 1
            self.transitions.append((now, target, "open"))

    def open_targets(self) -> List[int]:
        """Targets currently isolated (OPEN), sorted for stable output."""
        return sorted(
            target
            for target, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
        )
