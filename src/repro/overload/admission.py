"""Token-bucket admission control at the publisher edge.

The first line of overload defence: before an event touches the
ingress queue — let alone the matcher — the publisher edge checks a
token bucket.  Sustained publish rates above ``rate`` are refused at
the door, which converts an unbounded queue-growth problem into an
explicit, accounted shed decision.

Refill is computed lazily from the elapsed time between calls, so the
bucket needs no timers and is exact: ``tokens(t) = min(burst,
tokens(t0) + rate * (t - t0))``.  Time always comes from the caller
(the simulator clock in tests and chaos runs), never a wall clock.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TokenBucket", "AdmissionStats"]


@dataclass
class AdmissionStats:
    """Outcome counts of one bucket."""

    admitted: int = 0
    rejected: int = 0


class TokenBucket:
    """Classic token bucket with injected time.

    ``rate`` is tokens added per simulated time unit; ``burst`` is the
    bucket capacity (and the initial fill), bounding how far a quiet
    period can be banked against a later spike.
    """

    def __init__(self, rate: float, burst: float):
        if rate <= 0:
            raise ValueError(
                f"TokenBucket: rate must be positive (got {rate})"
            )
        if burst < 1:
            raise ValueError(
                f"TokenBucket: burst must be >= 1 (got {burst})"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.stats = AdmissionStats()
        self._tokens = float(burst)
        self._updated_at = 0.0

    def _refill(self, now: float) -> None:
        if now > self._updated_at:
            self._tokens = min(
                self.burst, self._tokens + self.rate * (now - self._updated_at)
            )
            self._updated_at = now

    def tokens_at(self, now: float) -> float:
        """Current token balance (refilled to ``now``), for inspection."""
        self._refill(now)
        return self._tokens

    def try_acquire(self, now: float, tokens: float = 1.0) -> bool:
        """Spend ``tokens`` if available; False means reject the event."""
        self._refill(now)
        if self._tokens >= tokens:
            self._tokens -= tokens
            self.stats.admitted += 1
            return True
        self.stats.rejected += 1
        return False
