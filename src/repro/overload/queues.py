"""Bounded ingress queues with pluggable shedding policies.

The paper's broker implicitly assumes infinite buffering: every
published event is matched and routed, however fast publishers fire.
A real broker has a finite ingress buffer, and what it does when that
buffer fills is a *policy decision* with very different failure modes:

- **drop-newest** — reject the arriving event (classic tail drop);
  cheapest and fairest to work already admitted, but bursts starve
  latecomers;
- **drop-oldest** — evict the head to admit the arrival; keeps the
  queue fresh (good when stale events are worthless) at the price of
  wasting the work already spent on the victim;
- **ttl-priority** — first purge entries whose deadline already
  passed, then evict the entry with the *nearest* deadline (it is the
  most likely to expire in queue anyway), falling back to tail drop
  when nothing carries a deadline.

All decisions are pure functions of (queue contents, the injected
``now``); nothing here consults a wall clock or RNG, so seeded
simulations shed byte-identically on every rerun.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Generic, List, Optional, Tuple, TypeVar

__all__ = [
    "SHED_POLICIES",
    "QueueItem",
    "QueueStats",
    "BoundedQueue",
]

T = TypeVar("T")

#: The recognised shedding policies (CLI ``--shed-policy`` choices).
SHED_POLICIES = ("drop-newest", "drop-oldest", "ttl-priority")


@dataclass(frozen=True)
class QueueItem(Generic[T]):
    """One queued entry: the payload plus its scheduling metadata."""

    payload: T
    enqueued_at: float
    deadline: Optional[float] = None

    def expired(self, now: float) -> bool:
        return self.deadline is not None and now >= self.deadline


@dataclass
class QueueStats:
    """What one bounded queue did over its lifetime."""

    offered: int = 0      # offer() calls
    admitted: int = 0     # entries that entered the buffer
    shed: int = 0         # entries rejected or evicted by the policy
    expired: int = 0      # entries purged past their deadline
    peak_depth: int = 0   # high-water mark of the buffer


class BoundedQueue(Generic[T]):
    """A FIFO with a hard capacity and a named shedding policy.

    ``offer(payload, now)`` returns the list of payloads the policy
    shed to (fail to) make room — possibly including the offered one —
    so the caller can account for every loss.  ``poll(now)`` pops the
    head, transparently purging expired entries (returned separately
    via ``drain_expired``-style accounting in :attr:`stats`).

    The buffer depth never exceeds ``capacity``; that invariant is the
    backbone of the overload acceptance test.
    """

    def __init__(self, capacity: int, policy: str = "drop-newest"):
        if capacity < 1:
            raise ValueError(
                f"BoundedQueue: capacity must be >= 1 (got {capacity})"
            )
        if policy not in SHED_POLICIES:
            raise ValueError(
                f"BoundedQueue: unknown policy {policy!r}; choose from "
                f"{sorted(SHED_POLICIES)}"
            )
        self.capacity = int(capacity)
        self.policy = policy
        self.stats = QueueStats()
        self._buffer: Deque[QueueItem[T]] = deque()
        self._last_expired: List[T] = []

    def __len__(self) -> int:
        return len(self._buffer)

    @property
    def depth(self) -> int:
        return len(self._buffer)

    @property
    def fill_fraction(self) -> float:
        """Queue depth as a fraction of capacity (the health signal)."""
        return len(self._buffer) / self.capacity

    def head_wait(self, now: float) -> float:
        """How long the head entry has queued — the latency signal."""
        if not self._buffer:
            return 0.0
        return max(0.0, now - self._buffer[0].enqueued_at)

    # -- ingress -------------------------------------------------------------

    def offer(
        self,
        payload: T,
        now: float,
        deadline: Optional[float] = None,
    ) -> List[T]:
        """Try to admit ``payload``; returns the payloads shed, if any.

        An empty return means the payload was admitted at no cost.  A
        non-empty return lists every payload the policy gave up on —
        either the offered one (drop-newest / a full queue of
        deadline-free entries under ttl-priority) or evicted older
        entries (drop-oldest, ttl-priority).  Expired entries purged
        along the way are counted in ``stats.expired`` and *also*
        returned, tagged by the caller's bookkeeping via
        :meth:`expired_in_last_offer`.
        """
        self.stats.offered += 1
        self._last_expired = []
        shed: List[T] = []
        if len(self._buffer) >= self.capacity and self.policy == "ttl-priority":
            self._purge_expired(now)
        if len(self._buffer) >= self.capacity:
            victim = self._choose_victim(deadline)
            if victim is None:
                self.stats.shed += 1
                return [payload]
            self._buffer.remove(victim)
            self.stats.shed += 1
            shed.append(victim.payload)
        self._buffer.append(QueueItem(payload, now, deadline))
        self.stats.admitted += 1
        self.stats.peak_depth = max(self.stats.peak_depth, len(self._buffer))
        return shed

    def _choose_victim(
        self, arriving_deadline: Optional[float]
    ) -> Optional[QueueItem[T]]:
        """Pick the entry to evict for an arrival at a full queue.

        ``None`` means "shed the arrival itself instead".
        """
        if self.policy == "drop-newest":
            return None
        if self.policy == "drop-oldest":
            return self._buffer[0]
        # ttl-priority: evict the queued entry with the nearest
        # deadline, but only if it is sooner than the arrival's own —
        # otherwise the arrival is the most-likely-to-expire entry and
        # shedding it wastes the least admitted work.  Deadline-free
        # entries are never evicted by this policy.
        dated = [item for item in self._buffer if item.deadline is not None]
        if not dated:
            return None
        nearest = min(dated, key=lambda item: item.deadline)
        if arriving_deadline is not None and nearest.deadline >= arriving_deadline:
            return None
        return nearest

    def _purge_expired(self, now: float) -> None:
        """Drop every entry whose deadline already passed."""
        if not any(item.expired(now) for item in self._buffer):
            return
        kept: Deque[QueueItem[T]] = deque()
        for item in self._buffer:
            if item.expired(now):
                self.stats.expired += 1
                self._last_expired.append(item.payload)
            else:
                kept.append(item)
        self._buffer = kept

    def expired_in_last_offer(self) -> List[T]:
        """Payloads purged as expired during the most recent offer()."""
        return list(self._last_expired)

    # -- egress --------------------------------------------------------------

    def poll(self, now: float) -> Tuple[Optional[T], List[T]]:
        """Pop the next live entry.

        Returns ``(payload, expired)`` where ``expired`` lists the
        entries skipped because their deadline passed while queued
        (dropped *at this stage* rather than processed late).
        ``payload`` is ``None`` when the queue drained completely.
        """
        expired: List[T] = []
        while self._buffer:
            item = self._buffer.popleft()
            if item.expired(now):
                self.stats.expired += 1
                expired.append(item.payload)
                continue
            return item.payload, expired
        return None, expired
