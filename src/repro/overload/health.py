"""Broker health states with hysteresis: HEALTHY → DEGRADED → OVERLOADED.

The paper's threshold rule already encodes a bandwidth/precision
trade-off: unicast exactly the interested set, or multicast the whole
precomputed group ``M_q`` (a superset, by the clustering invariant).
That same trade-off gives a saturated broker a principled cheap mode:
when load climbs, *skip the exact S-tree point query entirely* and
flood the group — per-event work drops from an index descent to one
``locate`` (a grid-cell lookup), at the price of the group-minus-
interested waste the paper's EW metric quantifies.  That is the
DEGRADED state.  Past DEGRADED, when even flooding cannot keep the
queue bounded, the broker goes OVERLOADED and sheds per its queue
policy.

State changes are driven by one scalar signal — ingress-queue fill
fraction — compared against *asymmetric* thresholds (hysteresis), plus
a minimum dwell time, so the state machine cannot flap at a boundary:

    HEALTHY ──(fill ≥ degrade_high)──▶ DEGRADED ──(fill ≥ overload_high)──▶ OVERLOADED
       ▲                                  │  ▲                                  │
       └──(fill ≤ degrade_low, dwelt)─────┘  └──(fill ≤ overload_low, dwelt)────┘

Upward (protective) transitions fire immediately; downward (relaxing)
ones require the signal to sit at-or-below the low-water mark *and*
the state to have dwelt at least ``min_dwell`` time units.  All time
is the injected ``now``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["BrokerHealth", "HealthThresholds", "HealthMonitor"]


class BrokerHealth(enum.Enum):
    """The broker's load state, best to worst."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    OVERLOADED = "overloaded"


@dataclass(frozen=True)
class HealthThresholds:
    """High/low-water marks of the hysteresis bands.

    Required orderings: ``0 <= degrade_low < degrade_high <=
    overload_low < overload_high <= 1`` and ``min_dwell >= 0``.
    """

    degrade_high: float = 0.60
    degrade_low: float = 0.30
    overload_high: float = 0.90
    overload_low: float = 0.60
    min_dwell: float = 25.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.degrade_low < self.degrade_high:
            raise ValueError(
                "HealthThresholds: need 0 <= degrade_low < degrade_high "
                f"(got {self.degrade_low}, {self.degrade_high})"
            )
        if not self.degrade_high <= self.overload_low < self.overload_high:
            raise ValueError(
                "HealthThresholds: need degrade_high <= overload_low < "
                f"overload_high (got {self.degrade_high}, "
                f"{self.overload_low}, {self.overload_high})"
            )
        if self.overload_high > 1.0:
            raise ValueError(
                "HealthThresholds: overload_high must be <= 1 "
                f"(got {self.overload_high})"
            )
        if self.min_dwell < 0:
            raise ValueError(
                "HealthThresholds: min_dwell must be non-negative "
                f"(got {self.min_dwell})"
            )


class HealthMonitor:
    """Tracks one broker's health from a stream of (now, fill) samples."""

    def __init__(self, thresholds: HealthThresholds | None = None):
        self.thresholds = thresholds or HealthThresholds()
        self.state = BrokerHealth.HEALTHY
        self._entered_at = 0.0
        #: (time, state) transition log, oldest first.
        self.transitions: List[Tuple[float, BrokerHealth]] = []
        #: Total samples observed per state (a cheap duty-cycle view).
        self.samples = {state: 0 for state in BrokerHealth}

    def _enter(self, state: BrokerHealth, now: float) -> None:
        self.state = state
        self._entered_at = now
        self.transitions.append((now, state))

    def observe(self, now: float, fill: float) -> BrokerHealth:
        """Feed one queue-fill sample; returns the (possibly new) state."""
        t = self.thresholds
        dwelt = (now - self._entered_at) >= t.min_dwell
        if self.state is BrokerHealth.HEALTHY:
            if fill >= t.overload_high:
                self._enter(BrokerHealth.OVERLOADED, now)
            elif fill >= t.degrade_high:
                self._enter(BrokerHealth.DEGRADED, now)
        elif self.state is BrokerHealth.DEGRADED:
            if fill >= t.overload_high:
                self._enter(BrokerHealth.OVERLOADED, now)
            elif fill <= t.degrade_low and dwelt:
                self._enter(BrokerHealth.HEALTHY, now)
        else:  # OVERLOADED
            if fill <= t.overload_low and dwelt:
                # Recover one step at a time; the DEGRADED dwell then
                # gates the final step back to HEALTHY.
                self._enter(BrokerHealth.DEGRADED, now)
        self.samples[self.state] += 1
        return self.state

    @property
    def degraded(self) -> bool:
        """True in any protective state (DEGRADED or worse)."""
        return self.state is not BrokerHealth.HEALTHY

    @property
    def shedding(self) -> bool:
        """True when admission should shed instead of queueing."""
        return self.state is BrokerHealth.OVERLOADED
