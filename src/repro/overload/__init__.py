"""Overload protection: backpressure, admission control, degradation.

The pieces, edge to core, in the order a publish burst meets them:

1. :class:`TokenBucket` — admission control at the publisher edge;
   sustained rates above the budget are refused before they cost any
   matching work.
2. :class:`BoundedQueue` — the broker's finite ingress buffer with a
   pluggable shedding policy (``drop-newest`` / ``drop-oldest`` /
   ``ttl-priority``); its fill fraction is the load signal.
3. :class:`HealthMonitor` — hysteresis state machine HEALTHY →
   DEGRADED → OVERLOADED.  DEGRADED switches the broker to the
   paper's group-multicast fallback (flood ``M_q``, skip the exact
   S-tree query); OVERLOADED sheds new arrivals outright.
4. :class:`BreakerBoard` — per-subscriber-link circuit breakers fed
   by the reliable transport's ack/give-up signals, so one dead
   subscriber cannot drain the retry budget.

Everything takes time as an argument (the simulator clock in chaos
runs) and draws no randomness, so seeded overload scenarios replay
byte-identically.  :class:`OverloadConfig` bundles the knobs the
chaos harness and CLI share.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .admission import AdmissionStats, TokenBucket
from .breaker import (
    BreakerBoard,
    BreakerConfig,
    BreakerState,
    BreakerStats,
    CircuitBreaker,
)
from .health import BrokerHealth, HealthMonitor, HealthThresholds
from .queues import SHED_POLICIES, BoundedQueue, QueueItem, QueueStats

__all__ = [
    "AdmissionStats",
    "TokenBucket",
    "BreakerBoard",
    "BreakerConfig",
    "BreakerState",
    "BreakerStats",
    "CircuitBreaker",
    "BrokerHealth",
    "HealthMonitor",
    "HealthThresholds",
    "SHED_POLICIES",
    "BoundedQueue",
    "QueueItem",
    "QueueStats",
    "OverloadConfig",
]


@dataclass(frozen=True)
class OverloadConfig:
    """One broker's complete overload-protection configuration.

    ``service_time`` is the simulated cost of serving one queued event
    (the drain rate is ``1 / service_time``); ``ttl`` is the default
    per-event lifetime stamped at the publisher edge (``None`` = events
    never expire).  ``admission_rate``/``admission_burst`` parameterise
    the edge token bucket; ``None`` rate disables admission control.
    """

    queue_capacity: int = 64
    shed_policy: str = "drop-newest"
    service_time: float = 0.5
    ttl: Optional[float] = None
    admission_rate: Optional[float] = None
    admission_burst: float = 32.0
    #: Head-of-line wait considered "fully loaded" by the latency
    #: signal; ``None`` derives it as ``queue_capacity * service_time``
    #: (the time a full queue takes to drain).
    latency_budget: Optional[float] = None
    thresholds: HealthThresholds = HealthThresholds()
    breakers: BreakerConfig = BreakerConfig()

    def __post_init__(self) -> None:
        if self.queue_capacity < 1:
            raise ValueError(
                "OverloadConfig: queue_capacity must be >= 1 "
                f"(got {self.queue_capacity})"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise ValueError(
                f"OverloadConfig: unknown shed_policy {self.shed_policy!r}; "
                f"choose from {sorted(SHED_POLICIES)}"
            )
        if self.service_time <= 0:
            raise ValueError(
                "OverloadConfig: service_time must be positive "
                f"(got {self.service_time})"
            )
        if self.ttl is not None and self.ttl <= 0:
            raise ValueError(
                f"OverloadConfig: ttl must be positive (got {self.ttl})"
            )
        if self.admission_rate is not None and self.admission_rate <= 0:
            raise ValueError(
                "OverloadConfig: admission_rate must be positive "
                f"(got {self.admission_rate})"
            )
        if self.latency_budget is not None and self.latency_budget <= 0:
            raise ValueError(
                "OverloadConfig: latency_budget must be positive "
                f"(got {self.latency_budget})"
            )

    @property
    def effective_latency_budget(self) -> float:
        if self.latency_budget is not None:
            return self.latency_budget
        return self.queue_capacity * self.service_time

    def build_queue(self) -> BoundedQueue:
        return BoundedQueue(self.queue_capacity, self.shed_policy)

    def build_bucket(self) -> Optional[TokenBucket]:
        if self.admission_rate is None:
            return None
        return TokenBucket(self.admission_rate, self.admission_burst)

    def build_monitor(self) -> HealthMonitor:
        return HealthMonitor(self.thresholds)

    def build_breakers(self) -> BreakerBoard:
        return BreakerBoard(self.breakers)
