"""Sharded chaos: shard kills and mid-migration crashes, verified.

:class:`ShardedChaosSimulation` replays a workload through the full
scale-out stack: every publication resolves to its owning shard via
the :class:`~repro.sharding.router.ShardRouter` (with a routing hop of
``route_delay``, so a publication can be *in flight* when ownership
changes under it), gets matched by the shard's scattered subscription
slice, and rides the reliable transport from the shard's home node.

The adversary kills shard homes permanently and crashes migrations
between their journaled phases.  The defenses under test:

- **epoch fencing** — a publication stamped with a stale shard-map
  epoch that reaches the old owner after a cutover bounces and
  re-routes to the current owner;
- **rebalancing** — a dead shard's subsets migrate to the survivors
  (durability snapshot handoff + journaled cutover), its catchall
  cells redistribute by consistent-hash exclusion, and deferred
  publications flush to the new owners;
- **re-hand** — unacked in-flight deliveries whose sending shard died
  are re-published by the new owner; receiver dedup keeps the wire
  exactly-once.

Every published event lands in exactly one outcome bucket —
**delivered** (serviced by a live owner), **shed** (defer queue full),
or **expired** (TTL lapsed / never found an owner) — and
``delivered + shed + expired == published`` must hold with **zero
duplicate deliveries**.  On top of the ledger, the run proves
*determinism*: each serviced event's shard-local
:class:`~repro.core.matching.MatchResult` must equal the unsharded
broker's, pinned by a BLAKE2b digest over the per-event results
(compare against :func:`unsharded_match_digest`).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..core.distribution import DeliveryMethod, record_decision
from ..core.event import Event
from ..sharding.map import ShardMap
from ..sharding.rebalance import MigrationPhase, MigrationTicket, Rebalancer
from ..sharding.router import ShardRouter
from ..telemetry.base import Telemetry
from .plan import BrokerKill, FaultPlan
from .reliable import RetryConfig
from .verifier import ChaosReport, ChaosSimulation

__all__ = [
    "PlannedMigration",
    "ShardedStats",
    "ShardedReport",
    "ShardedChaosSimulation",
    "build_sharded_plan",
    "unsharded_match_digest",
]


@dataclass(frozen=True)
class PlannedMigration:
    """One scheduled live migration: begin at ``at``, cut over after
    ``copy_time`` (the window mid-migration crashes aim for)."""

    at: float
    q: int
    dest: int
    copy_time: float = 20.0


@dataclass
class ShardedStats:
    """Per-event outcome accounting plus scale-out bookkeeping."""

    published: int = 0
    delivered_events: int = 0
    shed_events: int = 0
    expired_events: int = 0
    #: Events that spent time in the defer queue (any outcome).
    deferred_events: int = 0
    #: Stale-epoch publications bounced by a live old owner.
    fenced_publishes: int = 0
    #: Publications re-routed after arriving at a non-owner.
    rerouted: int = 0
    #: In-flight (event, target) deliveries wiped at a shard kill.
    wiped_inflight: int = 0
    #: (event, target) deliveries re-handed by a new owner.
    redelivered: int = 0
    #: Dead-shard rebalances executed.
    rebalances: int = 0
    shard_kills: int = 0
    #: Live shards evacuated because a kill partitioned them away.
    stranded_shards: int = 0
    migrations_completed: int = 0
    migrations_aborted: int = 0
    #: max/mean planned shard load at run end.
    imbalance: float = 0.0
    #: Missing deliveries whose target is physically unreachable — its
    #: only attachment to the network died with a shard home.  Killing
    #: a transit node disconnects its stub domains; no protocol can
    #: deliver to them, so these misses are *explained* losses.
    stranded_misses: int = 0
    #: Missing deliveries to targets still reachable from a live home —
    #: always a protocol bug; must be zero.
    unexplained_misses: int = 0
    #: Every serviced event matched exactly as the unsharded broker.
    match_parity: bool = True
    #: BLAKE2b digest over per-event MatchResults (determinism pin).
    match_digest: str = ""

    @property
    def accounted(self) -> bool:
        """The conservation law: every event in exactly one bucket."""
        return (
            self.delivered_events + self.shed_events + self.expired_events
            == self.published
        )


@dataclass
class ShardedReport(ChaosReport):
    """A chaos report plus the sharding ledger of the run."""

    sharded: ShardedStats = field(default_factory=ShardedStats)
    num_shards: int = 0
    final_epoch: int = 0
    routed_per_shard: Dict[int, int] = field(default_factory=dict)

    def summary_rows(self) -> List[Tuple[str, object]]:
        rows = super().summary_rows()
        s = self.sharded
        rows.extend(
            [
                ("shards", self.num_shards),
                ("final map epoch", self.final_epoch),
                (
                    "routed per shard",
                    " ".join(
                        f"{k}:{self.routed_per_shard.get(k, 0)}"
                        for k in range(self.num_shards)
                    ),
                ),
                ("shard imbalance", f"{s.imbalance:.3f}"),
                ("events delivered", s.delivered_events),
                ("events shed", s.shed_events),
                ("events expired", s.expired_events),
                ("outcome ledger balanced", "yes" if s.accounted else "NO"),
                ("fenced stale publishes", s.fenced_publishes),
                ("rerouted publishes", s.rerouted),
                ("shard kills", s.shard_kills),
                ("shards stranded by partition", s.stranded_shards),
                ("rebalances", s.rebalances),
                ("migrations completed", s.migrations_completed),
                ("migrations aborted", s.migrations_aborted),
                ("in-flight wiped at kill", s.wiped_inflight),
                ("redelivered by new owner", s.redelivered),
                ("misses to stranded nodes", s.stranded_misses),
                ("unexplained misses", s.unexplained_misses),
                ("match parity vs unsharded", "yes" if s.match_parity else "NO"),
                ("match digest", s.match_digest),
            ]
        )
        return rows


def _digest_items(items: List[List[object]]) -> str:
    body = json.dumps(items, sort_keys=True, separators=(",", ":"))
    return hashlib.blake2b(body.encode("utf-8"), digest_size=16).hexdigest()


def unsharded_match_digest(
    broker,
    points: np.ndarray,
    sequences: Sequence[int],
) -> str:
    """The digest a single unsharded broker produces for ``sequences``.

    Matches :attr:`ShardedStats.match_digest` exactly when every
    shard-local MatchResult equals the global one — the acceptance
    criterion for routing + scatter correctness.
    """
    points = np.asarray(points, dtype=np.float64)
    items: List[List[object]] = []
    for sequence in sorted(int(s) for s in sequences):
        event = Event.create(sequence, 0, points[sequence])
        match = broker.engine.match(event)
        q = broker.partition.locate(event.point)
        items.append(
            [
                sequence,
                sorted(int(i) for i in match.subscription_ids),
                [int(n) for n in match.subscribers],
                int(q),
            ]
        )
    return _digest_items(items)


class ShardedChaosSimulation(ChaosSimulation):
    """A chaos run over K shard brokers with live rebalancing.

    Shard homes default to the first ``num_shards`` transit nodes (in
    node order); a :class:`~repro.faults.plan.BrokerKill` at a home
    kills its shard permanently.  ``migrations`` schedules live subset
    migrations (see :class:`PlannedMigration`); kills landing between
    a migration's begin and cutover exercise the journal's
    roll-forward/roll-back semantics.
    """

    def __init__(
        self,
        broker,
        plan: FaultPlan,
        num_shards: int = 4,
        shard_homes: Optional[Sequence[int]] = None,
        migrations: Sequence[PlannedMigration] = (),
        route_delay: float = 0.5,
        defer_capacity: int = 256,
        defer_ttl: float = 250.0,
        rebalance_delay: float = 30.0,
        virtual_nodes: int = 64,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        if defer_capacity < 0:
            raise ValueError(
                f"defer_capacity must be >= 0 (got {defer_capacity})"
            )
        if defer_ttl <= 0.0:
            raise ValueError(f"defer_ttl must be positive (got {defer_ttl})")
        super().__init__(
            broker,
            plan,
            reliable=True,
            retry=retry,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            hop_retries=hop_retries,
            telemetry=telemetry,
        )
        transit = sorted(int(n) for n in broker.topology.all_transit_nodes())
        if shard_homes is None:
            if num_shards > len(transit):
                raise ValueError(
                    f"cannot place {num_shards} shards on a topology with "
                    f"{len(transit)} transit nodes"
                )
            shard_homes = transit[:num_shards]
        if len(shard_homes) != num_shards:
            raise ValueError("one home node per shard required")
        self.homes: Dict[int, int] = {
            k: int(shard_homes[k]) for k in range(num_shards)
        }
        self.home_to_shard = {home: k for k, home in self.homes.items()}
        self.map = ShardMap.plan(
            broker.partition, num_shards, virtual_nodes=virtual_nodes
        )
        self.router = ShardRouter(
            broker, self.map, homes=self.homes, telemetry=telemetry
        )
        self.rebalancer = Rebalancer(
            self.router,
            clock=lambda: self.simulator.now,
            telemetry=telemetry,
        )
        self.planned = tuple(migrations)
        self.route_delay = float(route_delay)
        self.defer_capacity = int(defer_capacity)
        self.defer_ttl = float(defer_ttl)
        self.rebalance_delay = float(rebalance_delay)
        self.sstats = ShardedStats()
        self.routed_per_shard: Dict[int, int] = {
            k: 0 for k in range(num_shards)
        }
        self._outcomes: Dict[int, str] = {}
        self._dead: Set[int] = set()
        self._deferred: List[
            Tuple[float, int, np.ndarray, Sequence[int], Dict]
        ] = []
        #: sequence -> (global ids, subscribers, q, shard) at service.
        self._records: Dict[
            int, Tuple[Tuple[int, ...], Tuple[int, ...], int, int]
        ] = {}
        #: sequence -> (q, catchall cell or None) for owner recomputation.
        self._routing: Dict[int, Tuple[int, Optional[Tuple[int, ...]]]] = {}
        self._sender_shard: Dict[int, int] = {}
        self._pending_of: Dict[int, Set[int]] = {}
        self._orphans: Dict[int, Set[int]] = {}
        self.transport.on_ack = self._on_ack

    # -- bookkeeping ---------------------------------------------------------

    def _on_ack(self, target: int, key: int, time: float) -> None:
        pending = self._pending_of.get(key)
        if pending is not None:
            pending.discard(int(target))

    def _finish(self, sequence: int, outcome: str) -> None:
        if sequence in self._outcomes:
            raise RuntimeError(
                f"event {sequence} accounted twice: "
                f"{self._outcomes[sequence]} then {outcome}"
            )
        self._outcomes[sequence] = outcome
        if outcome == "delivered":
            self.sstats.delivered_events += 1
        elif outcome == "shed":
            self.sstats.shed_events += 1
        elif outcome == "expired":
            self.sstats.expired_events += 1
        else:
            raise ValueError(f"unknown outcome {outcome!r}")
        if self.telemetry.enabled:
            self.telemetry.counter(
                "sharding.outcomes",
                help="per-event outcomes under sharded chaos",
                outcome=outcome,
            ).inc()

    # -- hook overrides ------------------------------------------------------

    def _arm(self, arrival_times: Sequence[float]) -> None:
        for kill in self.plan.broker_kills:
            shard = self.home_to_shard.get(int(kill.node))
            if shard is not None:
                self.simulator.schedule_at(
                    float(kill.at), lambda s=shard: self._kill_shard(s)
                )
        for planned in self.planned:
            self.simulator.schedule_at(
                float(planned.at),
                lambda p=planned: self._begin_planned(p),
            )

    def _publish_event(
        self,
        sequence: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        # The router resolves immediately and stamps the current map
        # epoch; the publication then spends route_delay in flight, so
        # a cutover can depose the addressed shard before arrival.
        q, shard = self.router.resolve(points[sequence])
        epoch = self.map.epoch
        self.simulator.schedule_at(
            self.simulator.now + self.route_delay,
            lambda: self._arrive(
                sequence, q, shard, epoch, points, publishers, counters
            ),
        )

    # -- arrival, fencing, service -------------------------------------------

    def _arrive(
        self,
        sequence: int,
        q: int,
        shard: int,
        epoch: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        current_q, current = self.router.resolve(points[sequence])
        if current != shard:
            # Stale routing: ownership moved while the publication was
            # in flight.  A live old owner fences it (the stamped epoch
            # is below the map's); either way it re-routes.
            if shard not in self._dead:
                self.sstats.fenced_publishes += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "sharding.fenced",
                        help="stale-epoch publishes bounced by old owners",
                    ).inc()
            self.sstats.rerouted += 1
            self._arrive(
                sequence,
                current_q,
                current,
                self.map.epoch,
                points,
                publishers,
                counters,
            )
            return
        if shard in self._dead:
            if len(self._deferred) >= self.defer_capacity:
                self._finish(sequence, "shed")
                return
            self._deferred.append(
                (self.simulator.now, sequence, points, publishers, counters)
            )
            self.sstats.deferred_events += 1
            return
        self._finish(sequence, "delivered")
        self._serve(sequence, q, shard, points, publishers, counters)

    def _serve(
        self,
        sequence: int,
        q: int,
        shard: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        event = Event.create(
            sequence, int(publishers[sequence]), points[sequence]
        )
        match = self.router.shards[shard].match(event)
        self._records[sequence] = (
            match.subscription_ids,
            match.subscribers,
            q,
            shard,
        )
        cell = (
            self.router.catchall_cell(points[sequence]) if q == 0 else None
        )
        self._routing[sequence] = (q, cell)
        self.routed_per_shard[shard] += 1
        group_size = self.broker.partition.group(q).size if q > 0 else 0
        decision = self.broker.policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        record_decision(self.telemetry, decision)
        if decision.method is DeliveryMethod.NOT_SENT:
            counters["not_sent"] += 1
            return
        now = self.simulator.now
        home = self.homes[shard]
        recipients = [
            node for node in match.subscribers if node != event.publisher
        ]
        self.ledger.expect(sequence, recipients, now)
        self._record_intent(
            sequence, event.publisher, recipients, decision.method.value, q
        )
        if not recipients:
            return
        self._sender_shard[sequence] = shard
        self._pending_of[sequence] = set(recipients)
        interested = set(recipients)
        if decision.method is DeliveryMethod.UNICAST:
            counters["unicast"] += 1
            self.transport.publish(sequence, home, recipients)
            return
        counters["multicast"] += 1
        members = self.broker.partition.group(q).members
        via = None
        if self.broker.costs.multicast_mode == "sparse":
            via = self.broker.costs.rendezvous_point(members)

        def first_pass(receive, m=members, v=via, h=home):
            self.network.send_multicast(
                h,
                m,
                lambda node, time: (
                    receive(node, time) if node in interested else None
                ),
                via=v,
            )

        self.transport.publish(sequence, home, recipients, first_pass)

    # -- kills, rebalance, re-hand -------------------------------------------

    def _kill_shard(self, shard: int) -> None:
        shard = int(shard)
        if shard in self._dead:
            return
        self._dead.add(shard)
        self.sstats.shard_kills += 1
        if self.telemetry.enabled:
            self.telemetry.event("shard-kill", shard=shard)
        # A kill can partition the network: a *live* shard whose home
        # ends up cut off from the majority component can no longer
        # reach most subscribers, so the failure detector declares it
        # stranded and it gets evacuated exactly like a dead one.
        newly = [shard] + self._cascade_stranded()
        # The dead homes' volatile sender-side retry state is gone;
        # wipe the transport, then re-arm entries whose owning shard is
        # still alive (their durable intent survives on a live home).
        wiped = self.transport.wipe_pending()
        self.sstats.wiped_inflight += sum(
            1
            for key, _target in wiped
            if self._sender_shard.get(key) in self._dead
        )
        for key in sorted(self._pending_of):
            pending = self._pending_of[key]
            if not pending:
                continue
            owner = self._sender_shard.get(key)
            if owner is None:
                continue
            if owner in self._dead:
                self._orphans[key] = set(pending)
            else:
                self.transport.publish(
                    key, self.homes[owner], sorted(pending)
                )
        for dead in newly:
            self.simulator.schedule_at(
                self.simulator.now + self.rebalance_delay,
                lambda s=dead: self._rebalance_away(s),
            )

    def _cascade_stranded(self) -> List[int]:
        """Live shards partitioned away from the majority component.

        The surviving graph (dead homes removed) splits into
        components; the one holding the most live shard homes (ties:
        larger, then lowest node) is the majority.  Live shards outside
        it are marked dead and returned for evacuation.
        """
        live = [
            s for s in range(self.map.num_shards) if s not in self._dead
        ]
        if not live:
            return []
        graph = self.broker.topology.graph.copy()
        graph.remove_nodes_from(
            self.homes[s] for s in self._dead if self.homes[s] in graph
        )
        components = list(nx.connected_components(graph))
        if not components:
            return []
        majority = max(
            components,
            key=lambda c: (
                sum(1 for s in live if self.homes[s] in c),
                len(c),
                -min(c),
            ),
        )
        stranded = [s for s in live if self.homes[s] not in majority]
        for s in stranded:
            self._dead.add(s)
            self.sstats.stranded_shards += 1
            if self.telemetry.enabled:
                self.telemetry.event("shard-stranded", shard=s)
        return stranded

    def _rebalance_away(self, shard: int) -> None:
        live = [
            s for s in range(self.map.num_shards) if s not in self._dead
        ]
        if not live:
            return  # nothing to inherit; everything defers until expiry
        # Catchall cells redistribute by ring exclusion; the survivors
        # re-scatter so their matching stays exact for inherited cells.
        self.router.mark_down(shard)
        # Subsets leave through the journaled migration protocol.  The
        # handoff snapshot comes from the dead shard's durable
        # checkpoint (its in-memory copy stands in for it here).
        while True:
            pick = self.rebalancer.propose(shard, exclude=self._dead)
            if pick is None:
                break
            q, dest = pick
            self.rebalancer.migrate(q, dest)
        self.sstats.rebalances += 1
        self._rehand_orphans()
        self._flush_deferred()

    def _owner_now(self, sequence: int) -> Optional[int]:
        q, cell = self._routing[sequence]
        if q > 0:
            return self.map.owner_of_subset(q)
        try:
            return self.map.owner_of_cell(cell, exclude=self.router.down)
        except ValueError:
            return None

    def _rehand_orphans(self) -> None:
        remaining: Dict[int, Set[int]] = {}
        for key in sorted(self._orphans):
            pending = self._pending_of.get(key, set())
            if not pending:
                continue
            owner = self._owner_now(key)
            if owner is None or owner in self._dead:
                remaining[key] = set(pending)
                continue
            # Receivers that got the data before the kill dedup and
            # re-ack, so the exactly-once ledger holds across re-hand.
            self._sender_shard[key] = owner
            self.transport.publish(key, self.homes[owner], sorted(pending))
            self.sstats.redelivered += len(pending)
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "sharding.redelivered",
                    help="in-flight deliveries re-handed by a new owner",
                ).inc(len(pending))
        self._orphans = remaining

    def _flush_deferred(self) -> None:
        now = self.simulator.now
        keep: List[Tuple[float, int, np.ndarray, Sequence[int], Dict]] = []
        for at, sequence, points, publishers, counters in self._deferred:
            if now - at > self.defer_ttl:
                self._finish(sequence, "expired")
                continue
            q, shard = self.router.resolve(points[sequence])
            if shard in self._dead:
                keep.append((at, sequence, points, publishers, counters))
                continue
            self._finish(sequence, "delivered")
            self._serve(sequence, q, shard, points, publishers, counters)
        self._deferred = keep

    # -- planned migrations ---------------------------------------------------

    def _begin_planned(self, planned: PlannedMigration) -> None:
        try:
            source = self.map.owner_of_subset(planned.q)
        except ValueError:
            return
        if (
            source == planned.dest
            or source in self._dead
            or planned.dest in self._dead
        ):
            return
        ticket = self.rebalancer.begin(planned.q, planned.dest)
        self.simulator.schedule_at(
            self.simulator.now + planned.copy_time,
            lambda t=ticket: self._complete_planned(t),
        )

    def _complete_planned(self, ticket: MigrationTicket) -> None:
        if ticket.phase is not MigrationPhase.COPYING:
            return  # recovery or a rebalance already resolved it
        if (
            ticket.dest in self._dead
            or self.map.owner_of_subset(ticket.q) != ticket.source
        ):
            # Destination died mid-copy, or a dead-shard rebalance
            # already moved the subset: the copy rolls back.
            self.rebalancer.abort(ticket)
            return
        self.rebalancer.cutover(ticket)
        self.rebalancer.finish(ticket)
        self._flush_deferred()

    # -- reporting -----------------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> ShardedReport:
        base = super().run(points, publishers, inter_arrival, arrival_times)
        leftover, self._deferred = self._deferred, []
        for _at, sequence, *_rest in leftover:
            self._finish(sequence, "expired")
        self.sstats.published = len(points)
        self.sstats.migrations_completed = self.rebalancer.completed
        self.sstats.migrations_aborted = self.rebalancer.aborted
        self.sstats.imbalance = self.map.imbalance()
        # Classify delivery misses: a target disconnected from every
        # live home by a killed transit node is an *explained* loss
        # (its only link died — see ShardedStats.stranded_misses); a
        # miss to a still-reachable target is a protocol bug.
        reachable: Set[int] = set()
        if base.missing:
            graph = self.broker.topology.graph.copy()
            graph.remove_nodes_from(
                self.homes[s] for s in self._dead if self.homes[s] in graph
            )
            for shard in range(self.map.num_shards):
                home = self.homes[shard]
                if shard not in self._dead and home in graph:
                    reachable |= nx.node_connected_component(graph, home)
        for _sequence, target, _reason in base.missing:
            if int(target) in reachable:
                self.sstats.unexplained_misses += 1
            else:
                self.sstats.stranded_misses += 1
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "sharding.imbalance",
                help="max/mean planned shard load",
            ).set(self.sstats.imbalance)
        # Determinism pin: each serviced event's shard-local match must
        # equal the unsharded broker's, digest-for-digest.
        points = np.asarray(points, dtype=np.float64)
        items: List[List[object]] = []
        parity = True
        for sequence in sorted(self._records):
            gids, subscribers, q, _shard = self._records[sequence]
            event = Event.create(sequence, 0, points[sequence])
            reference = self.broker.engine.match(event)
            if list(gids) != sorted(
                int(i) for i in reference.subscription_ids
            ) or tuple(subscribers) != tuple(reference.subscribers):
                parity = False
            items.append(
                [
                    int(sequence),
                    [int(i) for i in gids],
                    [int(n) for n in subscribers],
                    int(q),
                ]
            )
        self.sstats.match_parity = parity
        self.sstats.match_digest = _digest_items(items)
        return ShardedReport(
            **vars(base),
            sharded=self.sstats,
            num_shards=self.map.num_shards,
            final_epoch=self.map.epoch,
            routed_per_shard=dict(self.routed_per_shard),
        )

    @property
    def serviced_sequences(self) -> List[int]:
        """Sequences that reached a shard's matcher (digest domain)."""
        return sorted(self._records)


def build_sharded_plan(
    topology,
    shard_map: ShardMap,
    seed: int = 2003,
    loss: float = 0.05,
    duplicate: float = 0.0,
    delay: float = 0.0,
    scenario: str = "clean",
    horizon: float = 500.0,
    migrations: int = 2,
    copy_time: float = 20.0,
) -> Tuple[FaultPlan, List[int], List[PlannedMigration]]:
    """A plan, shard placement, and migration schedule for one scenario.

    Shard homes are the first K transit nodes (node order — the same
    default the harness applies).  ``scenario``:

    - ``"clean"`` — link loss only, plus ``migrations`` live subset
      migrations spread over the horizon (heaviest subsets first, each
      to the initially least-loaded other shard).
    - ``"shard-kill"`` — the most-loaded shard's home is permanently
      killed at 40% of the horizon; the survivors must rebalance.
    - ``"migration-crash"`` — one migration begins at 35% of the
      horizon and its *source* home is killed halfway through the
      copy: the journaled cutover must roll forward onto the
      destination while the rest of the dead shard rebalances.

    Returns ``(plan, homes, planned_migrations)``.
    """
    if scenario not in ("clean", "shard-kill", "migration-crash"):
        raise ValueError(
            "scenario must be 'clean', 'shard-kill' or 'migration-crash' "
            f"(got {scenario!r})"
        )
    transit = sorted(int(n) for n in topology.all_transit_nodes())
    num_shards = shard_map.num_shards
    if num_shards > len(transit):
        raise ValueError(
            f"cannot place {num_shards} shards on a topology with "
            f"{len(transit)} transit nodes"
        )
    homes = transit[:num_shards]
    loads = shard_map.shard_loads()
    busiest = max(range(num_shards), key=lambda s: (loads[s], -s))
    kills: Tuple[BrokerKill, ...] = ()
    planned: List[PlannedMigration] = []
    if scenario == "clean":
        ranked = sorted(
            (
                q
                for shard in range(num_shards)
                for q in shard_map.subsets_of(shard)
            ),
            key=lambda q: (-shard_map.load_of_subset(q), q),
        )
        for q in ranked:
            if len(planned) >= migrations:
                break
            owner = shard_map.owner_of_subset(q)
            others = [s for s in range(num_shards) if s != owner]
            if not others:
                break
            dest = min(others, key=lambda s: (loads[s], s))
            at = horizon * (len(planned) + 1) / (migrations + 1)
            planned.append(
                PlannedMigration(at=at, q=q, dest=dest, copy_time=copy_time)
            )
    elif scenario == "shard-kill":
        kills = (BrokerKill(node=homes[busiest], at=0.4 * horizon),)
    else:  # migration-crash
        subsets = shard_map.subsets_of(busiest)
        q = max(subsets, key=lambda s: (shard_map.load_of_subset(s), -s))
        others = [s for s in range(num_shards) if s != busiest]
        dest = min(others, key=lambda s: (loads[s], s))
        at = 0.35 * horizon
        planned = [
            PlannedMigration(at=at, q=q, dest=dest, copy_time=copy_time)
        ]
        kills = (
            BrokerKill(node=homes[busiest], at=at + copy_time / 2.0),
        )
    plan = FaultPlan(
        seed=seed,
        default_loss=loss,
        default_duplicate=duplicate,
        default_delay=delay,
        broker_kills=kills,
    )
    return plan, homes, planned
