"""Fault injection, reliable delivery, and chaos verification.

The paper's model (and the seed reproduction) assumes a perfectly
reliable substrate.  This package supplies the other half of the
story, in three layers:

- :mod:`repro.faults.plan` — a deterministic, seedable fault injector:
  per-link loss/duplication/delay, link outage windows, broker
  crash/restart windows, pluggable into the packet simulator and
  queryable as a failure detector;
- :mod:`repro.faults.reliable` — per-message acks, exponential-backoff
  retries with deterministic jitter, bounded retry budgets, and
  per-subscriber dedup, turning at-least-once retransmission into
  exactly-once application delivery;
- :mod:`repro.faults.verifier` — the chaos harness: replay a workload
  under a fault plan and verify (or precisely refute) the delivery
  guarantee, exposed as the ``repro chaos`` CLI subcommand;
- :mod:`repro.faults.overload` — the saturation harness: the same
  replay behind the full overload-protection stack
  (:mod:`repro.overload`), with strict shed/expire accounting and
  per-subscriber circuit breakers (``repro chaos --overload``);
- :mod:`repro.faults.crash_recovery` — the durability harness: the
  chaos replay with a home broker journaling to a write-ahead log
  (:mod:`repro.durability`), crash windows that wipe volatile state
  and may corrupt the log, and deterministic snapshot + WAL-replay
  recovery verified against the delivery ledger
  (``repro chaos --crash-recovery``);
- :mod:`repro.faults.failover` — the replication harness: the home
  broker becomes a :mod:`repro.replication` group shipping its WAL to
  ranked standbys, permanent broker kills and partitions force
  epoch-fenced takeovers, and a per-event outcome ledger proves
  ``delivered + shed + expired == published`` with zero duplicates
  across failovers (``repro chaos --failover``);
- :mod:`repro.faults.sharded` — the scale-out harness: the workload
  routed across K shard brokers (:mod:`repro.sharding`) with live
  migrations, permanent shard kills, mid-migration crashes and
  partition-stranded shards, proving the same outcome ledger *and*
  per-event match parity with a single unsharded broker
  (``repro chaos --sharded``);
- :mod:`repro.faults.cluster` — the full-stack harness: every shard
  becomes a :mod:`repro.cluster` replicated group with a cluster-wide
  membership detector, and simultaneous shard kills, partitions,
  mid-copy migration crashes and standby WAL corruption are answered
  by fenced standby takeovers instead of stranding, under the same
  ledger and unsharded-digest parity (``repro chaos --cluster``);
- :mod:`repro.faults.sessions` — the subscriber-side harness: durable
  sessions (:mod:`repro.sessions`) at deterministic stub nodes abused
  by scripted crash / flap / slow-consumer / poison scenarios, with a
  per-(event, session) ledger proving ``delivered + deadlettered +
  expired == matched`` with zero duplicates across reconnects and
  catch-up replay (``repro chaos --sessions``).
"""

from .cluster import (
    ClusterReport,
    ClusterStats,
    FullStackChaosSimulation,
    StandbyWALCorruption,
    build_cluster_plan,
)

from .crash_recovery import (
    CrashRecoveryReport,
    CrashRecoverySimulation,
    DurabilityStats,
    build_crash_recovery_plan,
)
from .failover import (
    FailoverChaosSimulation,
    FailoverReport,
    FailoverStats,
    build_failover_plan,
)
from .overload import OverloadChaosSimulation, OverloadReport
from .plan import (
    BrokerCrash,
    BrokerKill,
    FaultInjector,
    FaultPlan,
    FaultState,
    FaultStats,
    LinkFault,
    LinkOutage,
    TransmissionFate,
    WalCorruption,
)
from .reliable import (
    FailureReason,
    ReliabilityStats,
    ReliableTransport,
    RetryConfig,
)
from .sessions import (
    SESSION_SCENARIOS,
    SessionChaosSimulation,
    SessionReport,
    build_session_chaos,
    select_session_nodes,
)
from .sharded import (
    PlannedMigration,
    ShardedChaosSimulation,
    ShardedReport,
    ShardedStats,
    build_sharded_plan,
    unsharded_match_digest,
)
from .verifier import (
    ChaosReport,
    ChaosSimulation,
    DeliveryLedger,
    build_burst_storm_times,
    build_chaos_plan,
    build_chaos_testbed,
    build_resubscribe_storm,
    build_slow_subscriber_plan,
)

__all__ = [
    "ClusterReport",
    "ClusterStats",
    "FullStackChaosSimulation",
    "StandbyWALCorruption",
    "build_cluster_plan",
    "CrashRecoveryReport",
    "CrashRecoverySimulation",
    "DurabilityStats",
    "build_crash_recovery_plan",
    "FailoverChaosSimulation",
    "FailoverReport",
    "FailoverStats",
    "build_failover_plan",
    "OverloadChaosSimulation",
    "OverloadReport",
    "BrokerCrash",
    "BrokerKill",
    "WalCorruption",
    "FaultInjector",
    "FaultPlan",
    "FaultState",
    "FaultStats",
    "LinkFault",
    "LinkOutage",
    "TransmissionFate",
    "FailureReason",
    "ReliabilityStats",
    "ReliableTransport",
    "RetryConfig",
    "SESSION_SCENARIOS",
    "SessionChaosSimulation",
    "SessionReport",
    "build_session_chaos",
    "select_session_nodes",
    "PlannedMigration",
    "ShardedChaosSimulation",
    "ShardedReport",
    "ShardedStats",
    "build_sharded_plan",
    "unsharded_match_digest",
    "ChaosReport",
    "ChaosSimulation",
    "DeliveryLedger",
    "build_burst_storm_times",
    "build_chaos_plan",
    "build_chaos_testbed",
    "build_resubscribe_storm",
    "build_slow_subscriber_plan",
]
