"""Full-stack chaos: replicated shards under combined failures.

:class:`FullStackChaosSimulation` is the capstone harness: it runs the
sharded workload of :class:`~repro.faults.sharded.
ShardedChaosSimulation` with every shard upgraded to a
:class:`~repro.cluster.shard.ReplicatedShard` (primary + ranked
standby set, log shipping, epoch fencing) and a cluster-wide
:class:`~repro.cluster.membership.Membership` detector deciding when a
shard home is gone.  Where PR 6's harness answered a shard kill with
cascade stranding — ring ``exclude()`` plus survivor rebalancing —
this one answers with a **fenced standby takeover**: replay the
shipped WAL via :func:`~repro.cluster.journal.recover_shard`, re-home
the sub-broker, reconcile its entry set against the authoritative
scatter, re-hand unacked in-flight deliveries, and stamp everything
with a cluster epoch so the deposed primary's writes bounce.  Ring
exclusion survives only as the last resort when a shard loses its
primary *and* every standby.

The adversary combines, in one run: permanent shard-home kills,
network partitions (the deposed primary keeps running and must be
fenced, not killed), mid-copy migration crashes, and torn-tail WAL
corruption on a standby that is later promoted.  The invariants are
unchanged and absolute: ``delivered + shed + expired == published``
with zero duplicates, zero *unexplained* misses (a miss is explained
only by physical disconnection from every live home), and per-event
:class:`~repro.core.matching.MatchResult` digests byte-identical to an
unsharded broker that never failed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..cluster.membership import MemberState, Membership, MembershipConfig
from ..cluster.shard import ReplicatedShard
from ..overload.breaker import BreakerBoard, BreakerConfig
from ..replication.epoch import EpochDirectory
from ..replication.shipping import ShippingConfig, ShippingStats
from ..sharding.map import ShardMap
from ..telemetry.base import Telemetry
from .plan import BrokerKill, FaultPlan, LinkOutage
from .reliable import RetryConfig
from .sharded import (
    PlannedMigration,
    ShardedChaosSimulation,
    ShardedReport,
)

__all__ = [
    "StandbyWALCorruption",
    "ClusterStats",
    "ClusterReport",
    "FullStackChaosSimulation",
    "build_cluster_plan",
]

#: The four combined-chaos scenarios the harness knows how to build.
CLUSTER_SCENARIOS = ("kill", "partition", "double-kill", "migrate-under-kill")


@dataclass(frozen=True)
class StandbyWALCorruption:
    """Tear ``nbytes`` off the tail of one shard's first live standby
    WAL at ``at`` — the standby must scrub, resync, and still be able
    to take over later."""

    at: float
    shard: int
    nbytes: int = 7


@dataclass
class ClusterStats:
    """What the membership + failover machinery did during one run."""

    #: Fenced standby takeovers completed.
    takeovers: int = 0
    #: Recovery digest per takeover (the determinism witness).
    takeover_digests: List[str] = field(default_factory=list)
    #: Silence-to-takeover latency per takeover (simulated time).
    takeover_durations: List[float] = field(default_factory=list)
    #: Times the last-resort ring-exclusion path ran (no standby left).
    ring_exclusions: int = 0
    #: Publications that arrived addressed to a deposed primary.
    failover_reroutes: int = 0
    #: Of those, rejected by a live-but-fenced old home's epoch check.
    stale_publish_rejections: int = 0
    #: Post-takeover write probes admitted at the new primary.
    probe_admissions: int = 0
    #: Post-takeover write probes fenced at the old primary.
    probe_rejections: int = 0
    #: Entries added/withdrawn reconciling recovery vs the scatter.
    entries_reconciled: int = 0
    #: (event, target) deliveries re-handed by a fresh primary.
    redelivered_after_takeover: int = 0
    #: Torn-tail corruptions injected on standby WALs.
    wal_corruptions: int = 0
    #: Standby WALs scrubbed (repair + stream invalidation + resync).
    wal_scrubs: int = 0
    #: Stale-epoch replication messages rejected (zombie fencing).
    stale_rejections: int = 0
    #: Writes rejected by per-node epoch fencing.
    fenced_writes: int = 0
    #: Replication heartbeats sent by believing-primaries.
    heartbeats: int = 0
    #: Final membership view epoch (one counter over all changes).
    cluster_epoch: int = 0
    members_alive: int = 0
    members_suspect: int = 0
    members_dead: int = 0
    suspicions: int = 0
    recoveries: int = 0
    confirmed_deaths: int = 0
    #: Heartbeats from nodes the view already confirmed dead.
    stale_heartbeats: int = 0


@dataclass
class ClusterReport(ShardedReport):
    """A sharded chaos report plus the cluster/replication ledger."""

    cluster: ClusterStats = field(default_factory=ClusterStats)
    shipping: ShippingStats = field(default_factory=ShippingStats)

    def summary_rows(self) -> List[Tuple[str, object]]:
        rows = super().summary_rows()
        c = self.cluster
        durations = (
            " ".join(f"{d:.1f}" for d in c.takeover_durations) or "-"
        )
        digests = (
            " ".join(d[:8] for d in c.takeover_digests) or "-"
        )
        rows.extend(
            [
                ("cluster epoch", c.cluster_epoch),
                (
                    "members alive/suspect/dead",
                    f"{c.members_alive}/{c.members_suspect}/{c.members_dead}",
                ),
                ("suspicions", c.suspicions),
                ("suspect recoveries", c.recoveries),
                ("confirmed deaths", c.confirmed_deaths),
                ("stale membership heartbeats", c.stale_heartbeats),
                ("takeovers", c.takeovers),
                ("takeover durations", durations),
                ("takeover digests", digests),
                ("ring-exclusion fallbacks", c.ring_exclusions),
                ("publishes addressed to deposed primary", c.failover_reroutes),
                ("stale publishes rejected", c.stale_publish_rejections),
                (
                    "write probes admitted/fenced",
                    f"{c.probe_admissions}/{c.probe_rejections}",
                ),
                ("entries reconciled at takeover", c.entries_reconciled),
                ("re-handed after takeover", c.redelivered_after_takeover),
                (
                    "standby WAL corruptions/scrubs",
                    f"{c.wal_corruptions}/{c.wal_scrubs}",
                ),
                ("stale replication messages rejected", c.stale_rejections),
                ("epoch-fenced writes", c.fenced_writes),
                ("replication heartbeats", c.heartbeats),
                ("shipped batches", self.shipping.batches),
                ("shipped ops", self.shipping.ops_shipped),
                ("shipping acks", self.shipping.acks),
                ("anti-entropy catch-ups", self.shipping.catchups),
                ("shipping backpressure skips", self.shipping.backpressure_skips),
            ]
        )
        return rows


class FullStackChaosSimulation(ShardedChaosSimulation):
    """Sharded chaos where every shard has a replicated standby set.

    ``standby_map`` maps shard id → ranked standby nodes (see
    :func:`build_cluster_plan`).  A cluster tick loop (cadence
    ``membership.heartbeat_interval``) feeds the membership detector
    from the fault injector's ground truth — a node is *heard* iff it
    is up and inside the majority network component, a deterministic
    stand-in for gossip — drives per-shard replication heartbeats and
    shipping flushes, and reacts to confirmed deaths: a dead standby
    just leaves the candidate list, a dead acting primary triggers
    :meth:`_fail_over`.
    """

    def __init__(
        self,
        broker,
        plan: FaultPlan,
        standby_map: Dict[int, Sequence[int]],
        num_shards: int = 4,
        shard_homes: Optional[Sequence[int]] = None,
        migrations: Sequence[PlannedMigration] = (),
        corruptions: Sequence[StandbyWALCorruption] = (),
        membership: Optional[MembershipConfig] = None,
        shipping: Optional[ShippingConfig] = None,
        checkpoint_every: int = 64,
        settle: float = 250.0,
        route_delay: float = 0.5,
        defer_capacity: int = 256,
        defer_ttl: float = 250.0,
        rebalance_delay: float = 30.0,
        virtual_nodes: int = 64,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        super().__init__(
            broker,
            plan,
            num_shards=num_shards,
            shard_homes=shard_homes,
            migrations=migrations,
            route_delay=route_delay,
            defer_capacity=defer_capacity,
            defer_ttl=defer_ttl,
            rebalance_delay=rebalance_delay,
            virtual_nodes=virtual_nodes,
            retry=retry,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            hop_retries=hop_retries,
            telemetry=telemetry,
        )
        missing = [k for k in range(num_shards) if not standby_map.get(k)]
        if missing:
            raise ValueError(
                f"FullStackChaosSimulation: every shard needs at least one "
                f"standby (got none for shards {missing})"
            )
        self.settle = float(settle)
        self.corruptions = tuple(corruptions)
        self.cstats = ClusterStats()
        #: One cluster-wide directory: takeovers chain old → new home.
        self.directory = EpochDirectory()
        self.transport.directory = self.directory
        self.shipping_breakers = BreakerBoard(
            BreakerConfig(failure_threshold=3, reset_timeout=120.0)
        )
        alive = lambda node, time: not self.injector.node_down(node, time)
        self.replicated: Dict[int, ReplicatedShard] = {}
        for k in range(num_shards):
            self.replicated[k] = ReplicatedShard(
                self.router.shards[k],
                self.homes[k],
                [int(s) for s in standby_map[k]],
                self.simulator,
                send=self._ship,
                shipping=shipping,
                alive=alive,
                checkpoint_every=checkpoint_every,
                breakers=self.shipping_breakers,
                telemetry=telemetry,
            )
            # Bootstrap: the scatter that populated the shard predates
            # the journal taps, so seed every standby with a snapshot.
            self.replicated[k].journal.checkpoint()
        nodes = sorted(
            {int(h) for h in self.homes.values()}
            | {int(s) for k in range(num_shards) for s in standby_map[k]}
        )
        self.membership = Membership(
            nodes, membership or MembershipConfig(), now=0.0
        )

    # -- replication wire ----------------------------------------------------

    def _ship(self, source: int, target: int, payload: Dict) -> None:
        """Replication messages ride the same faulty packet network as
        publications — loss, outages and kills starve a zombie primary
        of exactly the acks that would have told it the truth."""
        self.network.send_unicast(
            source,
            target,
            lambda node, time, p=payload: self._deliver_replication(
                node, p, time
            ),
        )

    def _deliver_replication(
        self, node: int, payload: Dict, time: float
    ) -> None:
        shard = self.replicated.get(int(payload.get("shard", -1)))
        if shard is not None:
            shard.deliver(node, payload, time)

    # -- scheduling ----------------------------------------------------------

    def _arm(self, arrival_times: Sequence[float]) -> None:
        for kill in self.plan.broker_kills:
            self.simulator.schedule_at(
                float(kill.at),
                lambda n=int(kill.node): self._node_killed(n),
            )
        for planned in self.planned:
            self.simulator.schedule_at(
                float(planned.at),
                lambda p=planned: self._begin_planned(p),
            )
        for corruption in self.corruptions:
            self.simulator.schedule_at(
                float(corruption.at),
                lambda c=corruption: self._corrupt_standby(c),
            )
        end = (
            float(arrival_times[-1]) if len(arrival_times) else 0.0
        ) + self.settle
        interval = self.membership.config.heartbeat_interval
        t = interval
        while t <= end:
            self.simulator.schedule_at(t, self._cluster_tick)
            t += interval

    # -- the cluster clock ---------------------------------------------------

    def _majority_component(self, state) -> Set[int]:
        """Largest surviving network component, weighted by how many
        cluster members it holds (ties: size, then lowest node)."""
        graph = self.broker.topology.graph.copy()
        graph.remove_nodes_from(
            [n for n in list(graph.nodes) if state.node_dead(n)]
        )
        graph.remove_edges_from(
            [(u, v) for u, v in list(graph.edges) if state.link_dead(u, v)]
        )
        components = list(nx.connected_components(graph))
        if not components:
            return set()
        members = set(self.membership.nodes)
        return set(
            max(
                components,
                key=lambda c: (len(c & members), len(c), -min(c)),
            )
        )

    def _cluster_tick(self) -> None:
        now = self.simulator.now
        state = self.injector.state_at(now)
        component = None if state.clear else self._majority_component(state)
        # Logical gossip: a member is heard iff it is up and can reach
        # the majority of the cluster.  A partitioned-away node goes
        # silent here while still running (and shipping) — exactly the
        # zombie the epoch fencing must catch later.
        for node in self.membership.nodes:
            up = not self.injector.node_down(node, now)
            if up and (component is None or node in component):
                self.membership.heard(node, now)
        for shard in self.replicated.values():
            shard.tick(now)
        for node, mstate in self.membership.tick(now):
            if mstate is MemberState.DEAD:
                self._member_dead(node, now)
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "cluster.epoch", help="membership view epoch"
            ).set(self.membership.epoch)
            for k, shard in sorted(self.replicated.items()):
                for standby in shard.ranked:
                    if standby in shard.replicas:
                        self.telemetry.gauge(
                            "cluster.shard_lag",
                            help="ops a standby is behind its shard primary",
                            shard=k,
                            standby=standby,
                        ).set(shard.lag_of(standby))

    def _member_dead(self, node: int, now: float) -> None:
        """The view confirmed ``node`` dead; react per shard.

        Only a ground-truth kill marks the replica role DEAD — a node
        confirmed dead by silence may be a partitioned zombie that
        must keep believing it is primary until fencing corrects it.
        """
        killed = self.injector.node_killed(node, now)
        for k in sorted(self.replicated):
            shard = self.replicated[k]
            if node not in shard.members:
                continue
            if killed:
                shard.mark_dead(node)
            if shard.primary == int(node) and k not in self._dead:
                self._fail_over(k, now)

    # -- failover ------------------------------------------------------------

    def _fail_over(self, shard_id: int, now: float) -> None:
        shard = self.replicated[shard_id]
        state = self.injector.state_at(now)
        component = None if state.clear else self._majority_component(state)
        eligible = (
            None if component is None else (lambda node: node in component)
        )
        old = shard.primary
        with self.telemetry.span(
            "cluster.takeover", shard=shard_id, old_home=old
        ):
            epoch = self.membership.advance_epoch()
            result = shard.takeover(
                now, epoch, directory=self.directory, eligible=eligible
            )
            if result is None:
                # Primary and every standby are gone: the pre-cluster
                # stranding path (ring exclusion + rebalance) is all
                # that is left.
                self.cstats.ring_exclusions += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "cluster.ring_exclusions",
                        help="shards abandoned to ring exclusion",
                    ).inc()
                self._kill_shard(shard_id)
                return
            self.homes[shard_id] = result.new_home
            self.home_to_shard = {
                home: s for s, home in self.homes.items()
            }
            duration = now - self.membership.last_heard(old)
            self.cstats.takeovers += 1
            self.cstats.takeover_digests.append(result.digest)
            self.cstats.takeover_durations.append(duration)
            # The shipped log can be a mutation or two behind the
            # authoritative scatter (async tail lost with the primary);
            # reconcile against the global table, journaling the fixes.
            added = 0
            for subscription in self.broker.table:
                if shard_id in self.router.shards_of_rectangle(
                    subscription.rectangle
                ):
                    if self.router.shards[shard_id].register(subscription):
                        added += 1
            stale = self.router.refresh_shard(shard_id)
            self.cstats.entries_reconciled += added + stale
            # Split-brain probes: the fresh primary admits writes at
            # the new epoch, the deposed one is fenced.
            if shard.write_allowed(result.new_home):
                self.cstats.probe_admissions += 1
            if not shard.write_allowed(old):
                self.cstats.probe_rejections += 1
            # Re-hand in-flight deliveries whose sender died with the
            # old home; receiver dedup keeps the wire exactly-once.
            for key in sorted(self._pending_of):
                pending = self._pending_of[key]
                if not pending or self._sender_shard.get(key) != shard_id:
                    continue
                self.transport.publish(
                    key, result.new_home, sorted(pending)
                )
                self.cstats.redelivered_after_takeover += len(pending)
                self.sstats.redelivered += len(pending)
            if self.telemetry.enabled:
                self.telemetry.histogram(
                    "cluster.takeover_duration",
                    help="silence-to-takeover latency",
                ).observe(duration)
                self.telemetry.event(
                    "takeover",
                    shard=shard_id,
                    old_home=old,
                    new_home=result.new_home,
                    epoch=result.epoch,
                )
        self._flush_deferred()

    # -- kills & corruption --------------------------------------------------

    def _node_killed(self, node: int) -> None:
        """Ground truth at the instant of a fail-stop kill.

        Membership still detects the death through hysteresis; here we
        only do what physics does: mark replica roles dead and wipe
        the node's volatile sender-side retry state.
        """
        node = int(node)
        if self.telemetry.enabled:
            self.telemetry.event("node-kill", node=node)
        for k in sorted(self.replicated):
            shard = self.replicated[k]
            if node in shard.members:
                shard.mark_dead(node)
        now = self.simulator.now
        wiped = self.transport.wipe_pending()
        self.sstats.wiped_inflight += sum(
            1
            for key, _target in wiped
            if self.homes.get(self._sender_shard.get(key, -1)) == node
        )
        # Re-arm in-flight deliveries whose owning shard's home is
        # still up; the dead home's keys wait for its takeover.
        for key in sorted(self._pending_of):
            pending = self._pending_of[key]
            if not pending:
                continue
            owner = self._sender_shard.get(key)
            if owner is None or owner in self._dead:
                continue
            home = self.homes[owner]
            if self.injector.node_down(home, now):
                continue
            self.transport.publish(key, home, sorted(pending))

    def _corrupt_standby(self, corruption: StandbyWALCorruption) -> None:
        """Tear the first live standby's WAL tail, then scrub it.

        The scrub (scan + repair + stream invalidation) models the
        standby noticing the damage on its own: its next batch draws a
        ``resync`` and an anti-entropy catch-up re-bases it, so it can
        still be promoted later.
        """
        rshard = self.replicated.get(int(corruption.shard))
        if rshard is None:
            return
        now = self.simulator.now
        for standby in rshard.ranked:
            replica = rshard.replicas.get(standby)
            if replica is None or self.injector.node_down(standby, now):
                continue
            wal = rshard.wals[standby]
            try:
                wal.tear_tail(int(corruption.nbytes))
            except ValueError:
                continue  # log too short to tear; try the next standby
            self.cstats.wal_corruptions += 1
            scan = wal.scan()
            if not scan.clean:
                wal.repair()
            replica.invalidate_stream()
            self.cstats.wal_scrubs += 1
            if self.telemetry.enabled:
                self.telemetry.event(
                    "wal-corruption",
                    shard=int(corruption.shard),
                    standby=standby,
                )
            return

    # -- routing under failover ----------------------------------------------

    def _home_unserviceable(self, shard: int, now: float) -> bool:
        """Whether the shard's acting home cannot serve right now —
        killed, crashed, or cut off on every incident link."""
        home = self.homes.get(shard)
        if home is None:
            return True
        if self.injector.node_down(home, now):
            return True
        state = self.injector.state_at(now)
        if state.clear:
            return False
        neighbors = list(self.broker.topology.graph.neighbors(home))
        return bool(neighbors) and all(
            state.link_dead(home, n) for n in neighbors
        )

    def _publish_event(
        self,
        sequence: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        q, shard = self.router.resolve(points[sequence])
        home = self.homes.get(shard)
        rshard = self.replicated.get(shard)
        cluster_epoch = rshard.epoch if rshard is not None else 0
        self.simulator.schedule_at(
            self.simulator.now + self.route_delay,
            lambda: self._arrive_cluster(
                sequence,
                q,
                shard,
                home,
                cluster_epoch,
                points,
                publishers,
                counters,
            ),
        )

    def _arrive_cluster(
        self,
        sequence: int,
        q: int,
        shard: int,
        home: Optional[int],
        cluster_epoch: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        rshard = self.replicated.get(shard)
        if (
            rshard is not None
            and shard not in self._dead
            and (
                self.homes.get(shard) != home
                or rshard.epoch != cluster_epoch
            )
        ):
            # The publication addressed a primary that was deposed
            # while it was in flight; re-resolution retries it against
            # the new one.  A live old home actively rejects it first
            # (its epoch check), which is what the probe counts.
            self.cstats.failover_reroutes += 1
            if home is not None and not rshard.write_allowed(home):
                self.cstats.stale_publish_rejections += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "cluster.failover_reroutes",
                    help="publishes re-resolved after a takeover",
                ).inc()
        self._arrive(
            sequence, q, shard, self.map.epoch, points, publishers, counters
        )

    def _arrive(
        self,
        sequence: int,
        q: int,
        shard: int,
        epoch: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        # A shard whose acting home is down-but-not-failed-over yet (the
        # membership detection window) defers instead of serving from a
        # dead node; the post-takeover flush drains it.
        current_q, current = self.router.resolve(points[sequence])
        if (
            current == shard
            and shard not in self._dead
            and self._home_unserviceable(shard, self.simulator.now)
        ):
            if len(self._deferred) >= self.defer_capacity:
                self._finish(sequence, "shed")
                return
            self._deferred.append(
                (self.simulator.now, sequence, points, publishers, counters)
            )
            self.sstats.deferred_events += 1
            return
        super()._arrive(
            sequence, q, shard, epoch, points, publishers, counters
        )

    def _flush_deferred(self) -> None:
        now = self.simulator.now
        keep: List[Tuple[float, int, np.ndarray, Sequence[int], Dict]] = []
        for at, sequence, points, publishers, counters in self._deferred:
            if now - at > self.defer_ttl:
                self._finish(sequence, "expired")
                continue
            q, shard = self.router.resolve(points[sequence])
            if shard in self._dead or self._home_unserviceable(shard, now):
                keep.append((at, sequence, points, publishers, counters))
                continue
            self._finish(sequence, "delivered")
            self._serve(sequence, q, shard, points, publishers, counters)
        self._deferred = keep

    # -- durability taps -----------------------------------------------------

    def _record_intent(
        self,
        sequence: int,
        publisher: int,
        recipients: Sequence[int],
        method: str,
        group: int,
    ) -> None:
        record = self._records.get(sequence)
        if record is None:
            return
        shard = record[3]
        rshard = self.replicated.get(shard)
        if rshard is None or shard in self._dead:
            return
        if self.injector.node_down(
            self.homes.get(shard, -1), self.simulator.now
        ):
            return
        rshard.journal.log_publish(
            sequence, publisher, recipients, method=method, group=group
        )

    def _on_ack(self, target: int, key: int, time: float) -> None:
        super()._on_ack(target, key, time)
        shard = self._sender_shard.get(key)
        if shard is None or shard in self._dead:
            return
        rshard = self.replicated.get(shard)
        if rshard is None:
            return
        if self.injector.node_down(self.homes.get(shard, -1), time):
            return
        rshard.journal.log_delivery(key, target)

    # -- reporting -----------------------------------------------------------

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> ClusterReport:
        base = super().run(points, publishers, inter_arrival, arrival_times)
        # The base classifier only knows dead *shards*; with failover a
        # killed node usually is not any shard's current home, so
        # reclassify misses against ground-truth killed nodes too.
        self._reclassify_misses(base)
        shipping = ShippingStats()
        for k in sorted(self.replicated):
            shard = self.replicated[k]
            s = shard.shipping_stats()
            shipping.batches += s.batches
            shipping.ops_shipped += s.ops_shipped
            shipping.acks += s.acks
            shipping.catchups += s.catchups
            shipping.backpressure_skips += s.backpressure_skips
            shipping.breaker_failures += s.breaker_failures
            shipping.trimmed_ops += s.trimmed_ops
            stats = shard.finalize_stats()
            self.cstats.heartbeats += stats.heartbeats_sent
            self.cstats.stale_rejections += stats.stale_rejections
            self.cstats.fenced_writes += stats.fenced_writes
        view = self.membership.view()
        self.cstats.cluster_epoch = self.membership.epoch
        self.cstats.members_alive = len(view.alive)
        self.cstats.members_suspect = len(view.suspect)
        self.cstats.members_dead = len(view.dead)
        self.cstats.suspicions = self.membership.suspicions
        self.cstats.recoveries = self.membership.recoveries
        self.cstats.confirmed_deaths = self.membership.confirmed_deaths
        self.cstats.stale_heartbeats = self.membership.stale_heartbeats
        if self.telemetry.enabled:
            self.telemetry.gauge(
                "cluster.epoch", help="membership view epoch"
            ).set(self.membership.epoch)
        return ClusterReport(
            **vars(base), cluster=self.cstats, shipping=shipping
        )

    def _reclassify_misses(self, base) -> None:
        """Re-split misses into stranded vs unexplained with killed
        nodes removed from the reachability graph (a stub whose only
        gateway transit node was killed is physically unreachable from
        any live home — an explained loss, not a protocol bug)."""
        self.sstats.stranded_misses = 0
        self.sstats.unexplained_misses = 0
        if not base.missing:
            return
        now = self.simulator.now
        graph = self.broker.topology.graph.copy()
        graph.remove_nodes_from(
            [n for n in list(graph.nodes) if self.injector.node_killed(n, now)]
        )
        graph.remove_nodes_from(
            [
                self.homes[s]
                for s in self._dead
                if self.homes[s] in graph
            ]
        )
        reachable: Set[int] = set()
        for shard in range(self.map.num_shards):
            home = self.homes[shard]
            if shard not in self._dead and home in graph:
                reachable |= nx.node_connected_component(graph, home)
        for _sequence, target, _reason in base.missing:
            if int(target) in reachable:
                self.sstats.unexplained_misses += 1
            else:
                self.sstats.stranded_misses += 1


def build_cluster_plan(
    topology,
    shard_map: ShardMap,
    seed: int = 2003,
    loss: float = 0.05,
    duplicate: float = 0.0,
    delay: float = 0.0,
    scenario: str = "kill",
    horizon: float = 300.0,
    standby_count: int = 2,
    copy_time: float = 20.0,
) -> Tuple[
    FaultPlan,
    List[int],
    Dict[int, List[int]],
    List[PlannedMigration],
    Tuple[StandbyWALCorruption, ...],
]:
    """A combined-chaos plan + placement for one cluster scenario.

    Shard homes are the first K transit nodes; each shard's standbys
    are its home's topology-ranked replica candidates
    (:meth:`~repro.network.topology.Topology.replica_candidates`),
    preferring transit nodes that host no shard home.  Every scenario
    additionally tears the tail of the target shard's first standby
    WAL at 25% of the horizon — the promoted standby must have scrubbed
    and caught back up by the time it is needed.  ``scenario``:

    - ``"kill"`` — the busiest shard's home is permanently killed at
      40% of the horizon; its first standby takes over.
    - ``"partition"`` — every incident link of the busiest shard's
      home is dead during ``[0.35, 0.7)`` of the horizon; the cluster
      confirms it dead and fails over, and the *still-running* old
      primary must be fenced when the partition heals.
    - ``"double-kill"`` — the two busiest shards' homes are killed at
      40% and 55% of the horizon (two independent takeovers).
    - ``"migrate-under-kill"`` — the busiest shard's heaviest subset
      starts migrating at 35% of the horizon and the *source* home is
      killed halfway through the copy: the journaled cutover completes
      onto the destination while the standby takeover re-homes what
      remains.

    Returns ``(plan, homes, standby_map, planned_migrations,
    corruptions)``.
    """
    if scenario not in CLUSTER_SCENARIOS:
        raise ValueError(
            f"scenario must be one of {', '.join(CLUSTER_SCENARIOS)} "
            f"(got {scenario!r})"
        )
    if standby_count < 1:
        raise ValueError(
            f"standby_count must be >= 1 (got {standby_count})"
        )
    transit = sorted(int(n) for n in topology.all_transit_nodes())
    num_shards = shard_map.num_shards
    if num_shards > len(transit):
        raise ValueError(
            f"cannot place {num_shards} shards on a topology with "
            f"{len(transit)} transit nodes"
        )
    if len(transit) < 2:
        raise ValueError(
            "a replicated cluster needs at least two transit nodes "
            f"(got {len(transit)})"
        )
    homes = transit[:num_shards]
    home_set = set(homes)
    standby_map: Dict[int, List[int]] = {}
    for k, home in enumerate(homes):
        ranked = topology.replica_candidates(home, len(transit) - 1)
        preferred = [n for n in ranked if n not in home_set]
        fallback = [n for n in ranked if n in home_set]
        if preferred:
            # Rotate by shard id so co-ranked shards spread their
            # first-choice standby instead of all promoting onto the
            # same node after a correlated failure.
            shift = k % len(preferred)
            preferred = preferred[shift:] + preferred[:shift]
        standby_map[k] = (preferred + fallback)[:standby_count]
    loads = shard_map.shard_loads()
    busiest = max(range(num_shards), key=lambda s: (loads[s], -s))
    kills: Tuple[BrokerKill, ...] = ()
    outages: Tuple[LinkOutage, ...] = ()
    planned: List[PlannedMigration] = []
    if scenario == "kill":
        kills = (BrokerKill(node=homes[busiest], at=0.4 * horizon),)
    elif scenario == "partition":
        outages = tuple(
            LinkOutage(
                u=homes[busiest],
                v=int(n),
                start=0.35 * horizon,
                end=0.7 * horizon,
            )
            for n in sorted(topology.graph.neighbors(homes[busiest]))
        )
    elif scenario == "double-kill":
        ranked_shards = sorted(
            range(num_shards), key=lambda s: (-loads[s], s)
        )
        if len(ranked_shards) < 2:
            raise ValueError(
                "double-kill needs at least two shards "
                f"(got {num_shards})"
            )
        kills = (
            BrokerKill(node=homes[ranked_shards[0]], at=0.4 * horizon),
            BrokerKill(node=homes[ranked_shards[1]], at=0.55 * horizon),
        )
    else:  # migrate-under-kill
        subsets = shard_map.subsets_of(busiest)
        q = max(subsets, key=lambda s: (shard_map.load_of_subset(s), -s))
        others = [s for s in range(num_shards) if s != busiest]
        if not others:
            raise ValueError(
                "migrate-under-kill needs at least two shards "
                f"(got {num_shards})"
            )
        dest = min(others, key=lambda s: (loads[s], s))
        at = 0.35 * horizon
        planned = [
            PlannedMigration(at=at, q=q, dest=dest, copy_time=copy_time)
        ]
        kills = (
            BrokerKill(node=homes[busiest], at=at + copy_time / 2.0),
        )
    corruptions = (StandbyWALCorruption(at=0.25 * horizon, shard=busiest),)
    plan = FaultPlan(
        seed=seed,
        default_loss=loss,
        default_duplicate=duplicate,
        default_delay=delay,
        outages=outages,
        broker_kills=kills,
    )
    return plan, homes, standby_map, planned, corruptions
