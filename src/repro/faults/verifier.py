"""Chaos-test harness and delivery-guarantee verifier.

:class:`ChaosSimulation` replays a pub-sub workload through the
packet-level simulator with a :class:`~repro.faults.plan.FaultPlan`
active, using the broker's real per-event decisions (unicast fan-out
vs multicast tree) and — unless disabled — the reliable ack/retry
protocol of :mod:`repro.faults.reliable`.

A :class:`DeliveryLedger` records the ground truth on both sides:
what *should* arrive (every matched subscriber of every sent event)
and what the application layer actually received.  The resulting
:class:`ChaosReport` then states the guarantee precisely:

- **exactly-once** holds when every expected (event, subscriber) pair
  was delivered to the application exactly one time;
- otherwise the report lists each missing delivery with a reason
  (retry budget exhausted / still unacknowledged at simulation end /
  lost with reliability disabled) and counts application-level
  duplicates.

Running the same plan with ``reliable=False`` shows what the raw
substrate does to the workload — the delta is the whole argument for
the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from time import perf_counter
from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from ..clustering import ForgyKMeansClustering
from ..core.broker import PubSubBroker
from ..core.distribution import DeliveryMethod, record_decision
from ..core.event import Event
from ..core.subscription import SubscriptionTable
from ..network.topology import TransitStubGenerator, TransitStubParams
from ..simulation.delivery import LatencyStats
from ..simulation.engine import DiscreteEventSimulator
from ..simulation.packet_network import PacketNetwork
from ..telemetry.base import Telemetry, or_null
from ..workload import (
    PublicationGenerator,
    StockSubscriptionGenerator,
    publication_distribution,
)
from .plan import BrokerCrash, FaultInjector, FaultPlan, FaultStats, LinkFault
from .reliable import ReliabilityStats, ReliableTransport, RetryConfig

__all__ = [
    "DeliveryLedger",
    "ChaosReport",
    "ChaosSimulation",
    "build_chaos_testbed",
    "build_chaos_plan",
    "build_burst_storm_times",
    "build_slow_subscriber_plan",
    "build_resubscribe_storm",
]


class DeliveryLedger:
    """Ground-truth bookkeeping: expected vs observed app deliveries."""

    def __init__(self) -> None:
        self._expected: Dict[int, Set[int]] = {}
        self._counts: Dict[Tuple[int, int], int] = {}
        self._latencies: List[float] = []
        self._published_at: Dict[int, float] = {}
        self.fail_reasons: Dict[Tuple[int, int], str] = {}

    def expect(
        self, sequence: int, subscribers: Sequence[int], published_at: float
    ) -> None:
        self._expected[sequence] = {int(s) for s in subscribers}
        self._published_at[sequence] = published_at

    def record(self, sequence: int, subscriber: int, time: float) -> None:
        """One application-level delivery (post-dedup if reliable)."""
        key = (sequence, int(subscriber))
        count = self._counts.get(key, 0) + 1
        self._counts[key] = count
        if count == 1:
            self._latencies.append(time - self._published_at[sequence])

    @property
    def expected_total(self) -> int:
        return sum(len(s) for s in self._expected.values())

    @property
    def delivered_distinct(self) -> int:
        return sum(
            1
            for (sequence, subscriber), count in self._counts.items()
            if count >= 1 and subscriber in self._expected.get(sequence, ())
        )

    @property
    def duplicate_deliveries(self) -> int:
        """Application-level deliveries beyond the first per pair."""
        return sum(count - 1 for count in self._counts.values() if count > 1)

    @property
    def latencies(self) -> List[float]:
        return self._latencies

    def missing(self, default_reason: str) -> List[Tuple[int, int, str]]:
        """Every expected (event, subscriber) that never arrived, with why."""
        out: List[Tuple[int, int, str]] = []
        for sequence in sorted(self._expected):
            for subscriber in sorted(self._expected[sequence]):
                if self._counts.get((sequence, subscriber), 0) == 0:
                    reason = self.fail_reasons.get(
                        (sequence, subscriber), default_reason
                    )
                    out.append((sequence, subscriber, reason))
        return out


@dataclass
class ChaosReport:
    """Everything one chaos run proved (or disproved)."""

    events: int
    reliable: bool
    expected: int
    delivered: int
    duplicate_deliveries: int
    missing: List[Tuple[int, int, str]]
    latency: LatencyStats
    transmissions: int
    link_retransmissions: int
    queueing_delay: float
    multicasts: int
    unicasts: int
    not_sent: int
    finished_at: float
    fault_stats: FaultStats
    reliability: Optional[ReliabilityStats] = None

    @property
    def delivered_fraction(self) -> float:
        if self.expected == 0:
            return 1.0
        return self.delivered / self.expected

    @property
    def exactly_once(self) -> bool:
        """The delivery guarantee: everyone expected, nobody twice."""
        return not self.missing and self.duplicate_deliveries == 0

    def summary_rows(self) -> List[Tuple[str, object]]:
        """(metric, value) rows for the CLI report table."""
        rows: List[Tuple[str, object]] = [
            ("events", self.events),
            ("protocol", "reliable" if self.reliable else "fire-and-forget"),
            ("expected deliveries", self.expected),
            ("delivered", self.delivered),
            ("delivered fraction", f"{self.delivered_fraction:.4f}"),
            ("missing", len(self.missing)),
            ("app-level duplicates", self.duplicate_deliveries),
            ("exactly-once", "yes" if self.exactly_once else "NO"),
            ("link transmissions", self.transmissions),
            ("link retransmissions", self.link_retransmissions),
            ("faults: random drops", self.fault_stats.random_drops),
            ("faults: outage drops", self.fault_stats.outage_drops),
            (
                "faults: crash drops",
                self.fault_stats.sender_down_drops
                + self.fault_stats.receiver_down_drops,
            ),
            ("faults: duplicates injected", self.fault_stats.duplicates_injected),
        ]
        if self.reliability is not None:
            rows.extend(
                [
                    ("retries", self.reliability.retries),
                    ("reroutes", self.reliability.reroutes),
                    ("acks sent", self.reliability.acks_sent),
                    (
                        "duplicates suppressed",
                        self.reliability.duplicates_suppressed,
                    ),
                    ("gave up", self.reliability.gave_up),
                ]
            )
        rows.append(("p95 latency", f"{self.latency.p95:.2f}"))
        rows.append(("finished at", f"{self.finished_at:.2f}"))
        return rows


class ChaosSimulation:
    """Packet-level workload replay under an active fault plan."""

    def __init__(
        self,
        broker: PubSubBroker,
        plan: FaultPlan,
        reliable: bool = True,
        retry: Optional[RetryConfig] = None,
        transmission_time: float = 0.25,
        propagation_scale: float = 1.0,
        hop_retries: int = 4,
        telemetry: Optional[Telemetry] = None,
    ):
        self.broker = broker
        self.plan = plan
        self.reliable = reliable
        self.simulator = DiscreteEventSimulator()
        self.injector = FaultInjector(plan)
        # Telemetry runs on simulated time: span timestamps come from
        # the engine clock, so instrumented chaos runs stay
        # deterministic (and NullTelemetry keeps this a no-op).
        self.telemetry = or_null(telemetry)
        self.telemetry.bind_clock(lambda: self.simulator.now)
        # Reliable mode layers link-level ARQ (masks random loss)
        # under the end-to-end ack/retry protocol (recovers from
        # outages and crashes); fire-and-forget mode gets neither.
        self.network = PacketNetwork(
            broker.topology,
            self.simulator,
            transmission_time=transmission_time,
            propagation_scale=propagation_scale,
            injector=self.injector,
            hop_retries=hop_retries if reliable else 0,
            telemetry=telemetry,
        )
        self.ledger = DeliveryLedger()
        self.transport: Optional[ReliableTransport] = None
        if reliable:
            self.transport = ReliableTransport(
                self.network,
                config=retry or RetryConfig.for_network(self.network),
                seed=plan.seed + 1,
                detector=self.injector,
                on_deliver=lambda target, key, time: self.ledger.record(
                    key, target, time
                ),
                on_give_up=lambda target, key, reason: (
                    self.ledger.fail_reasons.__setitem__(
                        (key, target), reason
                    )
                ),
                telemetry=telemetry,
            )

    # -- subclass hooks ------------------------------------------------------

    def _arm(self, arrival_times: Sequence[float]) -> None:
        """Schedule harness-side callbacks before the workload.

        Called once per :meth:`run`, before any publish is scheduled —
        so at equal times, harness callbacks win the engine's FIFO tie
        (a crash at ``t`` takes effect before an event arriving at
        ``t``).  The base harness schedules nothing.
        """

    def _record_intent(
        self,
        sequence: int,
        publisher: int,
        recipients: Sequence[int],
        method: str,
        group: int,
    ) -> None:
        """Observe one publish intent (called right after ``expect``).

        The durability harness journals the intent here; the base
        harness does nothing.
        """

    def _publish_event(
        self,
        sequence: int,
        points: np.ndarray,
        publishers: Sequence[int],
        counters: Dict[str, int],
    ) -> None:
        """Match, decide and route one event (the per-event hot path).

        The span tree mirrors the lifecycle: `event` (root) →
        `match` / `distribution-decision` / `route`; the
        reliable transport hangs `deliver` (→ `retry` / `ack`)
        spans off `route`.  Synchronous spans close at publish
        time (simulated clock); deliver spans close at
        application arrival.
        """
        telemetry = self.telemetry
        instrumented = telemetry.enabled
        event = Event.create(
            sequence, int(publishers[sequence]), points[sequence]
        )
        if instrumented:
            telemetry.counter("broker.events").inc()
            root = telemetry.start_span(
                "event", trace_id=sequence, publisher=event.publisher
            )
            match_span = telemetry.start_span("match", parent=root)
            match_started = perf_counter()
        match = self.broker.engine.match(event)
        q = self.broker.partition.locate(event.point)
        if instrumented:
            telemetry.histogram(
                "broker.match_latency_us",
                help="wall time of one match+locate, microseconds",
            ).observe((perf_counter() - match_started) * 1e6)
            match_span.set_attribute(
                "subscribers", match.num_subscribers
            ).finish()
        group_size = (
            self.broker.partition.group(q).size if q > 0 else 0
        )
        if instrumented:
            decision_span = telemetry.start_span(
                "distribution-decision", parent=root
            )
        decision = self.broker.policy.decide(
            interested=match.num_subscribers,
            group_size=group_size,
            group=q,
        )
        record_decision(telemetry, decision)
        if instrumented:
            decision_span.set_attribute(
                "method", decision.method.value
            ).set_attribute("group", q).finish()
        if decision.method is DeliveryMethod.NOT_SENT:
            counters["not_sent"] += 1
            if instrumented:
                root.set_attribute("method", "not_sent").finish()
            return
        now = self.simulator.now
        recipients = [
            node
            for node in match.subscribers
            if node != event.publisher
        ]
        self.ledger.expect(sequence, recipients, now)
        self._record_intent(
            sequence, event.publisher, recipients,
            decision.method.value, q,
        )
        if not recipients:
            if instrumented:
                root.set_attribute("method", "self_only").finish()
            return
        interested = set(recipients)
        route_span = None
        if instrumented:
            route_span = telemetry.start_span(
                "route",
                parent=root,
                method=decision.method.value,
                targets=len(recipients),
            )

        if decision.method is DeliveryMethod.UNICAST:
            counters["unicast"] += 1
            if self.transport is not None:
                self.transport.publish(
                    sequence,
                    event.publisher,
                    recipients,
                    parent_span=route_span,
                )
            else:
                for node in recipients:
                    self.network.send_unicast(
                        event.publisher,
                        node,
                        lambda n, t, s=sequence: self.ledger.record(
                            s, n, t
                        ),
                    )
            if instrumented:
                route_span.finish()
                root.set_attribute("method", "unicast").finish()
            return

        counters["multicast"] += 1
        members = self.broker.partition.group(q).members
        via = None
        if self.broker.costs.multicast_mode == "sparse":
            via = self.broker.costs.rendezvous_point(members)
        if self.transport is not None:
            def first_pass(receive, m=members, v=via):
                # Group members outside the interested set filter
                # the message out at the application layer; only
                # interested arrivals enter the reliable protocol.
                self.network.send_multicast(
                    event.publisher,
                    m,
                    lambda node, time: (
                        receive(node, time)
                        if node in interested
                        else None
                    ),
                    via=v,
                )

            self.transport.publish(
                sequence,
                event.publisher,
                recipients,
                first_pass,
                parent_span=route_span,
            )
        else:
            self.network.send_multicast(
                event.publisher,
                members,
                lambda node, time, s=sequence: (
                    self.ledger.record(s, node, time)
                    if node in interested
                    else None
                ),
                via=via,
            )
        if instrumented:
            route_span.set_attribute(
                "group", q
            ).set_attribute("group_size", len(members)).finish()
            root.set_attribute("method", "multicast").finish()

    def run(
        self,
        points: np.ndarray,
        publishers: Sequence[int],
        inter_arrival: float = 1.0,
        arrival_times: Optional[Sequence[float]] = None,
    ) -> ChaosReport:
        """Publish the workload under faults and verify the guarantee."""
        points = np.asarray(points, dtype=np.float64)
        if points.ndim != 2 or points.shape[0] != len(publishers):
            raise ValueError(
                "points must be (m, N) with one publisher per row"
            )
        if arrival_times is None:
            arrival_times = [i * inter_arrival for i in range(len(points))]
        if len(arrival_times) != len(points):
            raise ValueError("one arrival time per event required")

        counters = {"multicast": 0, "unicast": 0, "not_sent": 0}
        self._arm(arrival_times)
        for sequence, time in enumerate(arrival_times):
            self.simulator.schedule_at(
                float(time),
                lambda s=sequence: self._publish_event(
                    s, points, publishers, counters
                ),
            )
        finished_at = self.simulator.run()

        default_reason = (
            "unacknowledged at simulation end"
            if self.reliable
            else "lost (no retransmission)"
        )
        return ChaosReport(
            events=len(points),
            reliable=self.reliable,
            expected=self.ledger.expected_total,
            delivered=self.ledger.delivered_distinct,
            duplicate_deliveries=self.ledger.duplicate_deliveries,
            missing=self.ledger.missing(default_reason),
            latency=LatencyStats.from_samples(self.ledger.latencies),
            transmissions=self.network.log.transmissions,
            link_retransmissions=self.network.log.retransmissions,
            queueing_delay=self.network.log.queueing_delay,
            multicasts=counters["multicast"],
            unicasts=counters["unicast"],
            not_sent=counters["not_sent"],
            finished_at=finished_at,
            fault_stats=self.injector.stats,
            reliability=(
                self.transport.stats if self.transport is not None else None
            ),
        )


# -- canned chaos scenario builders (used by the CLI and tests) -------------


def build_chaos_testbed(
    seed: int = 2003,
    subscriptions: int = 300,
    num_groups: int = 11,
    modes: int = 9,
    params: Optional[TransitStubParams] = None,
    dynamic: bool = False,
):
    """A ~100-node broker testbed sized for chaos experiments.

    Returns ``(broker, density)``; pair with
    :class:`~repro.workload.publications.PublicationGenerator` for the
    event stream.  ``dynamic=True`` builds a
    :class:`~repro.core.dynamic.DynamicPubSubBroker` instead (required
    by churn scenarios such as :func:`build_resubscribe_storm`).
    """
    params = params or TransitStubParams(
        transit_blocks=3,
        transit_nodes_per_block=3,
        stubs_per_transit_node=2,
        nodes_per_stub=5,
        size_spread=1,
    )
    topology = TransitStubGenerator(params, seed=seed).generate()
    placed = StockSubscriptionGenerator(topology, seed=seed + 1).generate(
        subscriptions
    )
    table = SubscriptionTable.from_placed(placed)
    density = publication_distribution(modes)
    if dynamic:
        from ..core.dynamic import DynamicPubSubBroker

        broker = DynamicPubSubBroker.preprocess_dynamic(
            topology,
            table,
            ForgyKMeansClustering(),
            num_groups=num_groups,
            density=density,
        )
    else:
        broker = PubSubBroker.preprocess(
            topology,
            table,
            ForgyKMeansClustering(),
            num_groups=num_groups,
            density=density,
        )
    return broker, density


def build_chaos_plan(
    topology,
    seed: int = 2003,
    loss: float = 0.1,
    duplicate: float = 0.0,
    delay: float = 0.0,
    crashes: int = 2,
    crash_length: float = 150.0,
    horizon: float = 500.0,
) -> FaultPlan:
    """Uniform link loss plus evenly-spaced broker crash/restart windows.

    Crash victims are transit nodes (the brokers/relays of the
    testbed), drawn deterministically from ``seed``; windows are spread
    across the publication horizon so multicasts are in flight when
    brokers die.
    """
    rng = np.random.default_rng(seed)
    transit = topology.all_transit_nodes()
    crash_windows = []
    if crashes > 0:
        if crashes > len(transit):
            raise ValueError(
                f"cannot crash {crashes} brokers on a topology with "
                f"{len(transit)} transit nodes"
            )
        victims = rng.choice(len(transit), size=crashes, replace=False)
        for index, victim in enumerate(victims):
            start = horizon * (index + 1) / (crashes + 1)
            crash_windows.append(
                BrokerCrash(
                    node=int(transit[int(victim)]),
                    start=float(start),
                    end=float(start + crash_length),
                )
            )
    return FaultPlan(
        seed=seed,
        default_loss=loss,
        default_duplicate=duplicate,
        default_delay=delay,
        crashes=tuple(crash_windows),
    )


# -- overload chaos scenarios ------------------------------------------------


def build_burst_storm_times(
    events: int,
    base_interval: float = 1.0,
    bursts: int = 3,
    burst_fraction: float = 0.5,
    burst_interval: float = 0.02,
) -> List[float]:
    """Arrival times for a bursty storm: calm baseline, violent spikes.

    A ``burst_fraction`` share of the events is concentrated into
    ``bursts`` near-instantaneous volleys (``burst_interval`` apart —
    far faster than any broker's service rate) spread evenly through
    an otherwise steady ``base_interval`` stream.  Deterministic: the
    times are a pure function of the arguments.
    """
    if events < 1:
        raise ValueError(f"events must be >= 1 (got {events})")
    if not 0.0 <= burst_fraction <= 1.0:
        raise ValueError(
            f"burst_fraction must lie in [0, 1] (got {burst_fraction})"
        )
    burst_events = int(events * burst_fraction)
    calm_events = events - burst_events
    times: List[float] = [i * base_interval for i in range(calm_events)]
    horizon = max(calm_events * base_interval, 1.0)
    if bursts > 0 and burst_events > 0:
        per_burst = burst_events // bursts
        extra = burst_events - per_burst * bursts
        for index in range(bursts):
            start = horizon * (index + 1) / (bursts + 1)
            count = per_burst + (1 if index < extra else 0)
            times.extend(
                start + k * burst_interval for k in range(count)
            )
    times.sort()
    return times[:events]


def build_slow_subscriber_plan(
    topology,
    seed: int = 2003,
    horizon: float = 500.0,
    slow_delay: float = 40.0,
    slow_loss: float = 0.5,
    dead: bool = False,
) -> Tuple[FaultPlan, int]:
    """A plan where one deterministic stub subscriber is slow — or dead.

    The victim (a stub node drawn from ``seed``) either answers over a
    high-delay, lossy access path (``dead=False``: the slow-subscriber
    scenario, which stalls `ReliableTransport` retries) or is crashed
    for the entire horizon (``dead=True``: the permanently-dead
    subscriber the circuit breakers must isolate).  Returns
    ``(plan, victim_node)``.
    """
    rng = np.random.default_rng(seed + 17)
    stubs = topology.all_stub_nodes()
    victim = int(stubs[int(rng.integers(len(stubs)))])
    if dead:
        plan = FaultPlan(
            seed=seed,
            crashes=(BrokerCrash(node=victim, start=0.0, end=horizon),),
        )
        return plan, victim
    faults = tuple(
        LinkFault(
            u=victim, v=int(neighbor), loss=slow_loss, delay=slow_delay
        )
        for neighbor in topology.graph.neighbors(victim)
    )
    return FaultPlan(seed=seed, link_faults=faults), victim


def build_resubscribe_storm(
    broker,
    at: float,
    count: int = 50,
    spacing: float = 0.05,
    seed: int = 2003,
) -> List[Tuple[float, object]]:
    """A thundering-resubscribe schedule for a dynamic broker.

    At time ``at`` a herd of subscribers unsubscribes and immediately
    resubscribes with the same rectangles (the classic reconnect storm
    after a broker restart) — ``count`` churn pairs, ``spacing`` time
    units apart, forcing overflow-index growth and possibly a full
    repack mid-storm.  Returns ``(time, action)`` pairs for
    :meth:`~repro.faults.overload.OverloadChaosSimulation.run`'s
    ``churn`` argument.  Requires a broker with ``subscribe`` /
    ``unsubscribe`` (a :class:`~repro.core.dynamic.DynamicPubSubBroker`).
    """
    rng = np.random.default_rng(seed + 29)
    total = len(broker.table)
    if count > total:
        raise ValueError(
            f"cannot churn {count} subscriptions; table holds {total}"
        )
    victims = sorted(
        int(v) for v in rng.choice(total, size=count, replace=False)
    )
    schedule: List[Tuple[float, object]] = []
    for index, subscription_id in enumerate(victims):
        subscription = broker.table[subscription_id]
        subscriber = subscription.subscriber
        rectangle = subscription.rectangle

        def churn(sid=subscription_id, node=subscriber, rect=rectangle):
            broker.unsubscribe(sid)
            broker.subscribe(node, rect)

        schedule.append((at + index * spacing, churn))
    return schedule
