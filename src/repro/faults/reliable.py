"""A reliable delivery protocol on top of the packet simulator.

The :class:`~repro.simulation.packet_network.PacketNetwork` is
fire-and-forget: with a fault injector attached, copies vanish in
flight.  This module layers the classic end-to-end recipe on top:

- **acks** — every application-level arrival is acknowledged back to
  the sender over the same (lossy) network;
- **retries** — an unacknowledged target is retransmitted after an
  exponential-backoff timeout with *deterministic* jitter (derived
  from ``(seed, message, target, attempt)``, never a wall clock);
- **bounded budget** — after ``max_attempts`` data sends the transport
  gives up and reports the target, so failures are loud, not silent;
- **dedup** — receivers keep a per-subscriber set of seen message
  keys, so at-least-once retransmission (and injected duplication)
  yields exactly-once *application* delivery;
- **reroute** — given a failure detector (the injector's
  :meth:`~repro.faults.plan.FaultInjector.state_at`), retries after the
  first few attempts are routed around known-dead links and nodes over
  the surviving graph — the unicast-fallback half of graceful
  degradation.

The first attempt for a message may be a shared multicast pass (the
caller supplies it); retries are always per-target unicasts, which is
exactly the tree-repair-or-fallback behaviour the broker layer needs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx
import numpy as np

from ..overload.breaker import BreakerBoard
from ..simulation.packet_network import PacketNetwork
from ..telemetry.base import Telemetry, or_null
from ..telemetry.tracing import Span
from .plan import FaultState

__all__ = [
    "FailureReason",
    "RetryConfig",
    "ReliabilityStats",
    "ReliableTransport",
]


class FailureReason(str):
    """A give-up reason carrying a machine-readable code.

    A plain ``str`` subclass so every existing consumer of the
    ``on_give_up`` reason (ledgers, reports, format strings) keeps
    working unchanged; new consumers (the dead-letter queue) branch on
    :attr:`code` instead of parsing prose.  Codes:

    - ``"timeout"`` — the retry budget died without a single response;
    - ``"nack"`` — the receiver actively rejected at least one attempt
      (a poison delivery, not a connectivity problem);
    - ``"breaker-open"`` — an open circuit breaker short-circuited the
      target before any send.
    """

    TIMEOUT = "timeout"
    NACK = "nack"
    BREAKER_OPEN = "breaker-open"

    code: str

    def __new__(cls, text: str, code: str) -> FailureReason:
        reason = super().__new__(cls, text)
        reason.code = code
        return reason


@dataclass(frozen=True)
class RetryConfig:
    """Timing and budget knobs of the ack/retry protocol.

    ``ack_timeout`` is the base retransmission timeout (time units of
    the simulator); attempt ``n``'s timer is ``ack_timeout *
    backoff**(n-1)`` plus a deterministic jitter in ``[0, max_jitter)``.
    ``reroute_after`` is the attempt count from which retries consult
    the failure detector for a path around dead components.
    """

    ack_timeout: float = 100.0
    backoff: float = 1.5
    max_jitter: float = 1.0
    max_attempts: int = 6
    reroute_after: int = 2

    def __post_init__(self) -> None:
        if self.ack_timeout <= 0:
            raise ValueError("ack_timeout must be positive")
        if self.backoff < 1.0:
            raise ValueError("backoff must be >= 1")
        if self.max_jitter < 0:
            raise ValueError("max_jitter must be non-negative")
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.reroute_after < 1:
            raise ValueError("reroute_after must be >= 1")

    def timeout_for(self, attempt: int) -> float:
        """Retransmission timeout armed after sending attempt ``attempt``."""
        return self.ack_timeout * self.backoff ** (attempt - 1)

    @classmethod
    def for_network(cls, network: PacketNetwork, **overrides) -> RetryConfig:
        """A config whose base timeout safely exceeds the network RTT.

        Uses the routing table's diameter (worst finite shortest-path
        cost) to bound one-way propagation; the slack covers per-hop
        transmission times and moderate queueing.
        """
        diameter = network.routing.diameter()
        base = (
            2.5 * diameter * network.propagation_scale
            + 20.0 * network.transmission_time
            + 5.0
        )
        overrides.setdefault("ack_timeout", base)
        return cls(**overrides)


@dataclass
class ReliabilityStats:
    """Protocol-level counters for one run."""

    messages: int = 0             # publish() calls
    tracked: int = 0              # (message, target) deliveries tracked
    acked: int = 0
    retries: int = 0              # data retransmissions
    reroutes: int = 0             # retries sent on a detector-chosen path
    redirected: int = 0           # targets re-addressed via the directory
    acks_sent: int = 0
    duplicates_suppressed: int = 0  # data copies deduped at receivers
    gave_up: int = 0              # targets abandoned after the budget
    short_circuited: int = 0      # targets fast-failed by an open breaker
    wiped: int = 0                # in-flight deliveries lost to a crash
    nacks_sent: int = 0           # receiver-side rejections sent
    nacks_received: int = 0       # rejections that reached the sender
    cancelled: int = 0            # deliveries withdrawn via cancel_target


class _Pending:
    """Sender-side state for one (message, target) delivery."""

    __slots__ = (
        "source", "target", "attempts", "acked", "failed", "nacks", "span",
    )

    def __init__(self, source: int, target: int):
        self.source = source
        self.target = target
        self.attempts = 0
        self.acked = False
        self.failed = False
        self.nacks = 0
        self.span: Optional[Span] = None


class ReliableTransport:
    """At-least-once retransmission + receiver dedup = exactly-once.

    Parameters
    ----------
    network:
        The (possibly fault-injected) packet network to send over.
    config:
        Retry/timeout knobs; defaults to :class:`RetryConfig`.
    seed:
        Seeds the deterministic retry jitter.  Jitter for attempt ``a``
        of message ``m`` to target ``t`` depends only on
        ``(seed, m, t, a)``, so reruns are bit-identical regardless of
        event interleaving.
    detector:
        Optional failure detector exposing ``state_at(time) ->
        FaultState`` (a :class:`~repro.faults.plan.FaultInjector`
        fits).  Enables rerouting retries around dead components.
    graph:
        The physical topology graph used to compute surviving paths;
        defaults to ``network.topology.graph``.
    on_deliver:
        ``(target, key, time)`` — called exactly once per (message,
        target) at first application-level arrival.
    on_give_up:
        ``(target, key, reason)`` — called when the retry budget for a
        target is exhausted, or when an open circuit breaker
        short-circuits the target up front.
    on_ack:
        ``(target, key, time)`` — called once per (message, target)
        when the sender-side ack lands.  This is the durability hook:
        a :class:`~repro.durability.journal.BrokerJournal` journals
        the delivery completion here, so recovery knows which targets
        are definitively done.
    breakers:
        Optional :class:`~repro.overload.breaker.BreakerBoard`.  When
        present, each target's breaker gates :meth:`publish`: an OPEN
        breaker fails the target immediately ("short circuit") without
        consuming any retry budget; acked deliveries feed the breaker
        success, exhausted budgets feed it failure, so a permanently
        dead subscriber is isolated after ``failure_threshold``
        give-ups and re-probed once per ``reset_timeout``.
    acceptor:
        Optional receiver-side gate ``(target, key, time) -> bool``
        consulted at each *first* application-level arrival.  ``True``
        accepts (deliver + ack, the default behaviour); ``False``
        rejects the delivery with a **nack** back to the sender — the
        poison-message path.  A nacked delivery is not marked seen, so
        retries keep re-offering it; when the retry budget dies after
        at least one nack the give-up reason carries code ``"nack"``
        instead of ``"timeout"``, which is what lets a dead-letter
        queue distinguish a poison payload from a dead subscriber.
    directory:
        Optional role directory exposing ``resolve(node) -> int`` (an
        :class:`~repro.replication.epoch.EpochDirectory` fits).
        Targets are resolved at publish time and re-resolved at every
        retry timeout, so a retry addressed to a fenced ex-primary
        migrates — retry budget reset — to the epoch's new holder
        instead of burning its attempts (and the old node's breaker)
        against a node that will never ack.
    """

    def __init__(
        self,
        network: PacketNetwork,
        config: Optional[RetryConfig] = None,
        seed: int = 0,
        detector=None,
        graph: Optional[nx.Graph] = None,
        on_deliver: Optional[Callable[[int, int, float], None]] = None,
        on_give_up: Optional[Callable[[int, int, str], None]] = None,
        telemetry: Optional[Telemetry] = None,
        breakers: Optional[BreakerBoard] = None,
        on_ack: Optional[Callable[[int, int, float], None]] = None,
        directory=None,
        acceptor: Optional[Callable[[int, int, float], bool]] = None,
    ):
        self.network = network
        self.simulator = network.simulator
        self.config = config or RetryConfig()
        self.seed = int(seed)
        self.detector = detector
        self.graph = graph if graph is not None else network.topology.graph
        self.on_deliver = on_deliver or (lambda target, key, time: None)
        self.on_give_up = on_give_up or (lambda target, key, reason: None)
        self.on_ack = on_ack or (lambda target, key, time: None)
        self.telemetry = or_null(telemetry)
        self.breakers = breakers
        self.directory = directory
        self.acceptor = acceptor
        self.stats = ReliabilityStats()
        self._pending: Dict[Tuple[int, int], _Pending] = {}
        self._seen: Dict[int, Set[int]] = {}
        self._path_cache: Dict[tuple, Optional[List[int]]] = {}
        self._ack_spans: Dict[Tuple[int, int], Span] = {}

    # -- sender side ---------------------------------------------------------

    def publish(
        self,
        key: int,
        source: int,
        targets: Sequence[int],
        first_pass: Optional[Callable[[Callable[[int, float], None]], None]] = None,
        parent_span: Optional[Span] = None,
    ) -> None:
        """Reliably deliver message ``key`` from ``source`` to ``targets``.

        ``key`` must be a non-negative integer unique per message (an
        event sequence number); receivers dedup on it.  When
        ``first_pass`` is given it is called with the arrival callback
        and must perform attempt #1 itself (e.g. one multicast down a
        group tree); otherwise attempt #1 is one unicast per target.
        Either way, retries are per-target unicasts.

        With telemetry attached, each tracked target gets a ``deliver``
        span (child of ``parent_span``, typically the publisher's
        ``route`` span) that closes at first application-level arrival
        — or with status ``gave_up`` when the retry budget dies.
        """
        key = int(key)
        source = int(source)
        targets = [self._resolve(t) for t in targets]
        self.stats.messages += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("transport.messages").inc()
        if self.breakers is not None:
            targets = self._gate_targets(key, targets, parent_span)
        for target in targets:
            pending = _Pending(source, target)
            if telemetry.enabled:
                pending.span = telemetry.start_span(
                    "deliver",
                    trace_id=key,
                    parent=parent_span,
                    target=target,
                )
            self._pending[(key, target)] = pending
            self.stats.tracked += 1
        if first_pass is not None:
            first_pass(self._receiver(key, source))
            for target in targets:
                pending = self._pending[(key, target)]
                pending.attempts = 1
                self._arm_timer(key, target)
        else:
            for target in targets:
                self._send_data(key, target, path=None)

    def _gate_targets(
        self,
        key: int,
        targets: List[int],
        parent_span: Optional[Span],
    ) -> List[int]:
        """Drop targets whose breaker is OPEN; they fail fast, untracked.

        A short-circuited target still gets an immediate
        ``on_give_up`` (the failure is loud) and shows up in
        :meth:`failed`, but costs zero transmissions and zero retry
        budget.  A breaker past its reset timeout admits the target as
        its HALF_OPEN probe.
        """
        now = self.simulator.now
        admitted: List[int] = []
        telemetry = self.telemetry
        for target in targets:
            if self.breakers.allow(target, now):
                admitted.append(target)
                continue
            pending = _Pending(-1, target)
            pending.failed = True
            self._pending[(key, target)] = pending
            self.stats.short_circuited += 1
            if telemetry.enabled:
                telemetry.counter(
                    "transport.short_circuited",
                    help="targets fast-failed by an open circuit breaker",
                ).inc()
                telemetry.event(
                    "short-circuit", parent=parent_span, target=target
                )
            self.on_give_up(
                target,
                key,
                FailureReason(
                    "short-circuited (breaker open)",
                    FailureReason.BREAKER_OPEN,
                ),
            )
        return admitted

    def _resolve(self, node: int) -> int:
        """The directory's current holder of ``node``'s role."""
        node = int(node)
        if self.directory is None:
            return node
        return int(self.directory.resolve(node))

    def _redirect(self, key: int, target: int, new: int) -> bool:
        """Move one pending delivery to the target's epoch successor.

        The pending entry migrates to the ``(key, new)`` slot — acks
        from the new node look themselves up there — with a fresh
        retry budget, and the data goes out immediately.  Timers still
        armed for the old slot find it empty and no-op.  Returns False
        (nothing to do) when the new slot is already tracked.
        """
        pending = self._pending.pop((key, target))
        self.stats.redirected += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "transport.redirected",
                help="deliveries re-addressed to an epoch successor",
            ).inc()
            self.telemetry.event(
                "redirect", parent=pending.span, target=target, new=new
            )
        if (key, new) in self._pending:
            # The message already tracks the successor (it was a
            # target in its own right); drop the stale slot.
            if pending.span is not None:
                pending.span.finish(status="redirected")
            return False
        pending.target = new
        pending.attempts = 0
        self._pending[(key, new)] = pending
        self._send_data(key, new, path=None)
        return True

    def _receiver(
        self, key: int, source: int
    ) -> Callable[[int, float], None]:
        """The network-level arrival callback for one message."""
        return lambda node, time: self.data_arrived(key, source, node, time)

    def _send_data(
        self, key: int, target: int, path: Optional[List[int]]
    ) -> None:
        pending = self._pending[(key, target)]
        pending.attempts += 1
        if pending.attempts > 1:
            self.stats.retries += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "transport.retries", help="data retransmissions"
                ).inc()
                self.telemetry.event(
                    "retry",
                    parent=pending.span,
                    attempt=pending.attempts,
                    rerouted=path is not None,
                )
        receive = self._receiver(key, pending.source)
        if path is not None:
            self.network.send_along(path, receive)
        else:
            self.network.send_unicast(pending.source, target, receive)
        self._arm_timer(key, target)

    def _arm_timer(self, key: int, target: int) -> None:
        pending = self._pending[(key, target)]
        attempt = pending.attempts
        delay = self.config.timeout_for(attempt) + self._jitter(
            key, target, attempt
        )
        self.simulator.schedule(
            delay, lambda: self._timeout(key, target, attempt)
        )

    def _jitter(self, key: int, target: int, attempt: int) -> float:
        """Deterministic per-(message, target, attempt) jitter."""
        if self.config.max_jitter <= 0:
            return 0.0
        rng = np.random.default_rng((self.seed, key, target, attempt))
        return float(rng.random() * self.config.max_jitter)

    def _timeout(self, key: int, target: int, attempt: int) -> None:
        pending = self._pending.get((key, target))
        if (
            pending is None
            or pending.acked
            or pending.failed
            or pending.attempts != attempt
        ):
            return
        new_target = self._resolve(target)
        if new_target != target:
            self._redirect(key, target, new_target)
            return
        if pending.attempts >= self.config.max_attempts:
            pending.failed = True
            self.stats.gave_up += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "transport.gave_up",
                    help="targets abandoned after the retry budget",
                ).inc()
                if pending.span is not None:
                    pending.span.finish(status="gave_up")
            if self.breakers is not None:
                self.breakers.record_failure(target, self.simulator.now)
            if pending.nacks > 0:
                reason = FailureReason(
                    "retry budget exhausted "
                    f"(rejected by receiver, {pending.nacks} nacks)",
                    FailureReason.NACK,
                )
            else:
                reason = FailureReason(
                    "retry budget exhausted", FailureReason.TIMEOUT
                )
            self.on_give_up(target, key, reason)
            return
        path = None
        if (
            self.detector is not None
            and pending.attempts >= self.config.reroute_after
        ):
            path = self._alternate_path(pending.source, target)
            if path is not None:
                self.stats.reroutes += 1
                if self.telemetry.enabled:
                    self.telemetry.counter(
                        "transport.reroutes",
                        help="retries sent on a detector-chosen path",
                    ).inc()
        self._send_data(key, target, path)

    def _alternate_path(
        self, source: int, target: int
    ) -> Optional[List[int]]:
        """A shortest path over the currently-surviving graph.

        Returns ``None`` when the detector reports nothing dead, when
        no surviving path exists (wait for a restart instead), or when
        the surviving path is the default one anyway.
        """
        state: FaultState = self.detector.state_at(self.simulator.now)
        if state.clear:
            return None
        cache_key = (state.dead_nodes, state.dead_links, source, target)
        if cache_key in self._path_cache:
            return self._path_cache[cache_key]
        hidden_edges = [
            pair for (u, v) in state.dead_links for pair in ((u, v), (v, u))
        ]
        path: Optional[List[int]]
        try:
            alive = nx.restricted_view(
                self.graph, list(state.dead_nodes), hidden_edges
            )
            path = [
                int(n)
                for n in nx.dijkstra_path(alive, source, target, weight="cost")
            ]
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            path = None
        if path is not None and path == self.network.routing.path(
            source, target
        ):
            path = None
        self._path_cache[cache_key] = path
        return path

    # -- receiver side -------------------------------------------------------

    def data_arrived(
        self, key: int, source: int, target: int, time: float
    ) -> None:
        """A data copy reached ``target``: dedup, deliver, ack.

        Duplicates (retransmissions or injected duplication) are
        suppressed before the application sees them, but always
        re-acked — the duplicate usually means the previous ack died.
        A delivery the :attr:`acceptor` rejects is nacked instead and
        *not* marked seen, so the sender's retries keep offering it
        (the receiver may recover) until the budget dies with a
        ``"nack"``-coded reason.
        """
        seen = self._seen.setdefault(target, set())
        if key not in seen and self.acceptor is not None:
            if not self.acceptor(target, key, time):
                self._send_nack(key, source, target)
                return
        if key in seen:
            self.stats.duplicates_suppressed += 1
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "transport.duplicates_suppressed",
                    help="data copies deduped at receivers",
                ).inc()
        else:
            seen.add(key)
            if self.telemetry.enabled:
                self.telemetry.counter(
                    "transport.delivered",
                    help="first application-level deliveries",
                ).inc()
                pending = self._pending.get((key, target))
                if pending is not None and pending.span is not None:
                    pending.span.set_attribute(
                        "attempts", max(1, pending.attempts)
                    ).finish(time=time)
            self.on_deliver(target, key, time)
        self._send_ack(key, source, target)

    def _send_ack(self, key: int, source: int, target: int) -> None:
        self.stats.acks_sent += 1
        telemetry = self.telemetry
        if telemetry.enabled:
            telemetry.counter("transport.acks_sent").inc()
            pending = self._pending.get((key, target))
            if (
                pending is not None
                and pending.span is not None
                and (key, target) not in self._ack_spans
            ):
                # Trace the first ack attempt per (message, target);
                # re-acks of duplicates share its fate.
                self._ack_spans[(key, target)] = telemetry.start_span(
                    "ack", parent=pending.span, target=target
                )
        if target == source:
            self._ack_arrived(key, target)
            return
        arrived = lambda _node, _time: self._ack_arrived(key, target)
        # Acks route around known-dead components too — an ack that
        # insists on a dead default path would never return, and the
        # sender would burn its whole retry budget on a message the
        # application already has.
        path = (
            self._alternate_path(target, source)
            if self.detector is not None
            else None
        )
        if path is not None:
            self.network.send_along(path, arrived)
        else:
            self.network.send_unicast(target, source, arrived)

    def _send_nack(self, key: int, source: int, target: int) -> None:
        """Return a rejection to the sender over the same lossy network."""
        self.stats.nacks_sent += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "transport.nacks_sent",
                help="receiver-side delivery rejections sent",
            ).inc()
        if target == source:
            self._nack_arrived(key, target)
            return
        arrived = lambda _node, _time: self._nack_arrived(key, target)
        self.network.send_unicast(target, source, arrived)

    def _nack_arrived(self, key: int, target: int) -> None:
        pending = self._pending.get((key, target))
        if pending is None or pending.acked or pending.failed:
            return
        pending.nacks += 1
        self.stats.nacks_received += 1
        if self.telemetry.enabled:
            self.telemetry.counter(
                "transport.nacks_received",
                help="delivery rejections that reached the sender",
            ).inc()
            if pending.span is not None:
                self.telemetry.event(
                    "nack", parent=pending.span, nacks=pending.nacks
                )

    def _ack_arrived(self, key: int, target: int) -> None:
        pending = self._pending.get((key, target))
        if pending is None or pending.acked:
            return
        pending.acked = True
        self.stats.acked += 1
        if self.breakers is not None:
            self.breakers.record_success(target, self.simulator.now)
        if self.telemetry.enabled:
            self.telemetry.counter("transport.acked").inc()
            ack_span = self._ack_spans.pop((key, target), None)
            if ack_span is not None:
                ack_span.finish()
        self.on_ack(target, key, self.simulator.now)

    # -- crash support -------------------------------------------------------

    def wipe_pending(self) -> List[Tuple[int, int]]:
        """Forget every in-flight delivery — the crash model's hook.

        A broker crash loses the sender-side retry state: timers,
        attempt counts, the lot.  This removes every (key, target)
        that is neither acked nor failed *without* firing
        ``on_give_up`` or feeding the breakers (the sender did not
        decide anything; it simply ceased to exist).  Outstanding
        retry timers become no-ops because their pending entry is
        gone.  Returns the wiped pairs, sorted, so recovery can check
        them against the WAL's reconstructed in-flight set.

        Receiver-side dedup state is deliberately kept: subscriber
        nodes did not crash, so post-recovery redelivery of an
        already-delivered message is suppressed exactly-once-style.
        """
        wiped = sorted(
            pair
            for pair, pending in self._pending.items()
            if not pending.acked and not pending.failed
        )
        for pair in wiped:
            pending = self._pending.pop(pair)
            if pending.span is not None:
                pending.span.finish(status="wiped")
            ack_span = self._ack_spans.pop(pair, None)
            if ack_span is not None:
                ack_span.finish(status="wiped")
        self.stats.wiped += len(wiped)
        if wiped and self.telemetry.enabled:
            self.telemetry.counter(
                "transport.wiped",
                help="in-flight deliveries lost to a broker crash",
            ).inc(len(wiped))
        return wiped

    def cancel_target(self, target: int) -> List[int]:
        """Withdraw every in-flight delivery addressed to ``target``.

        The session layer's detach hook: when a subscriber disconnects
        (or its node crashes), its unacked deliveries must stop
        consuming retry budget *without* being declared failed — the
        session keeps them outstanding and the catch-up replayer will
        re-send them on resume.  Like :meth:`wipe_pending` this fires
        neither ``on_give_up`` nor the breakers; unlike it, it is
        scoped to one target and keeps that target's dedup state (the
        replay path relies on it to suppress redelivery of anything
        the application already consumed).  Returns the cancelled
        message keys, sorted.
        """
        target = int(target)
        cancelled = sorted(
            key
            for (key, node), pending in self._pending.items()
            if node == target and not pending.acked and not pending.failed
        )
        for key in cancelled:
            pending = self._pending.pop((key, target))
            if pending.span is not None:
                pending.span.finish(status="cancelled")
            ack_span = self._ack_spans.pop((key, target), None)
            if ack_span is not None:
                ack_span.finish(status="cancelled")
        self.stats.cancelled += len(cancelled)
        if cancelled and self.telemetry.enabled:
            self.telemetry.counter(
                "transport.cancelled",
                help="in-flight deliveries withdrawn on session detach",
            ).inc(len(cancelled))
        return cancelled

    # -- introspection -------------------------------------------------------

    def unacked(self) -> List[Tuple[int, int]]:
        """(key, target) pairs neither acked nor abandoned (yet)."""
        return [
            pair
            for pair, pending in self._pending.items()
            if not pending.acked and not pending.failed
        ]

    def failed(self) -> List[Tuple[int, int]]:
        """(key, target) pairs whose retry budget was exhausted."""
        return [
            pair
            for pair, pending in self._pending.items()
            if pending.failed
        ]
